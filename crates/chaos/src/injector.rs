//! The fault injector: turns a [`FaultPlan`] plus a seed into concrete,
//! reproducible per-message and per-WAL-append fault verdicts.
//!
//! The injector implements both [`fabric_net::FaultHook`] (so it can be
//! plugged into the threaded network's `FaultyBroadcaster` or the
//! deterministic chaos harness) and, via [`FaultInjector::wal_policy`],
//! [`fabric_statedb::WalFaultPolicy`] for the LSM write-ahead log.
//!
//! Every injected fault is recorded in an event log with a monotonically
//! increasing sequence number. Two runs with the same plan and seed must
//! produce byte-identical event logs — `schedule_digest` condenses the log
//! into one hash for cheap equality asserts in tests.

use std::sync::{Arc, Mutex};

use fabric_common::hash::{Digest, Sha256};
use fabric_common::BlockNum;
use fabric_net::{FaultHook, LinkId, SendFault};
use fabric_statedb::{WalFaultPolicy, WalIoFault};
use fabric_trace::{EventKind, FaultKind, TraceSink};

use crate::plan::FaultPlan;
use crate::rng::ChaosRng;

/// One recorded fault decision. `Deliver` verdicts are not logged — the
/// schedule is the (typically sparse) set of injected faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A network-level fault on `link`'s `nth` message (0-based).
    Net {
        /// Global injection sequence number.
        seq: u64,
        /// The affected link.
        link: LinkId,
        /// 0-based index of the message on that link.
        nth: u64,
        /// The verdict (never `SendFault::Deliver`).
        verdict: SendFault,
        /// True when the verdict came from a scheduled partition rather
        /// than a random dice roll.
        partition: bool,
    },
    /// A WAL append fault on `block`.
    Wal {
        /// Global injection sequence number.
        seq: u64,
        /// The WAL block the fault fired on.
        block: BlockNum,
        /// Bytes of the frame kept on disk (torn write).
        keep: usize,
    },
}

struct Inner {
    rng: ChaosRng,
    seq: u64,
    /// Per-link message counters, keyed by link. A `Vec` keeps iteration
    /// order (and thus the event log) deterministic.
    link_counts: Vec<(LinkId, u64)>,
    events: Vec<FaultEvent>,
    /// WAL faults already fired (index into `plan.wal_faults`), so each
    /// scheduled fault fires exactly once.
    wal_fired: Vec<bool>,
}

/// Deterministic fault oracle shared by the network and storage layers.
///
/// Interior mutability (one mutex around all decision state) lets a single
/// injector serve the threaded network; in the single-threaded chaos
/// harness the lock is uncontended and the verdict order — hence the event
/// log — is fully determined by the seed.
pub struct FaultInjector {
    plan: FaultPlan,
    inner: Mutex<Inner>,
    /// Flight-recorder mirror of the event log. Observation-only: the sink
    /// is consulted strictly after a verdict (and its event-log entry) is
    /// decided, so attaching a trace can never perturb the schedule.
    sink: TraceSink,
}

impl FaultInjector {
    /// Builds an injector for `plan`, validating it first.
    pub fn new(plan: FaultPlan) -> fabric_common::Result<Arc<Self>> {
        Self::new_traced(plan, TraceSink::disabled())
    }

    /// [`FaultInjector::new`] with a flight-recorder sink: every injected
    /// fault is mirrored as an [`EventKind::FaultNet`] / [`EventKind::FaultWal`]
    /// event carrying the injector's own sequence number.
    pub fn new_traced(plan: FaultPlan, sink: TraceSink) -> fabric_common::Result<Arc<Self>> {
        plan.validate()?;
        let rng = ChaosRng::new(plan.seed);
        let wal_fired = vec![false; plan.wal_faults.len()];
        Ok(Arc::new(FaultInjector {
            plan,
            inner: Mutex::new(Inner {
                rng,
                seq: 0,
                link_counts: Vec::new(),
                events: Vec::new(),
                wal_fired,
            }),
            sink,
        }))
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the injected-fault log, in decision order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Number of faults injected so far.
    pub fn fault_count(&self) -> u64 {
        self.inner.lock().unwrap().seq
    }

    /// Hash of the full event log. Equal digests ⇔ identical schedules,
    /// which is the determinism contract: same plan + same seed + same
    /// call sequence ⇒ same digest.
    pub fn schedule_digest(&self) -> Digest {
        let inner = self.inner.lock().unwrap();
        let mut h = Sha256::new();
        for ev in &inner.events {
            h.update(format!("{ev:?}").as_bytes());
        }
        h.finalize()
    }

    /// A [`WalFaultPolicy`] view of this injector, to hang on
    /// `LsmConfig::wal_faults`.
    pub fn wal_policy(self: &Arc<Self>) -> Arc<dyn WalFaultPolicy> {
        Arc::new(WalAdapter { injector: Arc::clone(self) })
    }

    fn decide(&self, link: LinkId, _size: usize) -> SendFault {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;

        let nth = {
            match inner.link_counts.iter_mut().find(|(l, _)| *l == link) {
                Some((_, n)) => {
                    let nth = *n;
                    *n += 1;
                    nth
                }
                None => {
                    inner.link_counts.push((link, 1));
                    0
                }
            }
        };

        // Scheduled partitions outrank random faults and consume no
        // randomness, so healing a partition never shifts the dice
        // stream of unrelated links. A partitioned endpoint is cut off in
        // both directions; peer-side plans list only destinations (peer
        // link sources are the orderer sentinel or another peer id, never
        // listed), so existing schedules are unchanged, while orderer
        // partitions isolate a replica symmetrically.
        if self
            .plan
            .partitions
            .iter()
            .any(|p| p.covers(link.to as u64, nth) || p.covers(link.from as u64, nth))
        {
            let seq = inner.seq;
            inner.seq += 1;
            inner.events.push(FaultEvent::Net {
                seq,
                link,
                nth,
                verdict: SendFault::Drop,
                partition: true,
            });
            if self.sink.is_enabled() {
                self.sink.emit(EventKind::FaultNet {
                    fault_seq: seq,
                    from: link.from,
                    to: link.to,
                    nth,
                    verdict: FaultKind::Drop,
                    partition: true,
                });
            }
            return SendFault::Drop;
        }

        // One dice roll per message; the fault kinds partition the
        // [0, 1000) range so at most one fires.
        let roll = inner.rng.next_range(1000) as u32;
        let p = &self.plan;
        let mut bound = p.drop_per_mille;
        let verdict = if roll < bound {
            SendFault::Drop
        } else if roll < {
            bound += p.duplicate_per_mille;
            bound
        } {
            SendFault::Duplicate { extra: 1 + inner.rng.next_range(2) as u32 }
        } else if roll < {
            bound += p.delay_per_mille;
            bound
        } {
            SendFault::Delay { extra: p.delay_spike }
        } else if roll < {
            bound += p.reorder_per_mille;
            bound
        } {
            SendFault::ReorderBurst { len: p.reorder_burst_len }
        } else {
            SendFault::Deliver
        };

        if verdict != SendFault::Deliver {
            let seq = inner.seq;
            inner.seq += 1;
            inner.events.push(FaultEvent::Net { seq, link, nth, verdict, partition: false });
            if self.sink.is_enabled() {
                let kind = match verdict {
                    SendFault::Drop => FaultKind::Drop,
                    SendFault::Duplicate { .. } => FaultKind::Duplicate,
                    SendFault::Delay { .. } => FaultKind::Delay,
                    SendFault::ReorderBurst { .. } => FaultKind::Reorder,
                    SendFault::Deliver => unreachable!("deliver verdicts are not logged"),
                };
                self.sink.emit(EventKind::FaultNet {
                    fault_seq: seq,
                    from: link.from,
                    to: link.to,
                    nth,
                    verdict: kind,
                    partition: false,
                });
            }
        }
        verdict
    }

    fn decide_wal(&self, block: BlockNum) -> WalIoFault {
        let mut inner = self.inner.lock().unwrap();
        for (i, f) in self.plan.wal_faults.iter().enumerate() {
            if f.at_block == block && !inner.wal_fired[i] {
                inner.wal_fired[i] = true;
                let seq = inner.seq;
                inner.seq += 1;
                inner.events.push(FaultEvent::Wal { seq, block, keep: f.keep });
                if self.sink.is_enabled() {
                    self.sink.emit(EventKind::FaultWal {
                        fault_seq: seq,
                        block,
                        keep: f.keep as u64,
                    });
                }
                return WalIoFault::TornWrite { keep: f.keep };
            }
        }
        WalIoFault::None
    }
}

impl FaultHook for FaultInjector {
    fn on_send(&self, link: LinkId, size: usize) -> SendFault {
        self.decide(link, size)
    }
}

struct WalAdapter {
    injector: Arc<FaultInjector>,
}

impl WalFaultPolicy for WalAdapter {
    fn on_append(&self, block: BlockNum) -> WalIoFault {
        self.injector.decide_wal(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(inj: &FaultInjector, links: u32, msgs: u64) -> Vec<SendFault> {
        let mut out = Vec::new();
        for n in 0..msgs {
            for to in 0..links {
                let _ = n;
                out.push(inj.on_send(LinkId::from_orderer(to), 64));
            }
        }
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultInjector::new(FaultPlan::chaotic(99)).unwrap();
        let b = FaultInjector::new(FaultPlan::chaotic(99)).unwrap();
        let va = drain(&a, 4, 200);
        let vb = drain(&b, 4, 200);
        assert_eq!(va, vb);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.schedule_digest(), b.schedule_digest());
        assert!(a.fault_count() > 0, "chaotic plan must inject something");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(FaultPlan::chaotic(1)).unwrap();
        let b = FaultInjector::new(FaultPlan::chaotic(2)).unwrap();
        drain(&a, 4, 200);
        drain(&b, 4, 200);
        assert_ne!(a.schedule_digest(), b.schedule_digest());
    }

    #[test]
    fn quiescent_plan_never_injects() {
        let inj = FaultInjector::new(FaultPlan::quiescent(7)).unwrap();
        let verdicts = drain(&inj, 4, 500);
        assert!(verdicts.iter().all(|v| *v == SendFault::Deliver));
        assert_eq!(inj.fault_count(), 0);
        assert!(inj.events().is_empty());
    }

    #[test]
    fn partitions_drop_exactly_their_window() {
        // Peer 2 partitioned for its messages 3..6; other peers untouched.
        let plan = FaultPlan::quiescent(5).with_partition(vec![2], 3, 6);
        let inj = FaultInjector::new(plan).unwrap();
        for _ in 0..10 {
            for to in 0..4u32 {
                let v = inj.on_send(LinkId::from_orderer(to), 10);
                if to == 2 {
                    continue;
                }
                assert_eq!(v, SendFault::Deliver);
            }
        }
        let events = inj.events();
        assert_eq!(events.len(), 3, "three messages fall inside the window");
        for (i, ev) in events.iter().enumerate() {
            match ev {
                FaultEvent::Net { link, nth, verdict, partition, .. } => {
                    assert_eq!(link.to, 2);
                    assert_eq!(*nth, 3 + i as u64);
                    assert_eq!(*verdict, SendFault::Drop);
                    assert!(*partition);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn wal_faults_fire_once_per_schedule_entry() {
        let plan = FaultPlan::quiescent(3).with_torn_crash(0, 1, 1, 0).with_wal_fault(2, 5);
        let inj = FaultInjector::new(plan).unwrap();
        let policy = inj.wal_policy();
        assert_eq!(policy.on_append(1), WalIoFault::None);
        assert_eq!(policy.on_append(2), WalIoFault::TornWrite { keep: 5 });
        // Replay of the same block after recovery is not faulted again.
        assert_eq!(policy.on_append(2), WalIoFault::None);
        assert_eq!(inj.events(), vec![FaultEvent::Wal { seq: 0, block: 2, keep: 5 }]);
    }

    #[test]
    fn traced_injector_mirrors_schedule_without_perturbing_it() {
        let sink = TraceSink::bounded(4096);
        let traced = FaultInjector::new_traced(FaultPlan::chaotic(99), sink.clone()).unwrap();
        let plain = FaultInjector::new(FaultPlan::chaotic(99)).unwrap();
        drain(&traced, 4, 200);
        drain(&plain, 4, 200);
        // Observation-only: the trace mirror never shifts the schedule.
        assert_eq!(traced.schedule_digest(), plain.schedule_digest());

        // The mirror carries the same faults, in the same order, with the
        // injector's own sequence numbers.
        let mirrored: Vec<_> = sink
            .drain()
            .into_iter()
            .filter_map(|ev| match ev.kind {
                EventKind::FaultNet { fault_seq, from, to, nth, partition, .. } => {
                    Some((fault_seq, from, to, nth, partition))
                }
                _ => None,
            })
            .collect();
        let logged: Vec<_> = traced
            .events()
            .into_iter()
            .map(|ev| match ev {
                FaultEvent::Net { seq, link, nth, partition, .. } => {
                    (seq, link.from, link.to, nth, partition)
                }
                FaultEvent::Wal { .. } => unreachable!("no WAL faults in this plan"),
            })
            .collect();
        assert_eq!(mirrored, logged);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn traced_wal_fault_mirrors_keep_and_seq() {
        let sink = TraceSink::bounded(64);
        let plan = FaultPlan::quiescent(3).with_torn_crash(0, 1, 1, 0).with_wal_fault(2, 5);
        let inj = FaultInjector::new_traced(plan, sink.clone()).unwrap();
        let policy = inj.wal_policy();
        assert_eq!(policy.on_append(2), WalIoFault::TornWrite { keep: 5 });
        let evs = sink.drain();
        assert_eq!(evs.len(), 1);
        match &evs[0].kind {
            EventKind::FaultWal { fault_seq, block, keep } => {
                assert_eq!((*fault_seq, *block, *keep), (0, 2, 5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fault_mix_matches_plan_probabilities() {
        let inj = FaultInjector::new(FaultPlan::chaotic(11)).unwrap();
        let verdicts = drain(&inj, 8, 500); // 4000 messages
        let drops = verdicts.iter().filter(|v| **v == SendFault::Drop).count();
        let dups =
            verdicts.iter().filter(|v| matches!(v, SendFault::Duplicate { .. })).count();
        // chaotic: 250‰ drop, 150‰ duplicate — allow generous slack.
        assert!((800..1200).contains(&drops), "drops = {drops}");
        assert!((450..750).contains(&dups), "dups = {dups}");
    }
}
