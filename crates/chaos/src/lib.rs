//! fabric-chaos: deterministic fault injection for the Fabric++ stack.
//!
//! Everything here is seed-driven: a [`plan::FaultPlan`] plus a seed fully
//! determine the fault schedule, so any failing run replays exactly from
//! its seed. The subsystem has four parts:
//!
//! * [`rng`] — the dedicated chaos RNG (xorshift64*), kept separate from
//!   workload RNGs so fault decisions never perturb workload streams;
//! * [`plan`] / [`injector`] — declarative fault plans compiled into a
//!   [`injector::FaultInjector`] that implements `fabric_net::FaultHook`
//!   (network faults) and `fabric_statedb::WalFaultPolicy` (WAL IO
//!   faults), recording every decision in an event log whose digest is
//!   the determinism contract;
//! * [`invariants`] — post-run checks: state convergence across live
//!   peers, ledger hash-chain verification, and no-committed-tx-loss
//!   across crash/restart;
//! * [`harness`] — [`harness::ChaosNet`], a deterministic single-threaded
//!   network of peers with optional durable block logs, driven
//!   block-by-block under a fault plan, with crash/restart orchestration
//!   through `fabric_peer::recovery` and archive catch-up. Built with
//!   [`harness::ChaosNet::new_replicated`], the single ordering process
//!   becomes a [`fabric_consensus::OrdererGroup`] whose propose/vote/
//!   commit traffic runs through the same injector, so leader crashes,
//!   consensus partitions, and equivocation are chaos-testable with the
//!   same seeded determinism.
//!
//! The same injector also plugs into the threaded runtime via
//! [`fabricpp::NetworkBuilder::fault_hook`], where wall-clock scheduling
//! makes runs non-deterministic but the fault *decisions* still replay
//! from the seed.

pub mod harness;
pub mod injector;
pub mod invariants;
pub mod plan;
pub mod rng;

pub use fabric_consensus::{Equivocation, OrdererCrash};
pub use harness::{ChaosNet, ChaosOptions};
pub use injector::{FaultEvent, FaultInjector};
pub use invariants::{check_invariants, state_digest, InvariantReport};
pub use plan::{CrashPoint, FaultPlan, Partition, WalFault};
pub use rng::ChaosRng;
