//! Prometheus-style text exposition (version 0.0.4) of the run's
//! aggregate metrics: transaction outcomes, state-store access counters,
//! per-phase latency summaries, and the flight recorder's own accounting.
//!
//! This is a *snapshot* renderer — hand the end-of-run `TxStats`,
//! `StoreStats`, and `PhaseSummary` (all already part of `RunReport`) to
//! [`render`] and write the result wherever a scraper or a human expects
//! it. No server, no background thread: the reproduction's runs are
//! finite, so exposition-at-exit is the honest equivalent of a scrape.

use std::fmt::Write as _;

use fabric_common::metrics::{LatencySummary, PhaseSummary, StoreStats, TxStats};

use crate::TraceSink;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped inside the quotes —
/// otherwise a hostile or merely unlucky label (a key name containing
/// `"` or a newline) corrupts the whole document.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn labeled_counter(out: &mut String, name: &str, help: &str, rows: &[(&str, u64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (label, value) in rows {
        let _ =
            writeln!(out, "{name}{{outcome=\"{}\"}} {value}", escape_label_value(label));
    }
}

fn phase_rows(out: &mut String, phase: &str, s: &LatencySummary) {
    let rows: [(&str, u64); 6] = [
        ("min", s.min.as_micros() as u64),
        ("max", s.max.as_micros() as u64),
        ("avg", s.avg.as_micros() as u64),
        ("p50", s.p50.as_micros() as u64),
        ("p95", s.p95.as_micros() as u64),
        ("p99", s.p99.as_micros() as u64),
    ];
    let phase = escape_label_value(phase);
    let _ = writeln!(out, "fabric_phase_samples_total{{phase=\"{phase}\"}} {}", s.count);
    for (stat, v) in rows {
        let _ = writeln!(
            out,
            "fabric_phase_latency_microseconds{{phase=\"{phase}\",stat=\"{stat}\"}} {v}"
        );
    }
}

/// Renders one text exposition from the end-of-run snapshots. `sink` may
/// be disabled; its emitted/dropped/capacity gauges then read zero.
pub fn render(
    tx: &TxStats,
    store: &StoreStats,
    phases: &PhaseSummary,
    sink: &TraceSink,
) -> String {
    let mut out = String::with_capacity(4096);

    counter(&mut out, "fabric_tx_submitted_total", "Proposals fired by clients", tx.submitted);
    labeled_counter(
        &mut out,
        "fabric_tx_outcomes_total",
        "Transactions by final outcome",
        &[
            ("valid", tx.valid),
            ("mvcc_conflict", tx.mvcc_conflict),
            ("endorsement_failure", tx.endorsement_failure),
            ("early_abort_simulation", tx.early_abort_simulation),
            ("early_abort_cycle", tx.early_abort_cycle),
            ("early_abort_version_mismatch", tx.early_abort_version_mismatch),
        ],
    );

    counter(
        &mut out,
        "fabric_store_multi_get_batches_total",
        "Batched version prefetches",
        store.multi_get_batches,
    );
    counter(
        &mut out,
        "fabric_store_multi_get_keys_total",
        "Keys probed across batched prefetches",
        store.multi_get_keys,
    );
    counter(&mut out, "fabric_store_point_gets_total", "Single-key point lookups", store.point_gets);
    counter(
        &mut out,
        "fabric_store_blocks_applied_total",
        "Blocks installed via the batched commit path",
        store.blocks_applied,
    );
    counter(
        &mut out,
        "fabric_store_shard_lock_acquisitions_total",
        "Shard write-lock acquisitions across committed blocks",
        store.shard_lock_acquisitions,
    );
    counter(
        &mut out,
        "fabric_store_wal_records_total",
        "Group-commit WAL records written",
        store.wal_records,
    );
    counter(&mut out, "fabric_store_wal_fsyncs_total", "WAL records fsynced", store.wal_fsyncs);

    let _ = writeln!(
        out,
        "# HELP fabric_phase_samples_total Samples recorded per pipeline phase"
    );
    let _ = writeln!(out, "# TYPE fabric_phase_samples_total counter");
    let _ = writeln!(
        out,
        "# HELP fabric_phase_latency_microseconds Per-phase latency summary statistics"
    );
    let _ = writeln!(out, "# TYPE fabric_phase_latency_microseconds gauge");
    for (label, summary) in phases.rows() {
        phase_rows(&mut out, label, &summary);
    }

    counter(
        &mut out,
        "fabric_trace_events_emitted_total",
        "Flight-recorder events emitted (including dropped)",
        sink.emitted(),
    );
    counter(
        &mut out,
        "fabric_trace_events_dropped_total",
        "Flight-recorder events lost to drop-oldest",
        sink.dropped(),
    );
    counter(
        &mut out,
        "fabric_trace_spans_dropped_total",
        "Per-block span events among the dropped (holes in block phase timelines)",
        sink.dropped_spans(),
    );
    let _ = writeln!(out, "# HELP fabric_trace_ring_capacity Flight-recorder ring capacity");
    let _ = writeln!(out, "# TYPE fabric_trace_ring_capacity gauge");
    let _ = writeln!(out, "fabric_trace_ring_capacity {}", sink.capacity());
    let _ = writeln!(
        out,
        "# HELP fabric_trace_events_retained Events currently held in the ring"
    );
    let _ = writeln!(out, "# TYPE fabric_trace_events_retained gauge");
    let _ = writeln!(out, "fabric_trace_events_retained {}", sink.retained());

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;
    use fabric_common::TxId;

    #[test]
    fn renders_all_metric_families() {
        let tx = TxStats { submitted: 10, valid: 6, mvcc_conflict: 4, ..Default::default() };
        let store = StoreStats { multi_get_batches: 3, wal_records: 2, ..Default::default() };
        let phases = PhaseSummary::default();
        let sink = TraceSink::bounded(8);
        sink.emit(EventKind::TxCommitted { block: 1, tx: TxId(1) });
        let text = render(&tx, &store, &phases, &sink);

        assert!(text.contains("fabric_tx_submitted_total 10"));
        assert!(text.contains("fabric_tx_outcomes_total{outcome=\"valid\"} 6"));
        assert!(text.contains("fabric_tx_outcomes_total{outcome=\"mvcc_conflict\"} 4"));
        assert!(text.contains("fabric_store_multi_get_batches_total 3"));
        assert!(text.contains("fabric_store_wal_records_total 2"));
        assert!(text.contains("fabric_phase_latency_microseconds{phase=\"endorse\",stat=\"p99\"} 0"));
        assert!(text.contains("fabric_trace_events_emitted_total 1"));
        assert!(text.contains("fabric_trace_events_dropped_total 0"));
        assert!(text.contains("fabric_trace_spans_dropped_total 0"));
        assert!(text.contains("fabric_trace_ring_capacity 8"));
        assert!(text.contains("fabric_trace_events_retained 1"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "bad exposition line: {line}");
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // An adversarial label stays on one line and inside its quotes.
        let mut out = String::new();
        labeled_counter(&mut out, "m", "h", &[("ke\"y\\na\nme", 7)]);
        let data_line = out.lines().find(|l| !l.starts_with('#')).unwrap();
        assert_eq!(data_line, "m{outcome=\"ke\\\"y\\\\na\\nme\"} 7");
        // Phase labels go through the same escaping.
        let mut out = String::new();
        phase_rows(&mut out, "pha\"se", &LatencySummary::default());
        assert!(out.contains("phase=\"pha\\\"se\""), "{out}");
        assert!(out.lines().all(|l| l.find('\n').is_none()));
    }

    #[test]
    fn span_drops_are_counted_separately() {
        let sink = TraceSink::bounded(2);
        // Fill the ring with spans, then push tx instants over them:
        // every eviction is a span. Then push more instants: evictions
        // are instants, so the span counter stays put.
        sink.emit(EventKind::BlockCut { reason: crate::CutKind::TxCount, txs: 1 });
        sink.emit(EventKind::BlockCut { reason: crate::CutKind::TxCount, txs: 1 });
        sink.emit(EventKind::TxCommitted { block: 1, tx: TxId(1) });
        sink.emit(EventKind::TxCommitted { block: 1, tx: TxId(2) });
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.dropped_spans(), 2);
        sink.emit(EventKind::TxCommitted { block: 1, tx: TxId(3) });
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.dropped_spans(), 2);
        assert_eq!(sink.retained(), 2);
        let text = render(
            &TxStats::default(),
            &StoreStats::default(),
            &PhaseSummary::default(),
            &sink,
        );
        assert!(text.contains("fabric_trace_events_dropped_total 3"));
        assert!(text.contains("fabric_trace_spans_dropped_total 2"));
    }

    #[test]
    fn disabled_sink_reads_zero() {
        let text = render(
            &TxStats::default(),
            &StoreStats::default(),
            &PhaseSummary::default(),
            &TraceSink::disabled(),
        );
        assert!(text.contains("fabric_trace_ring_capacity 0"));
        assert!(text.contains("fabric_trace_events_emitted_total 0"));
    }
}
