//! JSONL (newline-delimited JSON) event dump and parser.
//!
//! One flat JSON object per event, one event per line — greppable,
//! streamable, and the interchange format the CI smoke gate round-trips.
//! Every line carries `seq` (causal order), `us` (microseconds since the
//! sink epoch), and `ev` (the [`EventKind::label`]); the remaining fields
//! are event-specific. Versions render as `"v<block>.<tx>"`, matching the
//! `Display` of [`Version`]; absent optionals render as `null`.
//!
//! Keys are serialized via their `Display` form (UTF-8 keys verbatim,
//! non-UTF-8 as `0x…` hex). All bundled workloads use ASCII composite keys,
//! for which the round-trip is exact.

use std::fmt::Write as _;
use std::io::{self, Write};

use fabric_common::{Key, TxId, Version};

use crate::{CutKind, EventKind, FaultKind, TraceEvent, VoteStep};

/// A malformed JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, with the offending fragment.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace jsonl parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

/// Serializes one event as a single JSON line (no trailing newline).
pub fn event_to_line(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(s, "{{\"seq\":{},\"us\":{},\"ev\":\"{}\"", ev.seq, ev.at_us, ev.kind.label());
    match &ev.kind {
        EventKind::TxSubmitted { tx, channel, client } => {
            let _ = write!(s, ",\"tx\":{},\"chan\":{},\"client\":{}", tx.0, channel.0, client.0);
        }
        EventKind::TxEndorsed { tx, peer, dur_us } => {
            let _ = write!(s, ",\"tx\":{},\"peer\":{},\"dur_us\":{}", tx.0, peer.0, dur_us);
        }
        EventKind::TxEarlyAbortSimulation { tx, key, snapshot_block, observed } => {
            let _ = write!(s, ",\"tx\":{},\"key\":", tx.0);
            push_json_string(&mut s, &key.to_string());
            let _ = write!(
                s,
                ",\"snapshot_block\":{snapshot_block},\"observed\":\"{observed}\""
            );
        }
        EventKind::BlockCut { reason, txs } => {
            let _ = write!(s, ",\"reason\":\"{}\",\"txs\":{}", reason.label(), txs);
        }
        EventKind::TxEarlyAbortVersion { tx, key, expected, observed, conflicting } => {
            let _ = write!(s, ",\"tx\":{},\"key\":", tx.0);
            push_json_string(&mut s, &key.to_string());
            let _ = write!(s, ",\"expected\":\"{expected}\",\"observed\":");
            push_opt_version(&mut s, observed);
            let _ = write!(s, ",\"conflicting\":{}", conflicting.0);
        }
        EventKind::TxEarlyAbortCycle { tx, scc, scc_size, fallback } => {
            let _ = write!(
                s,
                ",\"tx\":{},\"scc\":{scc},\"scc_size\":{scc_size},\"fallback\":{fallback}",
                tx.0
            );
        }
        EventKind::BlockSealed { block, txs, early_aborted, sccs, cycles, fallback, reorder_us } => {
            let _ = write!(
                s,
                ",\"block\":{block},\"txs\":{txs},\"early_aborted\":{early_aborted},\
                 \"sccs\":{sccs},\"cycles\":{cycles},\"fallback\":{fallback},\
                 \"reorder_us\":{reorder_us}"
            );
        }
        EventKind::TxEndorsementFailed { block, tx } => {
            let _ = write!(s, ",\"block\":{block},\"tx\":{}", tx.0);
        }
        EventKind::BlockVscc { block, txs, failures, dur_us } => {
            let _ = write!(
                s,
                ",\"block\":{block},\"txs\":{txs},\"failures\":{failures},\"dur_us\":{dur_us}"
            );
        }
        EventKind::TxMvccConflict { block, tx, key, expected, observed, writer } => {
            let _ = write!(s, ",\"block\":{block},\"tx\":{},\"key\":", tx.0);
            push_json_string(&mut s, &key.to_string());
            s.push_str(",\"expected\":");
            push_opt_version(&mut s, expected);
            s.push_str(",\"observed\":");
            push_opt_version(&mut s, observed);
            s.push_str(",\"writer\":");
            match writer {
                Some(w) => {
                    let _ = write!(s, "{}", w.0);
                }
                None => s.push_str("null"),
            }
        }
        EventKind::BlockMvcc { block, valid, invalid, dur_us } => {
            let _ = write!(
                s,
                ",\"block\":{block},\"valid\":{valid},\"invalid\":{invalid},\"dur_us\":{dur_us}"
            );
        }
        EventKind::TxCommitted { block, tx } => {
            let _ = write!(s, ",\"block\":{block},\"tx\":{}", tx.0);
        }
        EventKind::BlockCommitted { block, valid, invalid, writes, dur_us } => {
            let _ = write!(
                s,
                ",\"block\":{block},\"valid\":{valid},\"invalid\":{invalid},\
                 \"writes\":{writes},\"dur_us\":{dur_us}"
            );
        }
        EventKind::WalRecord { block, fsync } => {
            let _ = write!(s, ",\"block\":{block},\"fsync\":{fsync}");
        }
        EventKind::FaultNet { fault_seq, from, to, nth, verdict, partition } => {
            let _ = write!(
                s,
                ",\"fault_seq\":{fault_seq},\"from\":{from},\"to\":{to},\"nth\":{nth},\
                 \"verdict\":\"{}\",\"partition\":{partition}",
                verdict.label()
            );
        }
        EventKind::FaultWal { fault_seq, block, keep } => {
            let _ = write!(s, ",\"fault_seq\":{fault_seq},\"block\":{block},\"keep\":{keep}");
        }
        EventKind::ConsensusProposal { height, view, leader, txs } => {
            let _ = write!(
                s,
                ",\"height\":{height},\"view\":{view},\"leader\":{leader},\"txs\":{txs}"
            );
        }
        EventKind::ConsensusTally { height, view, replica, step, votes, nil_votes } => {
            let _ = write!(
                s,
                ",\"height\":{height},\"view\":{view},\"replica\":{replica},\
                 \"step\":\"{}\",\"votes\":{votes},\"nil_votes\":{nil_votes}",
                step.label()
            );
        }
        EventKind::ConsensusViewChange {
            height,
            old_view,
            new_view,
            old_leader,
            new_leader,
            replica,
        } => {
            let _ = write!(
                s,
                ",\"height\":{height},\"old_view\":{old_view},\"new_view\":{new_view},\
                 \"old_leader\":{old_leader},\"new_leader\":{new_leader},\"replica\":{replica}"
            );
        }
        EventKind::ConsensusDecide { height, view, replica, txs } => {
            let _ = write!(
                s,
                ",\"height\":{height},\"view\":{view},\"replica\":{replica},\"txs\":{txs}"
            );
        }
    }
    s.push('}');
    s
}

/// Writes every event as one JSONL line.
pub fn write_events<W: Write>(mut w: W, events: &[TraceEvent]) -> io::Result<()> {
    for ev in events {
        writeln!(w, "{}", event_to_line(ev))?;
    }
    Ok(())
}

/// Renders the full stream as one JSONL string.
pub fn to_string(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_line(ev));
        out.push('\n');
    }
    out
}

fn push_opt_version(s: &mut String, v: &Option<Version>) {
    match v {
        Some(v) => {
            let _ = write!(s, "\"{v}\"");
        }
        None => s.push_str("null"),
    }
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, name: &str) -> Option<&Val> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn num(&self, name: &str) -> Result<u64, ParseError> {
        match self.get(name) {
            Some(Val::Num(n)) => Ok(*n),
            other => err(format!("field {name:?}: expected number, got {other:?}")),
        }
    }

    fn string(&self, name: &str) -> Result<&str, ParseError> {
        match self.get(name) {
            Some(Val::Str(s)) => Ok(s),
            other => err(format!("field {name:?}: expected string, got {other:?}")),
        }
    }

    fn boolean(&self, name: &str) -> Result<bool, ParseError> {
        match self.get(name) {
            Some(Val::Bool(b)) => Ok(*b),
            other => err(format!("field {name:?}: expected bool, got {other:?}")),
        }
    }

    fn version(&self, name: &str) -> Result<Version, ParseError> {
        parse_version(self.string(name)?)
    }

    fn opt_version(&self, name: &str) -> Result<Option<Version>, ParseError> {
        match self.get(name) {
            Some(Val::Null) | None => Ok(None),
            Some(Val::Str(s)) => Ok(Some(parse_version(s)?)),
            other => err(format!("field {name:?}: expected version or null, got {other:?}")),
        }
    }

    fn opt_num(&self, name: &str) -> Result<Option<u64>, ParseError> {
        match self.get(name) {
            Some(Val::Null) | None => Ok(None),
            Some(Val::Num(n)) => Ok(Some(*n)),
            other => err(format!("field {name:?}: expected number or null, got {other:?}")),
        }
    }

    fn key(&self, name: &str) -> Result<Key, ParseError> {
        Ok(Key::from(self.string(name)?.to_owned()))
    }
}

fn parse_version(s: &str) -> Result<Version, ParseError> {
    let body = match s.strip_prefix('v') {
        Some(b) => b,
        None => return err(format!("malformed version {s:?}")),
    };
    let (block, tx) = match body.split_once('.') {
        Some(p) => p,
        None => return err(format!("malformed version {s:?}")),
    };
    match (block.parse::<u64>(), tx.parse::<u32>()) {
        (Ok(b), Ok(t)) => Ok(Version::new(b, t)),
        _ => err(format!("malformed version {s:?}")),
    }
}

/// Minimal flat-JSON-object scanner for the fixed shape this module emits:
/// string keys mapping to strings, unsigned integers, booleans, or null.
fn parse_object(line: &str) -> Result<Fields, ParseError> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut fields = Vec::new();

    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };

    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return err("expected '{'");
    }
    i += 1;
    skip_ws(&mut i);
    if i < bytes.len() && bytes[i] == b'}' {
        return Ok(Fields(fields));
    }
    loop {
        skip_ws(&mut i);
        let (name, next) = parse_string(line, i)?;
        i = next;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return err(format!("expected ':' after key {name:?}"));
        }
        i += 1;
        skip_ws(&mut i);
        let (value, next) = parse_value(line, i)?;
        i = next;
        fields.push((name, value));
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                skip_ws(&mut i);
                if i != bytes.len() {
                    return err("trailing content after '}'");
                }
                return Ok(Fields(fields));
            }
            other => return err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn parse_string(line: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = line.as_bytes();
    if start >= bytes.len() || bytes[start] != b'"' {
        return err("expected '\"'");
    }
    let mut out = String::new();
    let mut chars = line[start + 1..].char_indices();
    while let Some((off, c)) = chars.next() {
        match c {
            '"' => return Ok((out, start + 1 + off + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = match chars.next() {
                            Some(p) => p,
                            None => return err("truncated \\u escape"),
                        };
                        code = code * 16
                            + match h.to_digit(16) {
                                Some(d) => d,
                                None => return err("bad \\u escape digit"),
                            };
                    }
                    match char::from_u32(code) {
                        Some(c) => out.push(c),
                        None => return err("invalid \\u code point"),
                    }
                }
                other => return err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    err("unterminated string")
}

fn parse_value(line: &str, start: usize) -> Result<(Val, usize), ParseError> {
    let bytes = line.as_bytes();
    match bytes.get(start) {
        Some(b'"') => {
            let (s, next) = parse_string(line, start)?;
            Ok((Val::Str(s), next))
        }
        Some(b't') if line[start..].starts_with("true") => Ok((Val::Bool(true), start + 4)),
        Some(b'f') if line[start..].starts_with("false") => Ok((Val::Bool(false), start + 5)),
        Some(b'n') if line[start..].starts_with("null") => Ok((Val::Null, start + 4)),
        Some(c) if c.is_ascii_digit() => {
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            match line[start..end].parse::<u64>() {
                Ok(n) => Ok((Val::Num(n), end)),
                Err(_) => err(format!("bad number {:?}", &line[start..end])),
            }
        }
        other => err(format!("unexpected value start {other:?}")),
    }
}

/// Parses one JSONL line back into a [`TraceEvent`].
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let f = parse_object(line)?;
    let seq = f.num("seq")?;
    let at_us = f.num("us")?;
    let label = f.string("ev")?;
    let kind = match label {
        "tx_submitted" => EventKind::TxSubmitted {
            tx: TxId(f.num("tx")?),
            channel: f.num("chan")?.into(),
            client: f.num("client")?.into(),
        },
        "tx_endorsed" => EventKind::TxEndorsed {
            tx: TxId(f.num("tx")?),
            peer: f.num("peer")?.into(),
            dur_us: f.num("dur_us")?,
        },
        "early_abort_simulation" => EventKind::TxEarlyAbortSimulation {
            tx: TxId(f.num("tx")?),
            key: f.key("key")?,
            snapshot_block: f.num("snapshot_block")?,
            observed: f.version("observed")?,
        },
        "block_cut" => EventKind::BlockCut {
            reason: match CutKind::from_label(f.string("reason")?) {
                Some(r) => r,
                None => return err(format!("unknown cut reason {:?}", f.string("reason")?)),
            },
            txs: f.num("txs")? as u32,
        },
        "early_abort_version" => EventKind::TxEarlyAbortVersion {
            tx: TxId(f.num("tx")?),
            key: f.key("key")?,
            expected: f.version("expected")?,
            observed: f.opt_version("observed")?,
            conflicting: TxId(f.num("conflicting")?),
        },
        "early_abort_cycle" => EventKind::TxEarlyAbortCycle {
            tx: TxId(f.num("tx")?),
            scc: f.num("scc")? as u32,
            scc_size: f.num("scc_size")? as u32,
            fallback: f.boolean("fallback")?,
        },
        "block_sealed" => EventKind::BlockSealed {
            block: f.num("block")?,
            txs: f.num("txs")? as u32,
            early_aborted: f.num("early_aborted")? as u32,
            sccs: f.num("sccs")? as u32,
            cycles: f.num("cycles")? as u32,
            fallback: f.boolean("fallback")?,
            reorder_us: f.num("reorder_us")?,
        },
        "endorsement_failed" => EventKind::TxEndorsementFailed {
            block: f.num("block")?,
            tx: TxId(f.num("tx")?),
        },
        "block_vscc" => EventKind::BlockVscc {
            block: f.num("block")?,
            txs: f.num("txs")? as u32,
            failures: f.num("failures")? as u32,
            dur_us: f.num("dur_us")?,
        },
        "mvcc_conflict" => EventKind::TxMvccConflict {
            block: f.num("block")?,
            tx: TxId(f.num("tx")?),
            key: f.key("key")?,
            expected: f.opt_version("expected")?,
            observed: f.opt_version("observed")?,
            writer: f.opt_num("writer")?.map(TxId),
        },
        "block_mvcc" => EventKind::BlockMvcc {
            block: f.num("block")?,
            valid: f.num("valid")? as u32,
            invalid: f.num("invalid")? as u32,
            dur_us: f.num("dur_us")?,
        },
        "tx_committed" => EventKind::TxCommitted {
            block: f.num("block")?,
            tx: TxId(f.num("tx")?),
        },
        "block_committed" => EventKind::BlockCommitted {
            block: f.num("block")?,
            valid: f.num("valid")? as u32,
            invalid: f.num("invalid")? as u32,
            writes: f.num("writes")? as u32,
            dur_us: f.num("dur_us")?,
        },
        "wal_record" => EventKind::WalRecord {
            block: f.num("block")?,
            fsync: f.boolean("fsync")?,
        },
        "fault_net" => EventKind::FaultNet {
            fault_seq: f.num("fault_seq")?,
            from: f.num("from")? as u32,
            to: f.num("to")? as u32,
            nth: f.num("nth")?,
            verdict: match FaultKind::from_label(f.string("verdict")?) {
                Some(v) => v,
                None => return err(format!("unknown verdict {:?}", f.string("verdict")?)),
            },
            partition: f.boolean("partition")?,
        },
        "fault_wal" => EventKind::FaultWal {
            fault_seq: f.num("fault_seq")?,
            block: f.num("block")?,
            keep: f.num("keep")?,
        },
        "consensus_proposal" => EventKind::ConsensusProposal {
            height: f.num("height")?,
            view: f.num("view")?,
            leader: f.num("leader")? as u32,
            txs: f.num("txs")? as u32,
        },
        "consensus_tally" => EventKind::ConsensusTally {
            height: f.num("height")?,
            view: f.num("view")?,
            replica: f.num("replica")? as u32,
            step: match VoteStep::from_label(f.string("step")?) {
                Some(s) => s,
                None => return err(format!("unknown vote step {:?}", f.string("step")?)),
            },
            votes: f.num("votes")? as u32,
            nil_votes: f.num("nil_votes")? as u32,
        },
        "consensus_view_change" => EventKind::ConsensusViewChange {
            height: f.num("height")?,
            old_view: f.num("old_view")?,
            new_view: f.num("new_view")?,
            old_leader: f.num("old_leader")? as u32,
            new_leader: f.num("new_leader")? as u32,
            replica: f.num("replica")? as u32,
        },
        "consensus_decide" => EventKind::ConsensusDecide {
            height: f.num("height")?,
            view: f.num("view")?,
            replica: f.num("replica")? as u32,
            txs: f.num("txs")? as u32,
        },
        other => return err(format!("unknown event label {other:?}")),
    };
    Ok(TraceEvent { seq, at_us, kind })
}

/// Parses a full JSONL dump (blank lines skipped).
pub fn parse_str(s: &str) -> Result<Vec<TraceEvent>, ParseError> {
    s.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, TraceEvent};
    use fabric_common::{ChannelId, ClientId, PeerId};

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::TxSubmitted { tx: TxId(1), channel: ChannelId(0), client: ClientId(3) },
            EventKind::TxEndorsed { tx: TxId(1), peer: PeerId(2), dur_us: 512 },
            EventKind::TxEarlyAbortSimulation {
                tx: TxId(4),
                key: Key::from("checking:7"),
                snapshot_block: 3,
                observed: Version::new(4, 1),
            },
            EventKind::BlockCut { reason: CutKind::UniqueKeys, txs: 12 },
            EventKind::TxEarlyAbortVersion {
                tx: TxId(5),
                key: Key::from("savings:1"),
                expected: Version::new(2, 0),
                observed: Some(Version::new(1, 3)),
                conflicting: TxId(9),
            },
            EventKind::TxEarlyAbortCycle { tx: TxId(6), scc: 1, scc_size: 3, fallback: false },
            EventKind::BlockSealed {
                block: 7,
                txs: 10,
                early_aborted: 2,
                sccs: 1,
                cycles: 4,
                fallback: true,
                reorder_us: 133,
            },
            EventKind::TxEndorsementFailed { block: 7, tx: TxId(8) },
            EventKind::BlockVscc { block: 7, txs: 10, failures: 1, dur_us: 99 },
            EventKind::TxMvccConflict {
                block: 7,
                tx: TxId(11),
                key: Key::from("checking:42"),
                expected: Some(Version::new(1, 0)),
                observed: Some(Version::new(6, 2)),
                writer: None,
            },
            EventKind::TxMvccConflict {
                block: 7,
                tx: TxId(12),
                key: Key::from("a\"b\\c"),
                expected: None,
                observed: None,
                writer: Some(TxId(10)),
            },
            EventKind::BlockMvcc { block: 7, valid: 8, invalid: 2, dur_us: 5 },
            EventKind::TxCommitted { block: 7, tx: TxId(13) },
            EventKind::BlockCommitted { block: 7, valid: 8, invalid: 2, writes: 16, dur_us: 40 },
            EventKind::WalRecord { block: 7, fsync: true },
            EventKind::FaultNet {
                fault_seq: 0,
                from: u32::MAX,
                to: 3,
                nth: 17,
                verdict: FaultKind::Duplicate,
                partition: false,
            },
            EventKind::FaultWal { fault_seq: 1, block: 9, keep: 5 },
            EventKind::ConsensusProposal { height: 3, view: 0, leader: 1, txs: 12 },
            EventKind::ConsensusTally {
                height: 3,
                view: 0,
                replica: 2,
                step: VoteStep::Prevote,
                votes: 2,
                nil_votes: 1,
            },
            EventKind::ConsensusTally {
                height: 3,
                view: 1,
                replica: 0,
                step: VoteStep::Precommit,
                votes: 3,
                nil_votes: 0,
            },
            EventKind::ConsensusViewChange {
                height: 3,
                old_view: 0,
                new_view: 1,
                old_leader: 0,
                new_leader: 1,
                replica: 2,
            },
            EventKind::ConsensusDecide { height: 3, view: 1, replica: 1, txs: 11 },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = TraceEvent { seq: i as u64, at_us: 1000 + i as u64, kind };
            let line = event_to_line(&ev);
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn full_stream_round_trips() {
        let events: Vec<TraceEvent> = all_kinds()
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent { seq: i as u64, at_us: i as u64 * 7, kind })
            .collect();
        let text = to_string(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = parse_str(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn write_events_matches_to_string() {
        let events = vec![TraceEvent {
            seq: 0,
            at_us: 1,
            kind: EventKind::TxCommitted { block: 2, tx: TxId(3) },
        }];
        let mut buf = Vec::new();
        write_events(&mut buf, &events).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), to_string(&events));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\te\u{1}");
        let (back, _) = parse_string(&s, 0).unwrap();
        assert_eq!(back, "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{}").is_err(), "missing required fields");
        assert!(parse_line("{\"seq\":1,\"us\":2,\"ev\":\"no_such_event\"}").is_err());
        assert!(parse_line("{\"seq\":1,\"us\":2,\"ev\":\"tx_committed\"}").is_err());
        assert!(parse_line("{\"seq\":1").is_err());
        assert!(parse_line("{\"seq\":1,\"us\":2,\"ev\":\"tx_committed\",\"block\":1,\"tx\":2}x")
            .is_err());
        assert!(parse_version("v1").is_err());
        assert!(parse_version("1.2").is_err());
        assert_eq!(parse_version("v3.4").unwrap(), Version::new(3, 4));
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n{\"seq\":0,\"us\":0,\"ev\":\"block_cut\",\"reason\":\"flush\",\"txs\":1}\n\n";
        let events = parse_str(text).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::BlockCut { reason: CutKind::Flush, txs: 1 });
    }
}
