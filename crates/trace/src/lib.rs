//! # fabric-trace
//!
//! Transaction flight recorder for the Fabric++ reproduction.
//!
//! The paper's whole argument is about *where and why* transactions die in
//! the simulate-order-validate-commit pipeline (§4.2, §5.2, Tables 1–2):
//! late MVCC aborts under vanilla Fabric versus Fabric++'s early aborts in
//! the simulation and ordering phases. The aggregate counters in
//! `fabric-common::metrics` can say *how many* transactions died per
//! outcome; this crate records *which* transaction died *where*, killed by
//! *which key* at *which versions*, by *which conflicting transaction or
//! cycle* — one structured event stream per run.
//!
//! ## Event model
//!
//! Every pipeline stage emits fixed-size [`EventKind`] values into a shared
//! [`TraceSink`]. Per-transaction lifecycle events (`TxSubmitted` →
//! `TxEndorsed` → … → `TxCommitted`, or one of the abort events carrying
//! provenance) interleave with per-block span events (`BlockCut`,
//! `BlockSealed`, `BlockVscc`, `BlockMvcc`, `BlockCommitted`, `WalRecord`)
//! and chaos fault events (`FaultNet`, `FaultWal`), all causally ordered by
//! the sink's global sequence number.
//!
//! ## Overhead contract
//!
//! The sink is a bounded MPSC ring: a pre-allocated slot array, an atomic
//! ticket counter for sequence/slot assignment, and one tiny per-slot mutex
//! (std futex underneath — no allocation, contended only when two writers
//! collide on the same slot modulo capacity). When full it drops the
//! *oldest* events, counting them in [`TraceSink::dropped`]. Emitting is
//! allocation-free: event payloads are `Copy` ids/versions plus refcounted
//! [`Key`] handles, so the pipeline's zero-allocation hot paths (see the
//! counting-allocator release tests) stay zero-allocation with tracing
//! enabled. [`TraceSink::disabled`] is a `None` sink whose `emit` is a
//! branch on an `Option` — the default everywhere, costing one predictable
//! branch when tracing is off.
//!
//! ## Exporters
//!
//! * [`jsonl`] — newline-delimited JSON event dump plus a parser
//!   (round-trip tested), the interchange format.
//! * [`chrome`] — Chrome trace-event JSON (`chrome://tracing`, Perfetto):
//!   block-phase spans on per-phase tracks, abort/fault instants.
//! * [`prom`] — Prometheus-style text exposition of `TxStats`,
//!   `StoreStats`, and `PhaseSummary` snapshots plus the sink's own
//!   emitted/dropped counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fabric_common::{BlockNum, ChannelId, ClientId, Key, PeerId, TxId, Version};
use parking_lot::Mutex;

pub mod chrome;
pub mod jsonl;
pub mod prom;

/// Default ring capacity: holds the full event stream of roughly 60
/// thousand emissions (≈ tens of 1024-tx blocks with per-tx events) before
/// drop-oldest engages.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Why the ordering service cut a batch (mirrors the cutter's `CutReason`
/// without depending on `fabric-ordering`, which depends on this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutKind {
    /// Condition (a): transaction-count threshold.
    TxCount,
    /// Condition (b): byte-size threshold.
    Bytes,
    /// Condition (c): batch timeout.
    Timeout,
    /// Condition (d), Fabric++: unique-key threshold.
    UniqueKeys,
    /// Explicit flush at shutdown.
    Flush,
}

impl CutKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            CutKind::TxCount => "tx_count",
            CutKind::Bytes => "bytes",
            CutKind::Timeout => "timeout",
            CutKind::UniqueKeys => "unique_keys",
            CutKind::Flush => "flush",
        }
    }

    /// Inverse of [`CutKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "tx_count" => CutKind::TxCount,
            "bytes" => CutKind::Bytes,
            "timeout" => CutKind::Timeout,
            "unique_keys" => CutKind::UniqueKeys,
            "flush" => CutKind::Flush,
            _ => return None,
        })
    }
}

/// Network fault verdict kind (mirrors `fabric-net::SendFault` without the
/// payload knobs — the trace records *that* and *where* a fault fired; the
/// chaos event log remains the authoritative schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Message silently discarded.
    Drop,
    /// Message delivered more than once.
    Duplicate,
    /// Message delayed by a latency spike.
    Delay,
    /// Message caught in a reorder burst.
    Reorder,
}

impl FaultKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
        }
    }

    /// Inverse of [`FaultKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "drop" => FaultKind::Drop,
            "duplicate" => FaultKind::Duplicate,
            "delay" => FaultKind::Delay,
            "reorder" => FaultKind::Reorder,
            _ => return None,
        })
    }
}

/// Which consensus voting step a tally belongs to (mirrors the replicated
/// orderer's two-phase vote without depending on `fabric-consensus`, which
/// depends on this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoteStep {
    /// First voting round: validate the leader's prepared batch.
    Prevote,
    /// Second voting round: commit the prevote-quorum digest.
    Precommit,
}

impl VoteStep {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            VoteStep::Prevote => "prevote",
            VoteStep::Precommit => "precommit",
        }
    }

    /// Inverse of [`VoteStep::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "prevote" => VoteStep::Prevote,
            "precommit" => VoteStep::Precommit,
            _ => return None,
        })
    }
}

/// One recorded pipeline event. All payloads are fixed-size: `Copy` ids and
/// versions plus refcounted [`Key`] handles, so constructing and storing an
/// event never allocates.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A client submitted a proposal.
    TxSubmitted {
        /// The transaction.
        tx: TxId,
        /// Channel it was submitted on.
        channel: ChannelId,
        /// Submitting client.
        client: ClientId,
    },
    /// An endorsing peer simulated and signed a proposal.
    TxEndorsed {
        /// The transaction.
        tx: TxId,
        /// The endorsing peer.
        peer: PeerId,
        /// Simulation + signing wall time in microseconds.
        dur_us: u64,
    },
    /// Fabric++ simulation-phase early abort: a read observed a version
    /// newer than the transaction's snapshot (paper §5.2.1, Figure 6).
    TxEarlyAbortSimulation {
        /// The doomed transaction.
        tx: TxId,
        /// The key whose read was stale.
        key: Key,
        /// Last block visible to the transaction's snapshot.
        snapshot_block: BlockNum,
        /// The (newer) version the read actually observed.
        observed: Version,
    },
    /// The ordering service cut a batch (block number not yet assigned —
    /// sealing happens after early abort + reordering; causal order in the
    /// stream ties this cut to the following `BlockSealed`).
    BlockCut {
        /// Which cutting condition fired.
        reason: CutKind,
        /// Transactions in the cut batch.
        txs: u32,
    },
    /// Fabric++ ordering-phase early abort (paper §5.2.2): within one
    /// batch, this transaction read `key` at a version older than the
    /// newest read of the same key — it is doomed to fail validation.
    TxEarlyAbortVersion {
        /// The doomed transaction.
        tx: TxId,
        /// The key whose read versions mismatch within the batch.
        key: Key,
        /// The newest version of `key` read within the batch (what a
        /// surviving transaction must have read).
        expected: Version,
        /// The stale version this transaction read (`None` = it read the
        /// key as absent before a later commit created it).
        observed: Option<Version>,
        /// The in-batch transaction that read (and thus proves) the newest
        /// version — the conflicting witness.
        conflicting: TxId,
    },
    /// Fabric++ reorder-phase abort (paper §5.1, Algorithm 1): the
    /// transaction sits on an unbreakable conflict cycle. Aborted
    /// transactions sharing one `scc` id are members of the same strongly
    /// connected component of the conflict graph — the cycle membership.
    TxEarlyAbortCycle {
        /// The doomed transaction.
        tx: TxId,
        /// Conflict-graph SCC (cycle component) this abort belongs to,
        /// unique within the batch.
        scc: u32,
        /// Number of transactions in that component.
        scc_size: u32,
        /// True when the abort came from the SCC-condensation fallback
        /// (cycle budget exhausted) rather than Johnson enumeration.
        fallback: bool,
    },
    /// The ordering service sealed a block from a cut batch (after early
    /// abort and, under the reorder policy, Algorithm 1).
    BlockSealed {
        /// Assigned block number.
        block: BlockNum,
        /// Surviving transactions in the block.
        txs: u32,
        /// Transactions aborted at order time (version mismatch + cycle).
        early_aborted: u32,
        /// Non-trivial SCCs found in the conflict graph.
        sccs: u32,
        /// Elementary cycles enumerated.
        cycles: u32,
        /// Whether the reorderer fell back to SCC-condensation breaking.
        fallback: bool,
        /// Wall time of the reorder pass in microseconds (0 under the
        /// arrival policy).
        reorder_us: u64,
    },
    /// A transaction failed endorsement-policy / signature validation
    /// (Fabric's VSCC).
    TxEndorsementFailed {
        /// The block being validated.
        block: BlockNum,
        /// The failing transaction.
        tx: TxId,
    },
    /// Per-block VSCC span: signature checking finished.
    BlockVscc {
        /// The validated block.
        block: BlockNum,
        /// Transactions checked.
        txs: u32,
        /// Transactions whose endorsements failed.
        failures: u32,
        /// Wall time in microseconds (pool wall time under the parallel
        /// validation pool).
        dur_us: u64,
    },
    /// MVCC serializability abort (paper §2.2.3): a committed read version
    /// no longer matches the current state, or an earlier transaction in
    /// the same block already wrote the key.
    TxMvccConflict {
        /// The block being validated.
        block: BlockNum,
        /// The aborted transaction.
        tx: TxId,
        /// The offending key (first stale read encountered).
        key: Key,
        /// The version the transaction read during simulation (`None` for
        /// a read of an absent key).
        expected: Option<Version>,
        /// The version the validator observed in current state (`None`
        /// when the key is absent). For a conflict against an earlier
        /// committed block, `observed.block`/`observed.tx` name the
        /// committing transaction's position.
        observed: Option<Version>,
        /// For a *within-block* conflict: the earlier transaction in this
        /// block that wrote `key`. `None` when the conflict is against
        /// already-committed state (then `observed` carries provenance).
        writer: Option<TxId>,
    },
    /// Per-block MVCC span: the serializability scan finished.
    BlockMvcc {
        /// The validated block.
        block: BlockNum,
        /// Transactions that passed.
        valid: u32,
        /// Transactions aborted (endorsement + MVCC).
        invalid: u32,
        /// Wall time in microseconds.
        dur_us: u64,
    },
    /// A transaction committed as valid.
    TxCommitted {
        /// The committing block.
        block: BlockNum,
        /// The transaction.
        tx: TxId,
    },
    /// Per-block commit span: writes applied and block appended.
    BlockCommitted {
        /// The committed block.
        block: BlockNum,
        /// Valid transactions.
        valid: u32,
        /// Invalid transactions (recorded in the block, writes skipped).
        invalid: u32,
        /// Key writes applied to state.
        writes: u32,
        /// Wall time in microseconds.
        dur_us: u64,
    },
    /// The LSM engine wrote one group-commit WAL record for a block.
    WalRecord {
        /// The block the record covers.
        block: BlockNum,
        /// Whether the record was fsynced.
        fsync: bool,
    },
    /// A chaos network fault fired (mirrors the injector's event log; the
    /// injector's own sequence number preserves the causal order of the
    /// fault schedule within the interleaved stream).
    FaultNet {
        /// The injector's global fault sequence number.
        fault_seq: u64,
        /// Sending endpoint of the affected link.
        from: u32,
        /// Receiving endpoint of the affected link.
        to: u32,
        /// 0-based index of the message on that link.
        nth: u64,
        /// What the fault did to the message.
        verdict: FaultKind,
        /// True when a scheduled partition (not a dice roll) fired.
        partition: bool,
    },
    /// A chaos WAL fault fired (torn write).
    FaultWal {
        /// The injector's global fault sequence number.
        fault_seq: u64,
        /// The WAL block the fault fired on.
        block: BlockNum,
        /// Bytes of the frame kept on disk.
        keep: u64,
    },
    /// A replicated-orderer leader broadcast a prepared-batch proposal for
    /// one consensus height/view.
    ConsensusProposal {
        /// Consensus height (decoupled from block numbers: empty-plan
        /// heights consume no block number).
        height: u64,
        /// View within the height (0 until a leader times out).
        view: u64,
        /// Proposing replica (the leader of this height/view).
        leader: u32,
        /// Transactions in the proposed batch (before early abort).
        txs: u32,
    },
    /// A replica's vote tally for one step reached quorum.
    ConsensusTally {
        /// Consensus height.
        height: u64,
        /// View within the height.
        view: u64,
        /// The tallying replica.
        replica: u32,
        /// Which voting step completed.
        step: VoteStep,
        /// Votes for the winning plan digest (0 when nil won).
        votes: u32,
        /// Nil votes counted alongside (followers that could not validate
        /// the proposal against their own mempool plan).
        nil_votes: u32,
    },
    /// A replica moved to a new view after a leader timeout (quorum of
    /// new-view votes).
    ConsensusViewChange {
        /// Consensus height.
        height: u64,
        /// The abandoned view.
        old_view: u64,
        /// The entered view.
        new_view: u64,
        /// Leader of the abandoned view (the one that timed out).
        old_leader: u32,
        /// Leader of the entered view.
        new_leader: u32,
        /// The replica performing the view change.
        replica: u32,
    },
    /// A replica decided one consensus height (precommit quorum).
    ConsensusDecide {
        /// Consensus height.
        height: u64,
        /// View the decision landed in.
        view: u64,
        /// The deciding replica.
        replica: u32,
        /// Surviving transactions in the decided plan.
        txs: u32,
    },
}

impl EventKind {
    /// Stable lowercase label naming the event type in the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TxSubmitted { .. } => "tx_submitted",
            EventKind::TxEndorsed { .. } => "tx_endorsed",
            EventKind::TxEarlyAbortSimulation { .. } => "early_abort_simulation",
            EventKind::BlockCut { .. } => "block_cut",
            EventKind::TxEarlyAbortVersion { .. } => "early_abort_version",
            EventKind::TxEarlyAbortCycle { .. } => "early_abort_cycle",
            EventKind::BlockSealed { .. } => "block_sealed",
            EventKind::TxEndorsementFailed { .. } => "endorsement_failed",
            EventKind::BlockVscc { .. } => "block_vscc",
            EventKind::TxMvccConflict { .. } => "mvcc_conflict",
            EventKind::BlockMvcc { .. } => "block_mvcc",
            EventKind::TxCommitted { .. } => "tx_committed",
            EventKind::BlockCommitted { .. } => "block_committed",
            EventKind::WalRecord { .. } => "wal_record",
            EventKind::FaultNet { .. } => "fault_net",
            EventKind::FaultWal { .. } => "fault_wal",
            EventKind::ConsensusProposal { .. } => "consensus_proposal",
            EventKind::ConsensusTally { .. } => "consensus_tally",
            EventKind::ConsensusViewChange { .. } => "consensus_view_change",
            EventKind::ConsensusDecide { .. } => "consensus_decide",
        }
    }

    /// Whether this is a per-block *span* event (the block-phase events
    /// the Chrome exporter renders as duration tracks), as opposed to a
    /// per-transaction or fault instant. Span drops are accounted
    /// separately: losing one hole-punches a whole block's phase timeline,
    /// where losing a tx instant only thins one transaction's story.
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            EventKind::BlockCut { .. }
                | EventKind::BlockSealed { .. }
                | EventKind::BlockVscc { .. }
                | EventKind::BlockMvcc { .. }
                | EventKind::BlockCommitted { .. }
        )
    }

    /// The transaction this event is about, if it is a per-tx event.
    pub fn tx(&self) -> Option<TxId> {
        match self {
            EventKind::TxSubmitted { tx, .. }
            | EventKind::TxEndorsed { tx, .. }
            | EventKind::TxEarlyAbortSimulation { tx, .. }
            | EventKind::TxEarlyAbortVersion { tx, .. }
            | EventKind::TxEarlyAbortCycle { tx, .. }
            | EventKind::TxEndorsementFailed { tx, .. }
            | EventKind::TxMvccConflict { tx, .. }
            | EventKind::TxCommitted { tx, .. } => Some(*tx),
            _ => None,
        }
    }
}

/// One event as recorded: the payload plus the sink-assigned global
/// sequence number and a microsecond timestamp relative to the sink epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (the causal order of the stream).
    pub seq: u64,
    /// Microseconds since the sink was created.
    pub at_us: u64,
    /// The event payload.
    pub kind: EventKind,
}

struct Ring {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    next: AtomicU64,
    dropped: AtomicU64,
    dropped_spans: AtomicU64,
    epoch: Instant,
}

impl Ring {
    fn emit(&self, kind: EventKind) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let at_us = self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (seq % self.slots.len() as u64) as usize;
        let mut slot = self.slots[idx].lock();
        if let Some(old) = slot.as_ref() {
            // Drop-oldest: the previous occupant was never drained. Span
            // losses are tallied separately (`dropped_spans`).
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if old.kind.is_span() {
                self.dropped_spans.fetch_add(1, Ordering::Relaxed);
            }
        }
        *slot = Some(TraceEvent { seq, at_us, kind });
    }
}

/// The flight recorder's shared sink handle. Cheap to clone; all clones
/// feed one ring. The [`TraceSink::disabled`] sink makes every `emit` a
/// no-op branch, which is the default wiring everywhere.
#[derive(Clone)]
pub struct TraceSink {
    ring: Option<Arc<Ring>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ring {
            Some(r) => f
                .debug_struct("TraceSink")
                .field("capacity", &r.slots.len())
                .field("emitted", &r.next.load(Ordering::Relaxed))
                .field("dropped", &r.dropped.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("TraceSink(disabled)"),
        }
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::disabled()
    }
}

impl TraceSink {
    /// The no-op sink: `emit` is a branch on `None`, nothing is recorded.
    pub fn disabled() -> Self {
        TraceSink { ring: None }
    }

    /// An enabled sink with [`DEFAULT_CAPACITY`] slots.
    pub fn enabled() -> Self {
        Self::bounded(DEFAULT_CAPACITY)
    }

    /// An enabled sink holding at most `capacity` events; when full, the
    /// oldest undrained events are overwritten and counted as dropped.
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
        TraceSink {
            ring: Some(Arc::new(Ring {
                slots,
                next: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                dropped_spans: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Records one event. Allocation-free; a no-op on a disabled sink.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(ring) = &self.ring {
            ring.emit(kind);
        }
    }

    /// Ring capacity (0 for a disabled sink).
    pub fn capacity(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.slots.len())
    }

    /// Total events emitted so far (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.next.load(Ordering::Relaxed))
    }

    /// Events lost to drop-oldest overwrites so far.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.dropped.load(Ordering::Relaxed))
    }

    /// Per-block span events among the dropped (a subset of
    /// [`TraceSink::dropped`]): each one is a hole in a block's phase
    /// timeline, so exposition reports them as their own metric.
    pub fn dropped_spans(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.dropped_spans.load(Ordering::Relaxed))
    }

    /// Events currently retained in the ring (not yet drained, not
    /// overwritten). Cold path: walks every slot.
    pub fn retained(&self) -> u64 {
        self.ring
            .as_ref()
            .map_or(0, |r| r.slots.iter().filter(|s| s.lock().is_some()).count() as u64)
    }

    /// Removes and returns every retained event, oldest first (by sequence
    /// number). Cold path: allocates freely. Subsequent emissions start
    /// filling the ring again; `emitted`/`dropped` totals are cumulative.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let Some(ring) = &self.ring else {
            return Vec::new();
        };
        let mut out: Vec<TraceEvent> = Vec::with_capacity(ring.slots.len());
        for slot in &ring.slots {
            if let Some(ev) = slot.lock().take() {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Drains the ring into a final [`TraceReport`] for end-of-run
    /// reporting (`RunReport.trace`).
    pub fn report(&self) -> TraceReport {
        TraceReport {
            capacity: self.capacity(),
            emitted: self.emitted(),
            dropped: self.dropped(),
            events: self.drain(),
        }
    }
}

/// End-of-run view of the flight recorder: the drained event stream plus
/// the ring's accounting.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Ring capacity the run used.
    pub capacity: usize,
    /// Total events emitted (including dropped).
    pub emitted: u64,
    /// Events lost to drop-oldest.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl TraceReport {
    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events whose payload concerns transaction `tx`, in causal order —
    /// the per-transaction lifecycle slice of the stream.
    pub fn lifecycle(&self, tx: TxId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind.tx() == Some(tx)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::TxCommitted { block: 1, tx: TxId(i) }
    }

    #[test]
    fn disabled_sink_is_a_no_op() {
        let s = TraceSink::disabled();
        assert!(!s.is_enabled());
        s.emit(ev(1));
        assert_eq!(s.emitted(), 0);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.capacity(), 0);
        assert!(s.drain().is_empty());
        assert!(s.report().is_empty());
    }

    #[test]
    fn events_come_back_in_sequence_order() {
        let s = TraceSink::bounded(16);
        for i in 0..10 {
            s.emit(ev(i));
        }
        let events = s.drain();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, ev(i as u64));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.emitted(), 10);
    }

    #[test]
    fn full_ring_drops_oldest() {
        let s = TraceSink::bounded(4);
        for i in 0..10 {
            s.emit(ev(i));
        }
        assert_eq!(s.emitted(), 10);
        assert_eq!(s.dropped(), 6);
        let events = s.drain();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest four retained");
    }

    #[test]
    fn drain_resets_retention_but_not_totals() {
        let s = TraceSink::bounded(8);
        s.emit(ev(0));
        assert_eq!(s.drain().len(), 1);
        assert!(s.drain().is_empty());
        s.emit(ev(1));
        let again = s.drain();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].seq, 1);
        assert_eq!(s.emitted(), 2);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn clones_share_one_ring() {
        let s = TraceSink::bounded(8);
        let c = s.clone();
        c.emit(ev(0));
        s.emit(ev(1));
        assert_eq!(s.emitted(), 2);
        assert_eq!(s.drain().len(), 2);
    }

    #[test]
    fn concurrent_emitters_lose_nothing_under_capacity() {
        let s = TraceSink::bounded(4096);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        s.emit(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.emitted(), 2000);
        assert_eq!(s.dropped(), 0);
        let events = s.drain();
        assert_eq!(events.len(), 2000);
        // Sequence numbers are a permutation of 0..2000.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..2000).collect::<Vec<u64>>());
    }

    #[test]
    fn report_slices_per_tx_lifecycle() {
        let s = TraceSink::bounded(16);
        s.emit(EventKind::TxSubmitted { tx: TxId(7), channel: ChannelId(0), client: ClientId(1) });
        s.emit(EventKind::BlockCut { reason: CutKind::TxCount, txs: 2 });
        s.emit(EventKind::TxCommitted { block: 1, tx: TxId(7) });
        s.emit(EventKind::TxCommitted { block: 1, tx: TxId(8) });
        let r = s.report();
        assert_eq!(r.len(), 4);
        let life = r.lifecycle(TxId(7));
        assert_eq!(life.len(), 2);
        assert_eq!(life[0].kind.label(), "tx_submitted");
        assert_eq!(life[1].kind.label(), "tx_committed");
    }

    #[test]
    fn labels_round_trip() {
        for k in [
            CutKind::TxCount,
            CutKind::Bytes,
            CutKind::Timeout,
            CutKind::UniqueKeys,
            CutKind::Flush,
        ] {
            assert_eq!(CutKind::from_label(k.label()), Some(k));
        }
        assert_eq!(CutKind::from_label("nope"), None);
        for k in [FaultKind::Drop, FaultKind::Duplicate, FaultKind::Delay, FaultKind::Reorder] {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FaultKind::from_label("nope"), None);
        for k in [VoteStep::Prevote, VoteStep::Precommit] {
            assert_eq!(VoteStep::from_label(k.label()), Some(k));
        }
        assert_eq!(VoteStep::from_label("nope"), None);
    }
}
