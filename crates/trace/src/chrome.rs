//! Chrome trace-event exporter (`chrome://tracing`, <https://ui.perfetto.dev>).
//!
//! Renders the flight-recorder stream as a trace-event JSON object:
//!
//! * Per-block pipeline spans (`order`, `vscc`, `mvcc`, `commit`) and
//!   per-transaction endorsement spans become `"X"` *complete* events on
//!   named tracks, so the pipeline's phase overlap is visible on a shared
//!   timeline.
//! * Aborts (with their provenance in `args`), block cuts, WAL records,
//!   and chaos faults become `"i"` *instant* events.
//!
//! Timestamps are the sink-relative microsecond clock; span events were
//! emitted at completion, so their `ts` is `at_us - dur`.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::jsonl::push_json_string;
use crate::{EventKind, TraceEvent};

/// Virtual process id for the pipeline tracks.
const PID: u32 = 1;

/// Track (tid, name) layout, one lane per pipeline stage plus one for
/// instants that have no duration.
const TRACKS: [(u32, &str); 8] = [
    (1, "endorse"),
    (2, "order"),
    (3, "validate-vscc"),
    (4, "validate-mvcc"),
    (5, "commit"),
    (6, "lifecycle-events"),
    (7, "faults"),
    (8, "consensus"),
];

const TID_ENDORSE: u32 = 1;
const TID_ORDER: u32 = 2;
const TID_VSCC: u32 = 3;
const TID_MVCC: u32 = 4;
const TID_COMMIT: u32 = 5;
const TID_EVENTS: u32 = 6;
const TID_FAULTS: u32 = 7;
const TID_CONSENSUS: u32 = 8;

fn span(out: &mut String, name: &str, end_us: u64, dur_us: u64, tid: u32, args: &[(&str, String)]) {
    let ts = end_us.saturating_sub(dur_us);
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":{ts},\
         \"dur\":{dur_us},\"pid\":{PID},\"tid\":{tid},\"args\":{{"
    );
    push_args(out, args);
    out.push_str("}}");
}

fn instant(out: &mut String, name: &str, ts: u64, tid: u32, args: &[(&str, String)]) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\
         \"pid\":{PID},\"tid\":{tid},\"args\":{{"
    );
    push_args(out, args);
    out.push_str("}}");
}

fn push_args(out: &mut String, args: &[(&str, String)]) {
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        push_json_string(out, v);
    }
}

fn event_json(ev: &TraceEvent) -> Option<String> {
    let mut s = String::with_capacity(160);
    let ts = ev.at_us;
    match &ev.kind {
        EventKind::TxSubmitted { tx, channel, client } => instant(
            &mut s,
            "tx_submitted",
            ts,
            TID_EVENTS,
            &[
                ("tx", tx.to_string()),
                ("channel", channel.to_string()),
                ("client", client.to_string()),
            ],
        ),
        EventKind::TxEndorsed { tx, peer, dur_us } => span(
            &mut s,
            "endorse",
            ts,
            *dur_us,
            TID_ENDORSE,
            &[("tx", tx.to_string()), ("peer", peer.to_string())],
        ),
        EventKind::TxEarlyAbortSimulation { tx, key, snapshot_block, observed } => instant(
            &mut s,
            "early_abort_simulation",
            ts,
            TID_EVENTS,
            &[
                ("tx", tx.to_string()),
                ("key", key.to_string()),
                ("snapshot_block", snapshot_block.to_string()),
                ("observed", observed.to_string()),
            ],
        ),
        EventKind::BlockCut { reason, txs } => instant(
            &mut s,
            "block_cut",
            ts,
            TID_ORDER,
            &[("reason", reason.label().to_string()), ("txs", txs.to_string())],
        ),
        EventKind::TxEarlyAbortVersion { tx, key, expected, observed, conflicting } => instant(
            &mut s,
            "early_abort_version",
            ts,
            TID_EVENTS,
            &[
                ("tx", tx.to_string()),
                ("key", key.to_string()),
                ("expected", expected.to_string()),
                ("observed", opt_str(observed)),
                ("conflicting", conflicting.to_string()),
            ],
        ),
        EventKind::TxEarlyAbortCycle { tx, scc, scc_size, fallback } => instant(
            &mut s,
            "early_abort_cycle",
            ts,
            TID_EVENTS,
            &[
                ("tx", tx.to_string()),
                ("scc", scc.to_string()),
                ("scc_size", scc_size.to_string()),
                ("fallback", fallback.to_string()),
            ],
        ),
        EventKind::BlockSealed { block, txs, early_aborted, sccs, cycles, fallback, reorder_us } => {
            span(
                &mut s,
                "order",
                ts,
                *reorder_us,
                TID_ORDER,
                &[
                    ("block", block.to_string()),
                    ("txs", txs.to_string()),
                    ("early_aborted", early_aborted.to_string()),
                    ("sccs", sccs.to_string()),
                    ("cycles", cycles.to_string()),
                    ("fallback", fallback.to_string()),
                ],
            )
        }
        EventKind::TxEndorsementFailed { block, tx } => instant(
            &mut s,
            "endorsement_failed",
            ts,
            TID_EVENTS,
            &[("block", block.to_string()), ("tx", tx.to_string())],
        ),
        EventKind::BlockVscc { block, txs, failures, dur_us } => span(
            &mut s,
            "vscc",
            ts,
            *dur_us,
            TID_VSCC,
            &[
                ("block", block.to_string()),
                ("txs", txs.to_string()),
                ("failures", failures.to_string()),
            ],
        ),
        EventKind::TxMvccConflict { block, tx, key, expected, observed, writer } => instant(
            &mut s,
            "mvcc_conflict",
            ts,
            TID_EVENTS,
            &[
                ("block", block.to_string()),
                ("tx", tx.to_string()),
                ("key", key.to_string()),
                ("expected", opt_str(expected)),
                ("observed", opt_str(observed)),
                ("writer", opt_str(writer)),
            ],
        ),
        EventKind::BlockMvcc { block, valid, invalid, dur_us } => span(
            &mut s,
            "mvcc",
            ts,
            *dur_us,
            TID_MVCC,
            &[
                ("block", block.to_string()),
                ("valid", valid.to_string()),
                ("invalid", invalid.to_string()),
            ],
        ),
        // Per-tx commit confirmations would bury the timeline; the JSONL
        // stream keeps them, the visual trace shows the block-level span.
        EventKind::TxCommitted { .. } => return None,
        EventKind::BlockCommitted { block, valid, invalid, writes, dur_us } => span(
            &mut s,
            "commit",
            ts,
            *dur_us,
            TID_COMMIT,
            &[
                ("block", block.to_string()),
                ("valid", valid.to_string()),
                ("invalid", invalid.to_string()),
                ("writes", writes.to_string()),
            ],
        ),
        EventKind::WalRecord { block, fsync } => instant(
            &mut s,
            "wal_record",
            ts,
            TID_COMMIT,
            &[("block", block.to_string()), ("fsync", fsync.to_string())],
        ),
        EventKind::FaultNet { fault_seq, from, to, nth, verdict, partition } => instant(
            &mut s,
            "fault_net",
            ts,
            TID_FAULTS,
            &[
                ("fault_seq", fault_seq.to_string()),
                ("link", format!("{from}->{to}")),
                ("nth", nth.to_string()),
                ("verdict", verdict.label().to_string()),
                ("partition", partition.to_string()),
            ],
        ),
        EventKind::FaultWal { fault_seq, block, keep } => instant(
            &mut s,
            "fault_wal",
            ts,
            TID_FAULTS,
            &[
                ("fault_seq", fault_seq.to_string()),
                ("block", block.to_string()),
                ("keep", keep.to_string()),
            ],
        ),
        EventKind::ConsensusProposal { height, view, leader, txs } => instant(
            &mut s,
            "consensus_proposal",
            ts,
            TID_CONSENSUS,
            &[
                ("height", height.to_string()),
                ("view", view.to_string()),
                ("leader", leader.to_string()),
                ("txs", txs.to_string()),
            ],
        ),
        EventKind::ConsensusTally { height, view, replica, step, votes, nil_votes } => instant(
            &mut s,
            "consensus_tally",
            ts,
            TID_CONSENSUS,
            &[
                ("height", height.to_string()),
                ("view", view.to_string()),
                ("replica", replica.to_string()),
                ("step", step.label().to_string()),
                ("votes", votes.to_string()),
                ("nil_votes", nil_votes.to_string()),
            ],
        ),
        EventKind::ConsensusViewChange {
            height,
            old_view,
            new_view,
            old_leader,
            new_leader,
            replica,
        } => instant(
            &mut s,
            "consensus_view_change",
            ts,
            TID_CONSENSUS,
            &[
                ("height", height.to_string()),
                ("view", format!("{old_view}->{new_view}")),
                ("leader", format!("{old_leader}->{new_leader}")),
                ("replica", replica.to_string()),
            ],
        ),
        EventKind::ConsensusDecide { height, view, replica, txs } => instant(
            &mut s,
            "consensus_decide",
            ts,
            TID_CONSENSUS,
            &[
                ("height", height.to_string()),
                ("view", view.to_string()),
                ("replica", replica.to_string()),
                ("txs", txs.to_string()),
            ],
        ),
    }
    Some(s)
}

fn opt_str<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "none".to_string(),
    }
}

/// Renders the stream as one Chrome trace-event JSON document.
pub fn to_string(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in TRACKS {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for ev in events {
        if let Some(json) = event_json(ev) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&json);
        }
    }
    out.push_str("]}");
    out
}

/// Writes the trace-event document to `w`.
pub fn write_trace<W: Write>(mut w: W, events: &[TraceEvent]) -> io::Result<()> {
    w.write_all(to_string(events).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::{Key, TxId, Version};

    #[test]
    fn renders_spans_and_instants() {
        let events = vec![
            TraceEvent {
                seq: 0,
                at_us: 120,
                kind: EventKind::TxEndorsed { tx: TxId(1), peer: 2u64.into(), dur_us: 100 },
            },
            TraceEvent {
                seq: 1,
                at_us: 200,
                kind: EventKind::TxMvccConflict {
                    block: 3,
                    tx: TxId(4),
                    key: Key::from("k:1"),
                    expected: Some(Version::new(1, 0)),
                    observed: None,
                    writer: Some(TxId(2)),
                },
            },
            TraceEvent { seq: 2, at_us: 300, kind: EventKind::TxCommitted { block: 3, tx: TxId(4) } },
        ];
        let doc = to_string(&events);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"ph\":\"X\""), "endorse span present");
        assert!(doc.contains("\"ts\":20"), "span ts = at_us - dur");
        assert!(doc.contains("\"ph\":\"i\""), "conflict instant present");
        assert!(doc.contains("mvcc_conflict"));
        assert!(doc.contains("\"thread_name\""));
        assert!(!doc.contains("tx_committed"), "per-tx commits stay out of the visual trace");
    }

    #[test]
    fn span_ts_saturates_at_zero() {
        let events = vec![TraceEvent {
            seq: 0,
            at_us: 10,
            kind: EventKind::TxEndorsed { tx: TxId(1), peer: 2u64.into(), dur_us: 50 },
        }];
        assert!(to_string(&events).contains("\"ts\":0"));
    }

    #[test]
    fn empty_stream_is_still_valid_json_shape() {
        let doc = to_string(&[]);
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
    }
}
