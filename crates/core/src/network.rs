//! Building and running a whole Fabric/Fabric++ network.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric_common::{
    ChannelId, ClientId, CostModel, Error, Key, LatencyRecorder, LatencySummary, OrgId, PeerId,
    PhaseSummary, PhaseTimers, PipelineConfig, Result, SignerRegistry, SigningKey, StoreStats,
    SubsystemGauges, TxCounters, TxStats, Value,
};
use fabric_net::{FaultHook, LatencyModel, NetStats};
use fabric_ordering::{OrdererStats, OrdererStatsSnapshot};
use fabric_peer::chaincode::{Chaincode, ChaincodeRegistry};
use fabric_peer::peer::Peer;
use fabric_peer::validation_pool::ValidationPool;
use fabric_peer::validator::EndorsementPolicy;
use fabric_statedb::{LsmConfig, LsmStateDb, MemStateDb, StateStore};
use fabric_telemetry::{TelemetryConfig, TelemetryHub, TelemetrySeries};
use fabric_trace::{TraceReport, TraceSink};

use crate::channel::{ChannelRuntime, PeerContext};
use crate::client::ClientHandle;

/// Which state-database engine each peer uses.
#[derive(Debug, Clone)]
pub enum StateEngine {
    /// Sharded in-memory store (default; benchmarks).
    Memory,
    /// From-scratch LSM engine rooted under the given directory (one
    /// subdirectory per channel and peer).
    Lsm(PathBuf),
}

/// Builder for a [`FabricNetwork`].
pub struct NetworkBuilder {
    orgs: usize,
    peers_per_org: usize,
    channels: usize,
    pipeline: PipelineConfig,
    latency: LatencyModel,
    cost: CostModel,
    chaincodes: Vec<Arc<dyn Chaincode>>,
    genesis: Vec<(Key, Value)>,
    engine: StateEngine,
    seed: u64,
    fault_hook: Option<Arc<dyn FaultHook>>,
    trace_capacity: Option<usize>,
    telemetry: Option<TelemetryConfig>,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// Starts from the paper's topology: 2 organizations × 2 peers, one
    /// channel, LAN latency, default crypto cost model.
    pub fn new() -> Self {
        NetworkBuilder {
            orgs: 2,
            peers_per_org: 2,
            channels: 1,
            pipeline: PipelineConfig::fabric_pp(),
            latency: LatencyModel::lan(),
            cost: CostModel::default(),
            chaincodes: Vec::new(),
            genesis: Vec::new(),
            engine: StateEngine::Memory,
            seed: 42,
            fault_hook: None,
            trace_capacity: None,
            telemetry: None,
        }
    }

    /// Number of organizations (each endorses per the default policy).
    pub fn orgs(mut self, n: usize) -> Self {
        self.orgs = n;
        self
    }

    /// Peers hosted by each organization.
    pub fn peers_per_org(mut self, n: usize) -> Self {
        self.peers_per_org = n;
        self
    }

    /// Number of channels (each with its own orderer, peers, state, chain).
    pub fn channels(mut self, n: usize) -> Self {
        self.channels = n;
        self
    }

    /// Pipeline configuration (vanilla Fabric, full Fabric++, or one of the
    /// single-optimization modes).
    pub fn pipeline(mut self, cfg: PipelineConfig) -> Self {
        self.pipeline = cfg;
        self
    }

    /// Network latency model.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Cryptographic cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Deploys a chaincode under its [`Chaincode::name`].
    pub fn deploy(mut self, cc: Arc<dyn Chaincode>) -> Self {
        self.chaincodes.push(cc);
        self
    }

    /// Adds key/value pairs to the genesis state (cumulative).
    pub fn genesis(mut self, kvs: impl IntoIterator<Item = (Key, Value)>) -> Self {
        self.genesis.extend(kvs);
        self
    }

    /// Selects the state-database engine.
    pub fn engine(mut self, engine: StateEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Seed for the deterministic per-peer signing keys.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection hook on every orderer → peer link (see
    /// [`fabric_net::FaultySender`]). The hook sees one call per block per
    /// link and may drop, duplicate, delay, or reorder the delivery; peers
    /// heal the resulting duplicates and gaps from the channel's block
    /// archive.
    pub fn fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Enables the transaction flight recorder: a shared ring of
    /// `capacity` events fed by every client, the orderers, and each
    /// channel's reporting peer. When full, the *oldest* events are
    /// dropped (and counted). The retained stream comes back as
    /// [`RunReport::trace`].
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables windowed time-series telemetry: the run's counters are
    /// aggregated into fixed logical-time windows (every
    /// [`TelemetryConfig::window_blocks`] committed blocks and/or
    /// [`TelemetryConfig::window_txs`] submitted transactions — never
    /// wall-clock), with subsystem gauges sampled at each window close.
    /// The series comes back as [`RunReport::timeseries`]. Observation
    /// only: block streams, state digests, and schedules are byte-for-byte
    /// identical with telemetry on or off.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Builds and starts the network.
    pub fn build(self) -> Result<FabricNetwork> {
        self.pipeline.validate()?;
        if self.orgs == 0 || self.peers_per_org == 0 || self.channels == 0 {
            return Err(Error::Config(
                "orgs, peers_per_org, and channels must all be at least 1".into(),
            ));
        }

        let registry = SignerRegistry::new();
        let counters = TxCounters::new();
        let latency_rec = LatencyRecorder::new();
        let net_stats = NetStats::new();
        let orderer_stats = OrdererStats::new();
        let phase_timers = PhaseTimers::new();
        let sink = match self.trace_capacity {
            Some(capacity) => TraceSink::bounded(capacity),
            None => TraceSink::disabled(),
        };
        let gauges = SubsystemGauges::new();
        let hub = match &self.telemetry {
            Some(cfg) => TelemetryHub::with_config(*cfg),
            None => TelemetryHub::disabled(),
        };
        // One network-wide pool: endorsement-signature checking is
        // stateless, so every peer of every channel shares the workers.
        let pool = Arc::new(
            ValidationPool::threaded(self.pipeline.validation_workers)
                .with_gauges(gauges.clone()),
        );
        gauges.set_validation_workers(pool.workers() as u64);

        let mut cc_registry = ChaincodeRegistry::new();
        for cc in &self.chaincodes {
            cc_registry.deploy(cc.name().to_owned(), Arc::clone(cc));
        }

        let policy =
            EndorsementPolicy::require_orgs((1..=self.orgs as u64).map(OrgId).collect());

        let mut channels = Vec::with_capacity(self.channels);
        let mut reporting_stores = Vec::with_capacity(self.channels);
        let mut next_peer_id = 1u64;
        for ch in 0..self.channels {
            let channel_id = ChannelId(ch as u64);
            let mut peers = Vec::new();
            for org in 1..=self.orgs as u64 {
                for _ in 0..self.peers_per_org {
                    let pid = PeerId(next_peer_id);
                    next_peer_id += 1;
                    let key = SigningKey::for_peer(pid, self.seed);
                    registry.register(pid, key.clone());

                    let store: Arc<dyn StateStore> = match &self.engine {
                        StateEngine::Memory => Arc::new(MemStateDb::new()),
                        StateEngine::Lsm(base) => {
                            let dir = base.join(format!("ch{ch}-peer{}", pid.raw()));
                            Arc::new(LsmStateDb::open(dir, LsmConfig::default())?)
                        }
                    };

                    let mut peer = Peer::new(
                        pid,
                        OrgId(org),
                        key,
                        store,
                        cc_registry.clone(),
                        registry.clone(),
                        policy.clone(),
                        self.pipeline.concurrency,
                        self.pipeline.early_abort_simulation,
                        self.cost,
                    );
                    peer = peer
                        .with_validation_pool(Arc::clone(&pool))
                        .with_commit_lanes(self.pipeline.commit_lanes);
                    // First peer of each channel reports outcomes/latency.
                    if peers.is_empty() {
                        peer = peer
                            .with_reporting(counters.clone(), latency_rec.clone())
                            .with_phase_timers(phase_timers.clone())
                            .with_trace(sink.clone())
                            .with_gauges(gauges.clone())
                            .with_telemetry(hub.clone());
                        reporting_stores.push(peer.store().counters());
                    }
                    peer.install_genesis(&self.genesis)?;
                    peers.push(Arc::new(peer));
                }
            }
            let genesis_hash = peers[0].ledger().tip_hash();
            let ctx = PeerContext {
                chaincodes: cc_registry.clone(),
                registry: registry.clone(),
                policy: policy.clone(),
                concurrency: self.pipeline.concurrency,
                early_abort_simulation: self.pipeline.early_abort_simulation,
                commit_lanes: self.pipeline.commit_lanes,
                cost: self.cost,
                key_seed: self.seed,
                pool: Arc::clone(&pool),
                sink: sink.clone(),
                gauges: gauges.clone(),
                telemetry: hub.clone(),
            };
            channels.push(ChannelRuntime::spawn(
                channel_id,
                &self.pipeline,
                peers,
                genesis_hash,
                self.latency.clone(),
                net_stats.clone(),
                counters.clone(),
                orderer_stats.clone(),
                phase_timers.clone(),
                self.fault_hook.clone(),
                ctx,
            ));
        }

        // Connect the hub last, once every reporting store exists: window
        // deltas telescope from these baselines, so the sum of windows
        // equals the run's final totals exactly.
        hub.connect(counters.clone(), latency_rec.clone(), reporting_stores, gauges.clone());

        Ok(FabricNetwork {
            channels,
            counters,
            latency_rec,
            net_stats,
            orderer_stats,
            phase_timers,
            latency_model: self.latency,
            started: Instant::now(),
            next_client: AtomicU64::new(0),
            orgs: self.orgs,
            sink,
            hub,
        })
    }
}

/// A running network: channels, peers, and shared metric sinks.
pub struct FabricNetwork {
    channels: Vec<ChannelRuntime>,
    counters: TxCounters,
    latency_rec: LatencyRecorder,
    net_stats: NetStats,
    orderer_stats: OrdererStats,
    phase_timers: PhaseTimers,
    latency_model: LatencyModel,
    started: Instant,
    next_client: AtomicU64,
    orgs: usize,
    sink: TraceSink,
    hub: TelemetryHub,
}

impl FabricNetwork {
    /// Creates a client bound to channel `channel_idx`, endorsing at the
    /// first peer of each organization (the default policy's minimum).
    pub fn client(&self, channel_idx: usize) -> ClientHandle {
        let channel = &self.channels[channel_idx];
        let peers = channel.peers();
        let per_org = peers.len() / self.orgs;
        let endorsers: Vec<Arc<Peer>> =
            (0..self.orgs).map(|o| Arc::clone(&peers[o * per_org])).collect();
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientHandle::new(
            channel.id(),
            id.raw().into(),
            endorsers,
            channel.orderer_sender(),
            self.latency_model.clone(),
            self.counters.clone(),
            self.sink.clone(),
        )
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The peers of channel `channel_idx` (snapshot: a restarted peer is
    /// a fresh object in the same slot).
    pub fn channel_peers(&self, channel_idx: usize) -> Vec<Arc<Peer>> {
        self.channels[channel_idx].peers()
    }

    /// Crashes peer `peer_idx` of channel `channel_idx` mid-run: every
    /// block delivered to it from now on is lost, as for a dead process.
    pub fn crash_peer(&self, channel_idx: usize, peer_idx: usize) {
        self.channels[channel_idx].crash_peer(peer_idx);
    }

    /// Restarts a crashed peer: recovery from its own ledger (state
    /// rebuild + flag recheck) followed by catch-up from the channel's
    /// block archive. Returns the number of blocks caught up.
    pub fn restart_peer(&self, channel_idx: usize, peer_idx: usize) -> Result<u64> {
        let reporting = (peer_idx == 0)
            .then(|| (self.counters.clone(), self.latency_rec.clone(), self.phase_timers.clone()));
        self.channels[channel_idx].restart_peer(peer_idx, reporting)
    }

    /// Whether the given peer is currently crashed.
    pub fn is_peer_down(&self, channel_idx: usize, peer_idx: usize) -> bool {
        self.channels[channel_idx].is_down(peer_idx)
    }

    /// Live snapshot of the outcome counters.
    pub fn stats(&self) -> TxStats {
        self.counters.snapshot()
    }

    /// Live latency summary (valid transactions, end-to-end).
    pub fn latency(&self) -> LatencySummary {
        self.latency_rec.summary()
    }

    /// Shuts everything down, drains the pipeline, audits every ledger,
    /// and returns the run report.
    ///
    /// All [`ClientHandle`]s must be dropped before calling this, or the
    /// orderer threads will never see the end of their input streams.
    pub fn finish(mut self) -> RunReport {
        for ch in &mut self.channels {
            ch.shutdown();
        }
        let elapsed = self.started.elapsed();
        let mut block_heights = Vec::with_capacity(self.channels.len());
        let mut store = StoreStats::default();
        for ch in &self.channels {
            for peer in ch.peers() {
                peer.ledger().verify_chain().expect("ledger audit failed");
            }
            block_heights.push(ch.peers()[0].ledger().height());
            store = store.merge(&ch.peers()[0].store().counters().snapshot());
        }
        RunReport {
            elapsed,
            stats: self.counters.snapshot(),
            latency: self.latency_rec.summary(),
            net_messages: self.net_stats.messages(),
            net_bytes: self.net_stats.bytes(),
            orderer: self.orderer_stats.snapshot(),
            phases: self.phase_timers.summary(),
            block_heights,
            store,
            trace: self.sink.is_enabled().then(|| self.sink.report()),
            timeseries: self.hub.finish(),
        }
    }
}

impl std::fmt::Debug for FabricNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FabricNetwork({} channels)", self.channels.len())
    }
}

/// Final metrics of one network run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock duration from build to finish.
    pub elapsed: Duration,
    /// Final outcome counters.
    pub stats: TxStats,
    /// End-to-end latency of valid transactions.
    pub latency: LatencySummary,
    /// Simulated-network messages sent.
    pub net_messages: u64,
    /// Simulated-network bytes sent.
    pub net_bytes: u64,
    /// Ordering-service telemetry (cut reasons, block fill, reorder cost),
    /// aggregated over all channels.
    pub orderer: OrdererStatsSnapshot,
    /// Per-phase latency summaries (endorse / order / validate-vscc /
    /// validate-mvcc / commit) from the reporting peer and the orderers.
    pub phases: PhaseSummary,
    /// Final chain height per channel (including the genesis block).
    pub block_heights: Vec<u64>,
    /// Batched state-access counters from the reporting peer of every
    /// channel (multi-get batches, shard-lock acquisitions, WAL records):
    /// the observable side of the one-prefetch-per-block / one-lock-per-
    /// shard-per-block / one-WAL-record-per-block contract.
    pub store: StoreStats,
    /// Flight-recorder stream (`Some` only when [`NetworkBuilder::trace`]
    /// enabled tracing): per-transaction lifecycle events with abort
    /// provenance plus per-block span events, ready for the `fabric-trace`
    /// exporters (JSONL, Chrome trace, Prometheus).
    pub trace: Option<TraceReport>,
    /// Windowed time-series telemetry (`Some` only when
    /// [`NetworkBuilder::telemetry`] enabled it): per-window goodput,
    /// abort breakdown, latency quantiles, and subsystem gauges over
    /// logical-time windows, ready for the `fabric-telemetry` exporters.
    pub timeseries: Option<TelemetrySeries>,
}

impl RunReport {
    /// Successful transactions per second over the run.
    pub fn valid_tps(&self) -> f64 {
        self.stats.valid_tps(self.elapsed)
    }

    /// Aborted transactions per second over the run.
    pub fn aborted_tps(&self) -> f64 {
        self.stats.aborted_tps(self.elapsed)
    }
}
