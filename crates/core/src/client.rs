//! The client side of the protocol (paper §2.2.1, Appendix A.1).
//!
//! A client forms a proposal, sends it to the endorsement peers (one per
//! organization under the default policy), waits for their simulations,
//! compares the returned read/write sets, assembles the transaction with
//! all signatures, and passes it to the ordering service.
//!
//! Fabric++ addition: when an endorser early-aborts the simulation because
//! of a stale read, the client is "directly notif\[ied\] about the abort,
//! such that it can resubmit the proposal without delay" (paper §5.2.1) —
//! surfaced here as [`SubmitOutcome::EarlyAborted`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric_common::{
    ChannelId, ClientId, Endorsement, Transaction, TransactionProposal, TxCounters,
    ValidationCode,
};
use fabric_net::{DelayedSender, LatencyModel};
use fabric_peer::chaincode::SimulationError;
use fabric_trace::{EventKind, TraceSink};
use fabric_peer::endorser::EndorsementResponse;
use fabric_peer::peer::Peer;

/// Result of one [`ClientHandle::submit`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The transaction was endorsed and handed to the ordering service.
    /// Its final fate (valid / aborted) is decided downstream.
    Submitted(fabric_common::TxId),
    /// Fabric++: an endorser detected a stale read during simulation and
    /// aborted the proposal before it ever became a transaction.
    EarlyAborted(fabric_common::TxId),
    /// The proposal could not become a transaction: chaincode rejection,
    /// endorser disagreement, or a disconnected orderer.
    Rejected(String),
}

impl SubmitOutcome {
    /// Whether the transaction entered the ordering pipeline.
    pub fn is_submitted(&self) -> bool {
        matches!(self, SubmitOutcome::Submitted(_))
    }
}

/// Assembles a [`Transaction`] from endorsement responses, enforcing the
/// all-sets-equal rule (mismatching sets mean non-determinism or malice and
/// the client must not proceed — paper §2.2.1).
pub fn assemble_transaction(
    proposal: &TransactionProposal,
    responses: Vec<EndorsementResponse>,
) -> Result<Transaction, String> {
    let mut iter = responses.into_iter();
    let first = iter.next().ok_or_else(|| "no endorsements collected".to_owned())?;
    let mut endorsements: Vec<Endorsement> = vec![first.endorsement];
    for resp in iter {
        if resp.rwset != first.rwset {
            return Err("endorsers returned mismatching read/write sets".to_owned());
        }
        endorsements.push(resp.endorsement);
    }
    Ok(Transaction {
        id: proposal.id,
        channel: proposal.channel,
        client: proposal.client,
        chaincode: proposal.chaincode.clone(),
        rwset: first.rwset,
        endorsements,
        created_at: proposal.created_at,
    })
}

/// A client bound to one channel. Cheap to clone per firing thread.
pub struct ClientHandle {
    channel: ChannelId,
    client: ClientId,
    endorsers: Vec<Arc<Peer>>,
    orderer: DelayedSender<Transaction>,
    latency: LatencyModel,
    counters: TxCounters,
    sink: TraceSink,
    seq: Arc<AtomicU64>,
}

impl Clone for ClientHandle {
    fn clone(&self) -> Self {
        ClientHandle {
            channel: self.channel,
            client: self.client,
            endorsers: self.endorsers.clone(),
            orderer: self.orderer.clone(),
            latency: self.latency.clone(),
            counters: self.counters.clone(),
            sink: self.sink.clone(),
            seq: Arc::clone(&self.seq),
        }
    }
}

impl ClientHandle {
    pub(crate) fn new(
        channel: ChannelId,
        client: ClientId,
        endorsers: Vec<Arc<Peer>>,
        orderer: DelayedSender<Transaction>,
        latency: LatencyModel,
        counters: TxCounters,
        sink: TraceSink,
    ) -> Self {
        ClientHandle {
            channel,
            client,
            endorsers,
            orderer,
            latency,
            counters,
            sink,
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Returns a handle with a distinct client id (for per-thread clients).
    pub fn with_client_id(&self, id: u64) -> Self {
        let mut c = self.clone();
        c.client = ClientId(id);
        c
    }

    /// The channel this client fires into.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// Fires one transaction proposal end-to-end through endorsement and
    /// hands the endorsed transaction to the ordering service.
    pub fn submit(&self, chaincode: &str, args: Vec<u8>) -> SubmitOutcome {
        self.counters.record_submitted();
        let proposal =
            TransactionProposal::new(self.channel, self.client, chaincode, args);
        if self.sink.is_enabled() {
            self.sink.emit(EventKind::TxSubmitted {
                tx: proposal.id,
                channel: self.channel,
                client: self.client,
            });
        }

        // Client → endorsers hop (proposals travel in parallel; one hop of
        // latency covers the fan-out).
        let proposal_size = 64 + proposal.args.len();
        self.net_sleep(proposal_size);

        // "The endorsers now simulate the transaction proposal against a
        // local copy of the current state in parallel" (paper §2.2.1).
        let results: Vec<Result<EndorsementResponse, SimulationError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .endorsers
                    .iter()
                    .map(|peer| {
                        let proposal = &proposal;
                        scope.spawn(move || peer.endorse(proposal))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("endorser panicked")).collect()
            });
        let mut responses = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(resp) => responses.push(resp),
                Err(SimulationError::StaleRead { .. }) => {
                    // Fabric++ simulation-phase early abort: the client is
                    // notified immediately.
                    self.counters.record_outcome(ValidationCode::EarlyAbortSimulation);
                    return SubmitOutcome::EarlyAborted(proposal.id);
                }
                Err(e) => return SubmitOutcome::Rejected(e.to_string()),
            }
        }

        // Endorsers → client hop (responses carry the read/write sets).
        let resp_size = responses
            .first()
            .map(|r| r.rwset.byte_size() + 40)
            .unwrap_or(64);
        self.net_sleep(resp_size);

        let tx = match assemble_transaction(&proposal, responses) {
            Ok(tx) => tx,
            Err(e) => return SubmitOutcome::Rejected(e),
        };

        let size = tx.byte_size();
        match self.orderer.send(tx, size, 1) {
            Ok(()) => SubmitOutcome::Submitted(proposal.id),
            Err(_) => SubmitOutcome::Rejected("ordering service disconnected".to_owned()),
        }
    }

    /// Fires a proposal and, on a Fabric++ simulation-phase early abort,
    /// immediately resubmits it — "we directly notify the corresponding
    /// client about the abort, such that it can resubmit the proposal
    /// without delay" (paper §5.2.1). Each retry is a *fresh* proposal
    /// (new id, new simulation against the now-current state); up to
    /// `max_retries` retries are attempted.
    ///
    /// Returns the final outcome plus the number of retries consumed.
    pub fn submit_with_retry(
        &self,
        chaincode: &str,
        args: Vec<u8>,
        max_retries: usize,
    ) -> (SubmitOutcome, usize) {
        let mut retries = 0;
        loop {
            let outcome = self.submit(chaincode, args.clone());
            match outcome {
                SubmitOutcome::EarlyAborted(_) if retries < max_retries => {
                    retries += 1;
                }
                other => return (other, retries),
            }
        }
    }

    fn net_sleep(&self, bytes: usize) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let d = self.latency.delay(bytes, 1, seq);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

impl std::fmt::Debug for ClientHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ClientHandle({}, {}, {} endorsers)",
            self.client,
            self.channel,
            self.endorsers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{Key, OrgId, PeerId, Signature, Value, Version};

    fn response(v: i64) -> EndorsementResponse {
        EndorsementResponse {
            rwset: rwset_from_keys(
                &[Key::from("a")],
                Version::GENESIS,
                &[Key::from("a")],
                &Value::from_i64(v),
            ),
            endorsement: Endorsement {
                peer: PeerId(v as u64),
                org: OrgId(v as u64),
                signature: Signature([v as u8; 32]),
            },
        }
    }

    fn proposal() -> TransactionProposal {
        TransactionProposal::new(ChannelId(0), ClientId(0), "cc", vec![])
    }

    #[test]
    fn assemble_requires_matching_sets() {
        let p = proposal();
        let tx = assemble_transaction(&p, vec![response(1), {
            let mut r = response(2);
            r.rwset = response(1).rwset;
            r
        }])
        .unwrap();
        assert_eq!(tx.endorsements.len(), 2);
        assert_eq!(tx.id, p.id);

        let err = assemble_transaction(&p, vec![response(1), response(2)]).unwrap_err();
        assert!(err.contains("mismatching"));
    }

    #[test]
    fn assemble_rejects_empty() {
        assert!(assemble_transaction(&proposal(), vec![]).is_err());
    }

    #[test]
    fn outcome_predicates() {
        assert!(SubmitOutcome::Submitted(fabric_common::TxId(1)).is_submitted());
        assert!(!SubmitOutcome::EarlyAborted(fabric_common::TxId(1)).is_submitted());
        assert!(!SubmitOutcome::Rejected("x".into()).is_submitted());
    }
}
