//! One channel's runtime: an ordering-service thread and one
//! validation/commit thread per peer, wired over the simulated network.
//!
//! ```text
//!  clients ──(endorsed txs)──► orderer thread ──(blocks)──► peer threads
//!                              · batch cutting               · validate
//!                              · reorder / early abort       · commit
//! ```
//!
//! The orderer guarantees every peer receives the same blocks in the same
//! order (FIFO links); peers at different "network distances" (direct vs.
//! gossip, paper steps 8/9) receive them at different times.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;

use fabric_common::{ChannelId, Digest, PipelineConfig, Transaction, TxCounters};
use fabric_ledger::Block;
use fabric_net::{link, Broadcaster, DelayedSender, LatencyModel, NetStats};
use fabric_ordering::{BatchCutter, OrderingService, OrdererStats};
use fabric_peer::peer::Peer;

/// A running channel: handles to its threads and its client-facing sender.
pub struct ChannelRuntime {
    id: ChannelId,
    /// Sender clients use to reach the orderer; cloned into ClientHandles.
    orderer_tx: Option<DelayedSender<Transaction>>,
    orderer_thread: Option<JoinHandle<()>>,
    peer_threads: Vec<JoinHandle<()>>,
    peers: Vec<Arc<Peer>>,
}

impl ChannelRuntime {
    /// Spawns the channel's orderer and peer threads.
    ///
    /// `peers` must already have genesis installed; `genesis_hash` is their
    /// common chain tip (the orderer chains block 1 to it).
    pub fn spawn(
        id: ChannelId,
        config: &PipelineConfig,
        peers: Vec<Arc<Peer>>,
        genesis_hash: Digest,
        latency: LatencyModel,
        net_stats: NetStats,
        counters: TxCounters,
        orderer_stats: OrdererStats,
    ) -> Self {
        // Client → orderer link.
        let (orderer_tx, orderer_rx) = link::<Transaction>(latency.clone(), net_stats.clone());

        // Orderer → peer links. The first peer of each org is a "direct"
        // receiver; remaining peers get the block via gossip (second hop).
        let mut direct = Vec::new();
        let mut gossip = Vec::new();
        let mut peer_threads = Vec::new();
        let mut seen_orgs = std::collections::HashSet::new();
        for peer in &peers {
            let (btx, brx) = link::<Block>(latency.clone(), net_stats.clone());
            if seen_orgs.insert(peer.org()) {
                direct.push(btx);
            } else {
                gossip.push(btx);
            }
            let peer = Arc::clone(peer);
            peer_threads.push(std::thread::spawn(move || {
                while let Ok(block) = brx.recv() {
                    peer.process_block(block)
                        .expect("block processing failed: orderer/peer protocol violated");
                }
            }));
        }
        let broadcaster = Broadcaster::new(direct, gossip);

        let mut service = OrderingService::new(config)
            .with_counters(counters)
            .resume_at(1, genesis_hash);
        let mut cutter = BatchCutter::new(config.cutting.clone());

        let orderer_thread = std::thread::spawn(move || {
            let poll = Duration::from_millis(10);
            loop {
                let wait = cutter
                    .time_to_timeout(Instant::now())
                    .map_or(poll, |t| t.min(poll).max(Duration::from_micros(100)));
                match orderer_rx.recv_timeout(wait) {
                    Ok(tx) => {
                        if let Some((batch, reason)) = cutter.push(tx) {
                            orderer_stats.record_cut(reason, batch.len());
                            let t0 = Instant::now();
                            let ob = service.order_batch(batch);
                            orderer_stats
                                .record_reorder(t0.elapsed(), ob.reorder_stats.fallback_used);
                            let size = ob.block.byte_size();
                            broadcaster.broadcast(&ob.block, size);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if let Some((batch, reason)) = cutter.poll_timeout(Instant::now()) {
                            orderer_stats.record_cut(reason, batch.len());
                            let t0 = Instant::now();
                            let ob = service.order_batch(batch);
                            orderer_stats
                                .record_reorder(t0.elapsed(), ob.reorder_stats.fallback_used);
                            let size = ob.block.byte_size();
                            broadcaster.broadcast(&ob.block, size);
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        if let Some((batch, reason)) = cutter.flush() {
                            orderer_stats.record_cut(reason, batch.len());
                            let t0 = Instant::now();
                            let ob = service.order_batch(batch);
                            orderer_stats
                                .record_reorder(t0.elapsed(), ob.reorder_stats.fallback_used);
                            let size = ob.block.byte_size();
                            broadcaster.broadcast(&ob.block, size);
                        }
                        break;
                        // Dropping the broadcaster disconnects the peers.
                    }
                }
            }
        });

        ChannelRuntime {
            id,
            orderer_tx: Some(orderer_tx),
            orderer_thread: Some(orderer_thread),
            peer_threads,
            peers,
        }
    }

    /// The channel id.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The channel's peers.
    pub fn peers(&self) -> &[Arc<Peer>] {
        &self.peers
    }

    /// A sender clients use to submit endorsed transactions.
    pub fn orderer_sender(&self) -> DelayedSender<Transaction> {
        self.orderer_tx.as_ref().expect("channel already shut down").clone()
    }

    /// Shuts the channel down: drops the orderer sender (clients must have
    /// dropped theirs already), waits for the orderer to flush and for all
    /// peers to drain their block queues.
    pub fn shutdown(&mut self) {
        self.orderer_tx = None;
        if let Some(h) = self.orderer_thread.take() {
            h.join().expect("orderer thread panicked");
        }
        for h in self.peer_threads.drain(..) {
            h.join().expect("peer thread panicked");
        }
    }
}

impl Drop for ChannelRuntime {
    fn drop(&mut self) {
        // Best-effort: if the user forgot to call shutdown, do it here.
        if self.orderer_thread.is_some() {
            self.shutdown();
        }
    }
}
