//! One channel's runtime: an ordering-service thread and one
//! validation/commit thread per peer, wired over the simulated network.
//!
//! ```text
//!  clients ──(endorsed txs)──► orderer thread ──(blocks)──► peer threads
//!                              · batch cutting               · validate
//!                              · reorder / early abort       · commit
//! ```
//!
//! The orderer guarantees every peer receives the same blocks in the same
//! order on a fault-free network; under an injected [`FaultHook`] the
//! delivery layer may drop, duplicate, delay, or reorder blocks, so each
//! peer thread defends itself: duplicates (block number below the chain
//! height) are discarded, and gaps are healed from the channel's *block
//! archive* — the orderer's authoritative record of every block it cut,
//! standing in for Fabric's ledger-sync ("state transfer") protocol.
//!
//! The runtime can also crash and restart individual peers mid-run: a
//! crashed peer discards everything it receives (a dead process reads no
//! packets); a restart rebuilds its state from its ledger through
//! [`fabric_peer::recovery`] and catches up from the archive.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;
use parking_lot::RwLock;

use fabric_common::{
    ChannelId, ConcurrencyMode, CostModel, Digest, LatencyRecorder, Phase, PhaseTimers,
    PipelineConfig, Result, SignerRegistry, SigningKey, SubsystemGauges, Transaction, TxCounters,
};
use fabric_telemetry::TelemetryHub;
use fabric_ledger::Block;
use fabric_net::{
    link, DelayedSender, FaultHook, FaultyBroadcaster, LatencyModel, NetStats, NoFaults,
};
use fabric_ordering::{BatchCutter, OrderingService, OrdererStats, PreparedBatch, ReorderPipeline};
use fabric_peer::chaincode::ChaincodeRegistry;
use fabric_peer::peer::{PendingBlock, Peer};
use fabric_peer::validation_pool::ValidationPool;
use fabric_peer::validator::EndorsementPolicy;
use fabric_statedb::StateStore;
use fabric_trace::{EventKind, TraceSink};

/// Everything needed to rebuild a peer object after a crash: the pieces of
/// [`Peer::new`]'s signature that are channel-wide rather than per-peer.
#[derive(Clone)]
pub struct PeerContext {
    /// Deployed chaincodes.
    pub chaincodes: ChaincodeRegistry,
    /// Shared signer registry (public keys of every peer).
    pub registry: SignerRegistry,
    /// The channel's endorsement policy.
    pub policy: EndorsementPolicy,
    /// Concurrency mode (vanilla coarse lock vs. Fabric++ fine-grained).
    pub concurrency: ConcurrencyMode,
    /// Whether simulations early-abort on stale reads.
    pub early_abort_simulation: bool,
    /// Commit-lane count (`commit_lanes` pipeline knob); restarted peers
    /// keep the same lane configuration as the peers they replace.
    pub commit_lanes: usize,
    /// Cryptographic cost model.
    pub cost: CostModel,
    /// Seed the deterministic per-peer signing keys were derived from.
    pub key_seed: u64,
    /// Shared endorsement-signature validation pool (one per network;
    /// signature checking is stateless, so all peers use the same workers).
    pub pool: Arc<ValidationPool>,
    /// Flight-recorder sink (disabled unless the builder enabled tracing);
    /// the orderer emits cut/seal events and a restarted reporting peer is
    /// re-attached to it.
    pub sink: TraceSink,
    /// Shared telemetry gauge cells: the orderer thread refreshes the
    /// cutter queue depth through them, and restarted peers are re-attached
    /// so their endorsements keep counting.
    pub gauges: SubsystemGauges,
    /// Telemetry hub (disabled unless the builder enabled telemetry); a
    /// restarted reporting peer is re-attached so logical time keeps
    /// advancing across the restart.
    pub telemetry: TelemetryHub,
}

/// A running channel: handles to its threads and its client-facing sender.
pub struct ChannelRuntime {
    id: ChannelId,
    /// Sender clients use to reach the orderer; cloned into ClientHandles.
    orderer_tx: Option<DelayedSender<Transaction>>,
    orderer_thread: Option<JoinHandle<()>>,
    peer_threads: Vec<JoinHandle<()>>,
    /// Swappable peer slots: a restart replaces the `Arc<Peer>` inside.
    slots: Vec<Arc<RwLock<Arc<Peer>>>>,
    /// Per-peer crashed flags; a down peer's thread discards deliveries.
    down: Vec<Arc<AtomicBool>>,
    /// Every block the orderer has cut, in order (block `n` at index
    /// `n - 1`); the source peers heal gaps and catch up from.
    archive: Arc<RwLock<Vec<Block>>>,
    ctx: PeerContext,
}

/// Replays archived blocks into `peer` until its chain is as long as the
/// archive. Returns how many blocks were applied.
pub fn catch_up_from_archive(peer: &Peer, archive: &RwLock<Vec<Block>>) -> Result<u64> {
    let mut applied = 0;
    loop {
        // The ledger's height is the next block number it needs (genesis
        // is block 0, so height h means blocks 0..h are present).
        let next = peer.ledger().height();
        let block = {
            let a = archive.read();
            (next as usize)
                .checked_sub(1)
                .and_then(|i| a.get(i).cloned())
        };
        match block {
            Some(b) => {
                peer.process_block(b)?;
                applied += 1;
            }
            None => return Ok(applied),
        }
    }
}

impl ChannelRuntime {
    /// Spawns the channel's orderer and peer threads.
    ///
    /// `peers` must already have genesis installed; `genesis_hash` is their
    /// common chain tip (the orderer chains block 1 to it). When
    /// `fault_hook` is given, every orderer → peer link consults it per
    /// block (see [`fabric_net::FaultySender`]).
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        id: ChannelId,
        config: &PipelineConfig,
        peers: Vec<Arc<Peer>>,
        genesis_hash: Digest,
        latency: LatencyModel,
        net_stats: NetStats,
        counters: TxCounters,
        orderer_stats: OrdererStats,
        phase_timers: PhaseTimers,
        fault_hook: Option<Arc<dyn FaultHook>>,
        ctx: PeerContext,
    ) -> Self {
        // Client → orderer link.
        let (orderer_tx, orderer_rx) = link::<Transaction>(latency.clone(), net_stats.clone());

        let archive: Arc<RwLock<Vec<Block>>> = Arc::new(RwLock::new(Vec::new()));

        // Orderer → peer links. The first peer of each org is a "direct"
        // receiver; remaining peers get the block via gossip (second hop).
        let mut direct = Vec::new();
        let mut gossip = Vec::new();
        let mut direct_ids = Vec::new();
        let mut gossip_ids = Vec::new();
        let mut peer_threads = Vec::new();
        let mut slots = Vec::new();
        let mut down = Vec::new();
        let mut seen_orgs = std::collections::HashSet::new();
        for peer in &peers {
            let (btx, brx) = link::<Block>(latency.clone(), net_stats.clone());
            if seen_orgs.insert(peer.org()) {
                direct.push(btx);
                direct_ids.push(peer.id().raw() as u32);
            } else {
                gossip.push(btx);
                gossip_ids.push(peer.id().raw() as u32);
            }
            let slot = Arc::new(RwLock::new(Arc::clone(peer)));
            let down_flag = Arc::new(AtomicBool::new(false));
            slots.push(Arc::clone(&slot));
            down.push(Arc::clone(&down_flag));
            let archive = Arc::clone(&archive);
            peer_threads.push(std::thread::spawn(move || {
                // Commit/validate pipelining: while a block commits under
                // the state gate, the *next* block's endorsement-signature
                // checks already run on the validation pool (one-deep
                // lookahead; VSCC needs no peer state, see DESIGN.md §6).
                let mut staged: Option<PendingBlock> = None;
                loop {
                    let pending = match staged.take() {
                        Some(p) => p,
                        None => match brx.recv() {
                            Ok(block) => slot.read().begin_block_validation(block),
                            Err(_) => break,
                        },
                    };
                    if let Some(next) = brx.try_recv_ready() {
                        staged = Some(slot.read().begin_block_validation(next));
                    }
                    if down_flag.load(Ordering::Acquire) {
                        // Crashed: the process is dead, the delivery is lost
                        // (the pending checks are simply abandoned).
                        continue;
                    }
                    let peer = Arc::clone(&slot.read());
                    let num = pending.number();
                    if num < peer.ledger().height() {
                        // Duplicate (or a block replayed after restart).
                        continue;
                    }
                    if num > peer.ledger().height() {
                        // Gap: earlier blocks were dropped or reordered
                        // past this one — heal from the archive.
                        catch_up_from_archive(&peer, &archive)
                            .expect("archive catch-up failed: orderer/peer protocol violated");
                    }
                    if num == peer.ledger().height() {
                        peer.commit_validated(pending).expect(
                            "block processing failed: orderer/peer protocol violated",
                        );
                    }
                }
            }));
        }
        let link_ids: Vec<u32> = direct_ids.into_iter().chain(gossip_ids).collect();
        let hook: Arc<dyn FaultHook> = fault_hook.unwrap_or_else(|| Arc::new(NoFaults));
        let broadcaster =
            FaultyBroadcaster::wrap(direct, gossip, hook, move |i| link_ids[i]);

        let mut service = OrderingService::new(config)
            .with_counters(counters)
            .with_trace(ctx.sink.clone())
            .resume_at(1, genesis_hash);
        let mut cutter = BatchCutter::new(config.cutting.clone());
        let reorder_workers = config.reorder_workers;
        let cut_sink = ctx.sink.clone();
        let cut_gauges = ctx.gauges.clone();

        let orderer_archive = Arc::clone(&archive);
        let orderer_thread = std::thread::spawn(move || {
            let poll = Duration::from_millis(10);
            // Two-stage pipeline: the reorder workers run Algorithm 1 on
            // batch k while this thread keeps cutting batch k+1; prepared
            // plans come back strictly in cut order and only the sealing
            // step (numbering, hash chaining, broadcast) stays sequential,
            // so the block stream is byte-identical to calling
            // `order_batch` inline.
            let mut pipeline = ReorderPipeline::new(service.batch_prep(), reorder_workers);
            let record_cut = |batch: &[Transaction], reason: fabric_ordering::CutReason| {
                if cut_sink.is_enabled() {
                    cut_sink.emit(EventKind::BlockCut {
                        reason: reason.trace_kind(),
                        txs: batch.len() as u32,
                    });
                }
            };
            let seal = |prepared: PreparedBatch, service: &mut OrderingService| {
                let PreparedBatch { plan, reason, batch_len } = prepared;
                phase_timers.record(Phase::Reorder, plan.reorder_elapsed);
                orderer_stats.record_reorder(plan.reorder_elapsed, &plan.stats);
                let prepare_elapsed = plan.prepare_elapsed;
                let t0 = Instant::now();
                let Some(ob) = service.seal(plan) else {
                    // Early abort emptied the whole batch: no block (its
                    // aborts are already on the counters).
                    orderer_stats.record_empty_suppressed();
                    return;
                };
                phase_timers.record(Phase::Order, prepare_elapsed + t0.elapsed());
                orderer_stats.record_cut(reason, batch_len);
                let size = ob.block.byte_size();
                // Archive before broadcast so a peer that sees the block
                // early (reordering) can always heal backwards from it.
                orderer_archive.write().push(ob.block.clone());
                broadcaster.broadcast(&ob.block, size);
            };
            loop {
                let wait = cutter
                    .time_to_timeout(Instant::now())
                    .map_or(poll, |t| t.min(poll).max(Duration::from_micros(100)));
                match orderer_rx.recv_timeout(wait) {
                    Ok(tx) => {
                        for (batch, reason) in cutter.push(tx, Instant::now()) {
                            record_cut(&batch, reason);
                            pipeline.submit(batch, reason);
                        }
                        cut_gauges.set_cutter_queue(cutter.len() as u64);
                        for prepared in pipeline.try_collect() {
                            seal(prepared, &mut service);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if let Some((batch, reason)) = cutter.poll_timeout(Instant::now()) {
                            record_cut(&batch, reason);
                            pipeline.submit(batch, reason);
                            cut_gauges.set_cutter_queue(cutter.len() as u64);
                        }
                        for prepared in pipeline.try_collect() {
                            seal(prepared, &mut service);
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        if let Some((batch, reason)) = cutter.flush() {
                            record_cut(&batch, reason);
                            pipeline.submit(batch, reason);
                        }
                        cut_gauges.set_cutter_queue(0);
                        // Wait out every in-flight reorder, seal the tail
                        // in cut order, release any blocks held in partial
                        // reorder bursts, then disconnect the peers by
                        // dropping the broadcaster.
                        for prepared in pipeline.drain() {
                            seal(prepared, &mut service);
                        }
                        broadcaster.flush();
                        break;
                    }
                }
            }
        });

        ChannelRuntime {
            id,
            orderer_tx: Some(orderer_tx),
            orderer_thread: Some(orderer_thread),
            peer_threads,
            slots,
            down,
            archive,
            ctx,
        }
    }

    /// The channel id.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// Snapshot of the channel's current peer objects (a restart swaps the
    /// object in its slot, so holders of an older snapshot keep the dead
    /// incarnation).
    pub fn peers(&self) -> Vec<Arc<Peer>> {
        self.slots.iter().map(|s| Arc::clone(&s.read())).collect()
    }

    /// Whether peer `idx` is currently crashed.
    pub fn is_down(&self, idx: usize) -> bool {
        self.down[idx].load(Ordering::Acquire)
    }

    /// Crashes peer `idx`: from now on every block delivered to it is
    /// discarded, exactly as if the process were dead. Its in-memory
    /// ledger plays the role of its persisted block log for a later
    /// [`ChannelRuntime::restart_peer`].
    pub fn crash_peer(&self, idx: usize) {
        self.down[idx].store(true, Ordering::Release);
    }

    /// Restarts a crashed peer: rebuilds its state from its ledger (its
    /// simulated on-disk block log) through [`fabric_peer::recovery`] with
    /// full flag re-checking, swaps the new incarnation into the peer's
    /// slot, and catches it up from the block archive.
    ///
    /// `reporting` re-attaches outcome counters when the restarted peer is
    /// the channel's reporting peer (blocks missed while down were never
    /// counted, so replaying them through the restored peer keeps the
    /// totals exact).
    ///
    /// Returns the number of blocks caught up.
    pub fn restart_peer(
        &self,
        idx: usize,
        reporting: Option<(TxCounters, LatencyRecorder, PhaseTimers)>,
    ) -> Result<u64> {
        let old = Arc::clone(&self.slots[idx].read());
        let mut blocks = Vec::new();
        old.ledger().for_each(|cb| blocks.push(cb.clone()));
        let rec = fabric_peer::recovery::rebuild(blocks, true)?;
        let key = SigningKey::for_peer(old.id(), self.ctx.key_seed);
        let mut peer = Peer::restore(
            old.id(),
            old.org(),
            key,
            Arc::clone(&rec.state) as Arc<dyn StateStore>,
            rec.ledger,
            self.ctx.chaincodes.clone(),
            self.ctx.registry.clone(),
            self.ctx.policy.clone(),
            self.ctx.concurrency,
            self.ctx.early_abort_simulation,
            self.ctx.cost,
        );
        peer = peer
            .with_validation_pool(Arc::clone(&self.ctx.pool))
            .with_commit_lanes(self.ctx.commit_lanes);
        if let Some((counters, latency, timers)) = reporting {
            peer = peer
                .with_reporting(counters, latency)
                .with_phase_timers(timers)
                .with_trace(self.ctx.sink.clone())
                .with_gauges(self.ctx.gauges.clone())
                .with_telemetry(self.ctx.telemetry.clone());
        }
        let peer = Arc::new(peer);
        *self.slots[idx].write() = Arc::clone(&peer);
        let applied = catch_up_from_archive(&peer, &self.archive)?;
        self.down[idx].store(false, Ordering::Release);
        Ok(applied)
    }

    /// A sender clients use to submit endorsed transactions.
    pub fn orderer_sender(&self) -> DelayedSender<Transaction> {
        self.orderer_tx.as_ref().expect("channel already shut down").clone()
    }

    /// Shuts the channel down: drops the orderer sender (clients must have
    /// dropped theirs already), waits for the orderer to flush and for all
    /// peers to drain their block queues, then runs a final archive
    /// catch-up so every live peer ends at the full chain height even if
    /// its last deliveries were dropped by fault injection.
    pub fn shutdown(&mut self) {
        self.orderer_tx = None;
        if let Some(h) = self.orderer_thread.take() {
            h.join().expect("orderer thread panicked");
        }
        for h in self.peer_threads.drain(..) {
            h.join().expect("peer thread panicked");
        }
        for (slot, down) in self.slots.iter().zip(&self.down) {
            if down.load(Ordering::Acquire) {
                continue; // still-crashed peers stay at their crash height
            }
            let peer = Arc::clone(&slot.read());
            catch_up_from_archive(&peer, &self.archive)
                .expect("final archive catch-up failed");
        }
    }
}

impl Drop for ChannelRuntime {
    fn drop(&mut self) {
        // Best-effort: if the user forgot to call shutdown, do it here.
        if self.orderer_thread.is_some() {
            self.shutdown();
        }
    }
}
