//! A single-threaded, fully deterministic harness over the same pipeline
//! components as the threaded network.
//!
//! Integration tests use this to script exact interleavings — e.g. "commit
//! a block between these two simulations" — which the threaded runtime
//! cannot guarantee. Every phase is an explicit method call:
//! [`SyncNet::propose`] (simulation), [`SyncNet::submit`] (hand to the
//! orderer's buffer), [`SyncNet::cut_block`] (ordering + validation +
//! commit on every peer).

use std::sync::Arc;

use fabric_common::{
    ChannelId, ClientId, CostModel, Error, Key, OrgId, PeerId, PipelineConfig, Result,
    SignerRegistry, SigningKey, Transaction, TransactionProposal, TxCounters, TxId, TxStats,
    ValidationCode, Value,
};
use fabric_ledger::CommittedBlock;
use fabric_ordering::OrderingService;
use fabric_peer::chaincode::{Chaincode, ChaincodeRegistry, SimulationError};
use fabric_peer::peer::Peer;
use fabric_peer::validator::EndorsementPolicy;
use fabric_statedb::MemStateDb;

use crate::client::assemble_transaction;

/// Outcome of a synchronous proposal.
#[derive(Debug)]
pub enum ProposeOutcome {
    /// All endorsers agreed; the transaction is ready to submit.
    Endorsed(Box<Transaction>),
    /// Fabric++ simulation-phase early abort (stale read observed).
    EarlyAborted(TxId),
    /// Chaincode rejection or endorser disagreement.
    Rejected(String),
}

/// Deterministic single-threaded Fabric/Fabric++ instance.
pub struct SyncNet {
    peers: Vec<Arc<Peer>>,
    orderer: OrderingService,
    pending: Vec<Transaction>,
    counters: TxCounters,
    channel: ChannelId,
    orgs: usize,
}

impl SyncNet {
    /// Builds a network of `orgs` × `peers_per_org` peers with the given
    /// pipeline configuration, chaincodes, and genesis state.
    pub fn new(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
    ) -> Result<Self> {
        config.validate()?;
        if orgs == 0 || peers_per_org == 0 {
            return Err(Error::Config("need at least one org and one peer".into()));
        }
        let registry = SignerRegistry::new();
        let counters = TxCounters::new();
        let latency = fabric_common::LatencyRecorder::new();
        let mut cc_registry = ChaincodeRegistry::new();
        for cc in &chaincodes {
            cc_registry.deploy(cc.name().to_owned(), Arc::clone(cc));
        }
        let policy = EndorsementPolicy::require_orgs((1..=orgs as u64).map(OrgId).collect());

        let mut peers = Vec::new();
        let mut pid = 1u64;
        for org in 1..=orgs as u64 {
            for _ in 0..peers_per_org {
                let peer_id = PeerId(pid);
                pid += 1;
                let key = SigningKey::for_peer(peer_id, 1);
                registry.register(peer_id, key.clone());
                let mut peer = Peer::new(
                    peer_id,
                    OrgId(org),
                    key,
                    Arc::new(MemStateDb::new()),
                    cc_registry.clone(),
                    registry.clone(),
                    policy.clone(),
                    config.concurrency,
                    config.early_abort_simulation,
                    CostModel::raw(),
                );
                if peers.is_empty() {
                    peer = peer.with_reporting(counters.clone(), latency.clone());
                }
                peer.install_genesis(genesis)?;
                peers.push(Arc::new(peer));
            }
        }
        let genesis_hash = peers[0].ledger().tip_hash();
        let orderer = OrderingService::new(config)
            .with_counters(counters.clone())
            .resume_at(1, genesis_hash);
        Ok(SyncNet {
            peers,
            orderer,
            pending: Vec::new(),
            counters,
            channel: ChannelId(0),
            orgs,
        })
    }

    /// The first peer of each organization (the default endorser set).
    fn endorsers(&self) -> Vec<&Arc<Peer>> {
        let per_org = self.peers.len() / self.orgs;
        (0..self.orgs).map(|o| &self.peers[o * per_org]).collect()
    }

    /// Simulation phase: endorse a proposal on one peer per org.
    pub fn propose(&self, client: u64, chaincode: &str, args: Vec<u8>) -> ProposeOutcome {
        self.counters.record_submitted();
        let proposal =
            TransactionProposal::new(self.channel, ClientId(client), chaincode, args);
        let mut responses = Vec::new();
        for peer in self.endorsers() {
            match peer.endorse(&proposal) {
                Ok(r) => responses.push(r),
                Err(SimulationError::StaleRead { .. }) => {
                    self.counters.record_outcome(ValidationCode::EarlyAbortSimulation);
                    return ProposeOutcome::EarlyAborted(proposal.id);
                }
                Err(e) => return ProposeOutcome::Rejected(e.to_string()),
            }
        }
        match assemble_transaction(&proposal, responses) {
            Ok(tx) => ProposeOutcome::Endorsed(Box::new(tx)),
            Err(e) => ProposeOutcome::Rejected(e),
        }
    }

    /// Hands an endorsed transaction to the orderer's buffer.
    pub fn submit(&mut self, tx: Transaction) {
        self.pending.push(tx);
    }

    /// Convenience: propose and, if endorsed, submit. Returns the tx id if
    /// it entered the pipeline.
    pub fn propose_and_submit(
        &mut self,
        client: u64,
        chaincode: &str,
        args: Vec<u8>,
    ) -> Option<TxId> {
        match self.propose(client, chaincode, args) {
            ProposeOutcome::Endorsed(tx) => {
                let id = tx.id;
                self.submit(*tx);
                Some(id)
            }
            _ => None,
        }
    }

    /// Ordering + validation + commit: cuts everything pending into one
    /// block, processes it on every peer, and returns the reporting peer's
    /// committed block.
    pub fn cut_block(&mut self) -> Result<CommittedBlock> {
        let batch = std::mem::take(&mut self.pending);
        let ordered = self.orderer.order_batch(batch);
        let mut first: Option<CommittedBlock> = None;
        for peer in &self.peers {
            let committed = peer.process_block(ordered.block.clone())?;
            if first.is_none() {
                first = Some(committed);
            }
        }
        Ok(first.expect("at least one peer"))
    }

    /// Number of transactions waiting for the next block.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// All peers.
    pub fn peers(&self) -> &[Arc<Peer>] {
        &self.peers
    }

    /// The reporting peer (peer 0).
    pub fn reporting_peer(&self) -> &Arc<Peer> {
        &self.peers[0]
    }

    /// Outcome counters snapshot.
    pub fn stats(&self) -> TxStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode_fn;

    fn transfer_chaincode() -> Arc<dyn Chaincode> {
        chaincode_fn("transfer", |ctx, args| {
            // args: 8 bytes from-account, 8 bytes to-account, 8 bytes amount
            if args.len() != 24 {
                return Err("bad args".into());
            }
            let from = Key::composite("acct", u64::from_le_bytes(args[0..8].try_into().unwrap()));
            let to = Key::composite("acct", u64::from_le_bytes(args[8..16].try_into().unwrap()));
            let amount = i64::from_le_bytes(args[16..24].try_into().unwrap());
            let fb = ctx.get_i64(&from).map_err(|e| e.to_string())?.ok_or("no from")?;
            let tb = ctx.get_i64(&to).map_err(|e| e.to_string())?.ok_or("no to")?;
            ctx.put_i64(from, fb - amount);
            ctx.put_i64(to, tb + amount);
            Ok(())
        })
    }

    fn args(from: u64, to: u64, amount: i64) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&from.to_le_bytes());
        v.extend_from_slice(&to.to_le_bytes());
        v.extend_from_slice(&amount.to_le_bytes());
        v
    }

    fn genesis(n: u64) -> Vec<(Key, Value)> {
        (0..n).map(|i| (Key::composite("acct", i), Value::from_i64(100))).collect()
    }

    fn balance(net: &SyncNet, acct: u64) -> i64 {
        net.reporting_peer()
            .store()
            .get(&Key::composite("acct", acct))
            .unwrap()
            .unwrap()
            .value
            .as_i64()
            .unwrap()
    }

    #[test]
    fn happy_path_transfer() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 30)).unwrap();
        let block = net.cut_block().unwrap();
        assert_eq!(block.validity, vec![ValidationCode::Valid]);
        assert_eq!(balance(&net, 0), 70);
        assert_eq!(balance(&net, 1), 130);
        // All peers agree.
        for peer in net.peers() {
            assert_eq!(peer.ledger().height(), 2);
            peer.ledger().verify_chain().unwrap();
        }
    }

    #[test]
    fn vanilla_conflicting_batch_loses_transactions() {
        // Two transfers touching account 0, simulated against the same
        // state, in one block: under vanilla arrival order the second dies.
        let mut net = SyncNet::new(
            &PipelineConfig::vanilla(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 10)).unwrap();
        net.propose_and_submit(1, "transfer", args(0, 2, 10)).unwrap();
        let block = net.cut_block().unwrap();
        assert_eq!(
            block.validity,
            vec![ValidationCode::Valid, ValidationCode::MvccConflict]
        );
        let s = net.stats();
        assert_eq!(s.valid, 1);
        assert_eq!(s.mvcc_conflict, 1);
    }

    #[test]
    fn fabricpp_reorders_conflicting_batch() {
        // Same two conflicting transfers; both write acct0, both read it.
        // Writer-reader cycle? transfer(0→1) writes {0,1} reads {0,1};
        // transfer(0→2) writes {0,2} reads {0,2}. Conflict edges both ways
        // on acct0 → a 2-cycle → Fabric++ aborts one at ORDER time and
        // commits the other; nothing reaches validation as a conflict.
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 10)).unwrap();
        net.propose_and_submit(1, "transfer", args(0, 2, 10)).unwrap();
        let block = net.cut_block().unwrap();
        assert_eq!(block.validity, vec![ValidationCode::Valid]);
        let s = net.stats();
        assert_eq!(s.valid, 1);
        assert_eq!(s.early_abort_cycle, 1);
        assert_eq!(s.mvcc_conflict, 0);
    }

    #[test]
    fn fabricpp_reorders_read_after_write_to_success() {
        // A pure reader of acct0 and a writer of acct0 (no cycle): vanilla
        // arrival order (writer first) kills the reader; Fabric++ schedules
        // the reader first and both commit.
        let reader_cc = chaincode_fn("audit", |ctx, args| {
            let k = Key::composite("acct", u64::from_le_bytes(args.try_into().map_err(|_| "bad")?));
            let v = ctx.get_i64(&k).map_err(|e| e.to_string())?.ok_or("missing")?;
            ctx.put_i64(Key::from("audit-log"), v);
            Ok(())
        });
        let writer_cc = chaincode_fn("deposit", |ctx, args| {
            let k = Key::composite("acct", u64::from_le_bytes(args.try_into().map_err(|_| "bad")?));
            ctx.put_i64(k, 999);
            Ok(())
        });

        for (cfg, expect_valid) in [
            (PipelineConfig::vanilla(), 1usize),
            (PipelineConfig::fabric_pp(), 2usize),
        ] {
            let mut net = SyncNet::new(
                &cfg,
                2,
                1,
                vec![reader_cc.clone(), writer_cc.clone()],
                &genesis(4),
            )
            .unwrap();
            // Writer submitted FIRST (arrival order dooms the reader).
            net.propose_and_submit(0, "deposit", 0u64.to_le_bytes().to_vec()).unwrap();
            net.propose_and_submit(1, "audit", 0u64.to_le_bytes().to_vec()).unwrap();
            let block = net.cut_block().unwrap();
            assert_eq!(
                block.valid_count(),
                expect_valid,
                "mode {:?}",
                cfg.mode_label()
            );
        }
    }

    #[test]
    fn cross_block_stale_read_aborts_in_validation() {
        // Simulate tx A, commit a conflicting block, then submit A: its
        // read version is stale by commit time → MVCC abort (vanilla path).
        let mut net = SyncNet::new(
            &PipelineConfig::vanilla(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        // Endorse but do not submit yet.
        let stale_tx = match net.propose(0, "transfer", args(0, 1, 5)) {
            ProposeOutcome::Endorsed(tx) => *tx,
            other => panic!("unexpected {other:?}"),
        };
        // A conflicting transfer goes through a full block first.
        net.propose_and_submit(1, "transfer", args(0, 2, 7)).unwrap();
        net.cut_block().unwrap();
        // Now the stale transaction arrives.
        net.submit(stale_tx);
        let block = net.cut_block().unwrap();
        assert_eq!(block.validity, vec![ValidationCode::MvccConflict]);
        assert_eq!(balance(&net, 1), 100, "stale write discarded");
    }

    #[test]
    fn fabricpp_early_aborts_stale_simulation() {
        // Under Fabric++, a simulation that runs after a conflicting commit
        // was applied — but against a stale snapshot — aborts at proposal
        // time. We emulate by endorsing, committing, then *re-proposing*
        // with a chaincode that reads the hot key: the new simulation sees
        // fresh state, so instead we check the within-ordering mismatch
        // path: two endorsements straddling a commit.
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        // Endorse T_old against genesis state.
        let t_old = match net.propose(0, "transfer", args(0, 1, 5)) {
            ProposeOutcome::Endorsed(tx) => *tx,
            other => panic!("unexpected {other:?}"),
        };
        // Commit a block that changes acct0.
        net.propose_and_submit(1, "transfer", args(0, 2, 7)).unwrap();
        net.cut_block().unwrap();
        // Endorse T_new against the fresh state; same keys as T_old.
        let t_new = match net.propose(2, "transfer", args(0, 1, 5)) {
            ProposeOutcome::Endorsed(tx) => *tx,
            other => panic!("unexpected {other:?}"),
        };
        // Both land in the same batch: the orderer's version-mismatch
        // check must drop T_old (older read version) and keep T_new.
        let old_id = t_old.id;
        let new_id = t_new.id;
        net.submit(t_old);
        net.submit(t_new);
        let block = net.cut_block().unwrap();
        assert_eq!(block.block.txs.len(), 1);
        assert_eq!(block.block.txs[0].id, new_id);
        assert_eq!(block.validity, vec![ValidationCode::Valid]);
        let s = net.stats();
        assert_eq!(s.early_abort_version_mismatch, 1);
        assert!(net.reporting_peer().ledger().find_tx(old_id).is_none());
    }

    #[test]
    fn stats_account_every_submission() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(10),
        )
        .unwrap();
        for i in 0..5 {
            net.propose_and_submit(i, "transfer", args(i, i + 5, 1)).unwrap();
        }
        net.cut_block().unwrap();
        let s = net.stats();
        assert_eq!(s.submitted, 5);
        assert_eq!(s.finished(), 5);
        assert_eq!(s.valid, 5, "disjoint transfers all commit");
    }

    #[test]
    fn empty_cut_produces_empty_block() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            1,
            1,
            vec![transfer_chaincode()],
            &genesis(1),
        )
        .unwrap();
        let block = net.cut_block().unwrap();
        assert_eq!(block.block.txs.len(), 0);
        assert_eq!(net.pending_count(), 0);
    }
}
