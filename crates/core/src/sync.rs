//! A single-threaded, fully deterministic harness over the same pipeline
//! components as the threaded network.
//!
//! Integration tests use this to script exact interleavings — e.g. "commit
//! a block between these two simulations" — which the threaded runtime
//! cannot guarantee. Every phase is an explicit method call:
//! [`SyncNet::propose`] (simulation), [`SyncNet::submit`] (hand to the
//! orderer's buffer), [`SyncNet::cut_block`] (ordering + validation +
//! commit on every peer).

use std::path::PathBuf;
use std::sync::Arc;

use fabric_common::{
    ChannelId, ClientId, CostModel, Error, Key, LatencyRecorder, OrgId, PeerId,
    PipelineConfig, Result, SignerRegistry, SigningKey, Transaction, TransactionProposal,
    TxCounters, TxId, TxStats, ValidationCode, Value,
};
use fabric_ledger::{Block, CommittedBlock, FileBlockStore};
use fabric_ordering::OrderingService;
use fabric_peer::chaincode::{Chaincode, ChaincodeRegistry, SimulationError};
use fabric_peer::peer::Peer;
use fabric_peer::recovery;
use fabric_peer::validator::EndorsementPolicy;
use fabric_statedb::{MemStateDb, StateStore};
use fabric_trace::{CutKind, EventKind, TraceSink};

use crate::client::assemble_transaction;

/// Outcome of a synchronous proposal.
#[derive(Debug)]
pub enum ProposeOutcome {
    /// All endorsers agreed; the transaction is ready to submit.
    Endorsed(Box<Transaction>),
    /// Fabric++ simulation-phase early abort (stale read observed).
    EarlyAborted(TxId),
    /// Chaincode rejection or endorser disagreement.
    Rejected(String),
}

/// Deterministic single-threaded Fabric/Fabric++ instance.
///
/// Besides scripting exact pipeline interleavings, the harness can crash
/// and restart individual peers ([`SyncNet::crash_peer`] /
/// [`SyncNet::restart_peer`]): a crashed peer misses every block cut while
/// it is down and, on restart, is rebuilt through
/// [`fabric_peer::recovery`] and caught up from the orderer's block
/// archive. With [`SyncNet::persist_blocks`] enabled each peer also keeps
/// an on-disk block log, and restarts recover from that file — including
/// logs left with a torn tail by a crash mid-append (see
/// [`SyncNet::tear_block_log`]).
pub struct SyncNet {
    peers: Vec<Arc<Peer>>,
    /// Per-peer crashed flags (down peers skip [`SyncNet::cut_block`]).
    down: Vec<bool>,
    orderer: OrderingService,
    pending: Vec<Transaction>,
    /// Every ordered block, in order (block `n` at index `n - 1`).
    archive: Vec<Block>,
    counters: TxCounters,
    latency: LatencyRecorder,
    channel: ChannelId,
    orgs: usize,
    config: PipelineConfig,
    chaincodes: ChaincodeRegistry,
    registry: SignerRegistry,
    policy: EndorsementPolicy,
    /// When set, each peer appends committed blocks to
    /// `<dir>/peer-<id>.blocks`.
    block_log_dir: Option<PathBuf>,
    block_logs: Vec<Option<FileBlockStore>>,
    sink: TraceSink,
}

impl SyncNet {
    /// Builds a network of `orgs` × `peers_per_org` peers with the given
    /// pipeline configuration, chaincodes, and genesis state.
    pub fn new(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
    ) -> Result<Self> {
        Self::new_traced(config, orgs, peers_per_org, chaincodes, genesis, TraceSink::disabled())
    }

    /// [`SyncNet::new`] with a flight-recorder sink attached to the
    /// reporting peer (peer 0), the orderer, and the harness itself
    /// (submission and cut events).
    pub fn new_traced(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
        sink: TraceSink,
    ) -> Result<Self> {
        config.validate()?;
        if orgs == 0 || peers_per_org == 0 {
            return Err(Error::Config("need at least one org and one peer".into()));
        }
        let registry = SignerRegistry::new();
        let counters = TxCounters::new();
        let latency = fabric_common::LatencyRecorder::new();
        let mut cc_registry = ChaincodeRegistry::new();
        for cc in &chaincodes {
            cc_registry.deploy(cc.name().to_owned(), Arc::clone(cc));
        }
        let policy = EndorsementPolicy::require_orgs((1..=orgs as u64).map(OrgId).collect());

        let mut peers = Vec::new();
        let mut pid = 1u64;
        for org in 1..=orgs as u64 {
            for _ in 0..peers_per_org {
                let peer_id = PeerId(pid);
                pid += 1;
                let key = SigningKey::for_peer(peer_id, 1);
                registry.register(peer_id, key.clone());
                let mut peer = Peer::new(
                    peer_id,
                    OrgId(org),
                    key,
                    Arc::new(MemStateDb::new()),
                    cc_registry.clone(),
                    registry.clone(),
                    policy.clone(),
                    config.concurrency,
                    config.early_abort_simulation,
                    CostModel::raw(),
                )
                .with_commit_lanes(config.commit_lanes);
                if peers.is_empty() {
                    peer = peer
                        .with_reporting(counters.clone(), latency.clone())
                        .with_trace(sink.clone());
                }
                peer.install_genesis(genesis)?;
                peers.push(Arc::new(peer));
            }
        }
        let genesis_hash = peers[0].ledger().tip_hash();
        let orderer = OrderingService::new(config)
            .with_counters(counters.clone())
            .with_trace(sink.clone())
            .resume_at(1, genesis_hash);
        let n = peers.len();
        Ok(SyncNet {
            peers,
            down: vec![false; n],
            orderer,
            pending: Vec::new(),
            archive: Vec::new(),
            counters,
            latency,
            channel: ChannelId(0),
            orgs,
            config: config.clone(),
            chaincodes: cc_registry,
            registry,
            policy,
            block_log_dir: None,
            block_logs: (0..n).map(|_| None).collect(),
            sink,
        })
    }

    /// Enables on-disk block logs under `dir`: every block already on each
    /// peer's chain (the genesis block) is written out, and every future
    /// commit is appended and synced. Restarting a peer then recovers from
    /// its file instead of its in-memory ledger.
    pub fn persist_blocks(&mut self, dir: impl Into<PathBuf>) -> Result<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        for (i, peer) in self.peers.iter().enumerate() {
            let mut log = FileBlockStore::open(self.peer_log_path(&dir, peer.id()))?;
            let mut blocks = Vec::new();
            peer.ledger().for_each(|cb| blocks.push(cb.clone()));
            for cb in &blocks {
                log.append(cb)?;
            }
            log.sync()?;
            self.block_logs[i] = Some(log);
        }
        self.block_log_dir = Some(dir);
        Ok(())
    }

    fn peer_log_path(&self, dir: &std::path::Path, id: PeerId) -> PathBuf {
        dir.join(format!("peer-{}.blocks", id.raw()))
    }

    /// Crashes peer `idx`: it stops receiving blocks and its block-log
    /// file handle is dropped (the file itself survives, like a disk).
    pub fn crash_peer(&mut self, idx: usize) {
        self.down[idx] = true;
        self.block_logs[idx] = None;
    }

    /// Whether peer `idx` is currently crashed.
    pub fn is_down(&self, idx: usize) -> bool {
        self.down[idx]
    }

    /// Chops `bytes` off the end of a crashed peer's block-log file,
    /// simulating a crash that tore the last append mid-write. Requires
    /// [`SyncNet::persist_blocks`] and a preceding [`SyncNet::crash_peer`].
    pub fn tear_block_log(&mut self, idx: usize, bytes: u64) -> Result<()> {
        if !self.down[idx] {
            return Err(Error::Config("tear_block_log requires a crashed peer".into()));
        }
        let dir = self
            .block_log_dir
            .clone()
            .ok_or_else(|| Error::Config("block logs are not enabled".into()))?;
        let path = self.peer_log_path(&dir, self.peers[idx].id());
        let len = std::fs::metadata(&path)?.len();
        let f = std::fs::OpenOptions::new().write(true).open(&path)?;
        f.set_len(len.saturating_sub(bytes))?;
        f.sync_data()?;
        Ok(())
    }

    /// Restarts a crashed peer: recovery (state rebuild + flag recheck)
    /// from its on-disk block log when persistence is enabled — tolerating
    /// a torn tail — or from its in-memory ledger otherwise, followed by
    /// catch-up from the orderer's block archive. Returns the number of
    /// blocks caught up.
    pub fn restart_peer(&mut self, idx: usize) -> Result<u64> {
        if !self.down[idx] {
            return Err(Error::Config("restart_peer requires a crashed peer".into()));
        }
        let old = Arc::clone(&self.peers[idx]);
        let rec = match &self.block_log_dir {
            Some(dir) => {
                let path = self.peer_log_path(dir, old.id());
                recovery::recover_from_crashed_log(&path, true)?.0
            }
            None => {
                let mut blocks = Vec::new();
                old.ledger().for_each(|cb| blocks.push(cb.clone()));
                recovery::rebuild(blocks, true)?
            }
        };
        let key = SigningKey::for_peer(old.id(), 1);
        let mut peer = Peer::restore(
            old.id(),
            old.org(),
            key,
            Arc::clone(&rec.state) as Arc<dyn StateStore>,
            rec.ledger,
            self.chaincodes.clone(),
            self.registry.clone(),
            self.policy.clone(),
            self.config.concurrency,
            self.config.early_abort_simulation,
            CostModel::raw(),
        )
        .with_commit_lanes(self.config.commit_lanes);
        if idx == 0 {
            // Blocks missed while down were never counted, so replaying
            // them through the restored reporting peer keeps totals exact.
            peer = peer.with_reporting(self.counters.clone(), self.latency.clone());
        }
        let peer = Arc::new(peer);
        if let Some(dir) = &self.block_log_dir {
            // `recover` already truncated any torn tail, so the file is
            // clean up to the recovered height and safe to append to.
            let path = self.peer_log_path(dir, old.id());
            self.block_logs[idx] = Some(FileBlockStore::open(&path)?);
        }
        self.peers[idx] = Arc::clone(&peer);
        self.down[idx] = false;
        let mut applied = 0;
        while (peer.ledger().height() as usize) <= self.archive.len() {
            let block = self.archive[peer.ledger().height() as usize - 1].clone();
            let committed = peer.process_block(block)?;
            if let Some(log) = &mut self.block_logs[idx] {
                log.append(&committed)?;
                log.sync()?;
            }
            applied += 1;
        }
        Ok(applied)
    }

    /// The first *live* peer of each organization (the default endorser
    /// set, skipping crashed peers).
    fn endorsers(&self) -> std::result::Result<Vec<&Arc<Peer>>, String> {
        let per_org = self.peers.len() / self.orgs;
        (0..self.orgs)
            .map(|o| {
                (o * per_org..(o + 1) * per_org)
                    .find(|&i| !self.down[i])
                    .map(|i| &self.peers[i])
                    .ok_or_else(|| format!("org {} has no live endorser", o + 1))
            })
            .collect()
    }

    /// Simulation phase: endorse a proposal on one peer per org.
    pub fn propose(&self, client: u64, chaincode: &str, args: Vec<u8>) -> ProposeOutcome {
        self.counters.record_submitted();
        let proposal =
            TransactionProposal::new(self.channel, ClientId(client), chaincode, args);
        if self.sink.is_enabled() {
            self.sink.emit(EventKind::TxSubmitted {
                tx: proposal.id,
                channel: self.channel,
                client: ClientId(client),
            });
        }
        let endorsers = match self.endorsers() {
            Ok(e) => e,
            Err(e) => return ProposeOutcome::Rejected(e),
        };
        let mut responses = Vec::new();
        for peer in endorsers {
            match peer.endorse(&proposal) {
                Ok(r) => responses.push(r),
                Err(SimulationError::StaleRead { .. }) => {
                    self.counters.record_outcome(ValidationCode::EarlyAbortSimulation);
                    return ProposeOutcome::EarlyAborted(proposal.id);
                }
                Err(e) => return ProposeOutcome::Rejected(e.to_string()),
            }
        }
        match assemble_transaction(&proposal, responses) {
            Ok(tx) => ProposeOutcome::Endorsed(Box::new(tx)),
            Err(e) => ProposeOutcome::Rejected(e),
        }
    }

    /// Hands an endorsed transaction to the orderer's buffer.
    pub fn submit(&mut self, tx: Transaction) {
        self.pending.push(tx);
    }

    /// Convenience: propose and, if endorsed, submit. Returns the tx id if
    /// it entered the pipeline.
    pub fn propose_and_submit(
        &mut self,
        client: u64,
        chaincode: &str,
        args: Vec<u8>,
    ) -> Option<TxId> {
        match self.propose(client, chaincode, args) {
            ProposeOutcome::Endorsed(tx) => {
                let id = tx.id;
                self.submit(*tx);
                Some(id)
            }
            _ => None,
        }
    }

    /// Ordering + validation + commit: cuts everything pending into one
    /// block, processes it on every peer, and returns the reporting peer's
    /// committed block — or `Ok(None)` when the cut produced no block
    /// (empty pending buffer, or early abort killed every transaction;
    /// empty blocks are never delivered to peers).
    pub fn cut_block(&mut self) -> Result<Option<Arc<CommittedBlock>>> {
        let batch = std::mem::take(&mut self.pending);
        if self.sink.is_enabled() && !batch.is_empty() {
            // The harness cuts on demand, which maps to the explicit
            // flush condition rather than a threshold.
            self.sink.emit(EventKind::BlockCut {
                reason: CutKind::Flush,
                txs: batch.len() as u32,
            });
        }
        let Some(ordered) = self.orderer.order_batch(batch) else {
            return Ok(None);
        };
        self.archive.push(ordered.block.clone());
        let mut first: Option<Arc<CommittedBlock>> = None;
        for (i, peer) in self.peers.iter().enumerate() {
            if self.down[i] {
                continue; // crashed peers miss the block entirely
            }
            // Immediate delivery: the sealer's dependency hints ride along
            // so lane-configured peers reuse the conflict analysis instead
            // of re-interning the block. (Archive catch-up after a restart
            // passes no hints — the scheduler rebuilds them, identically.)
            let committed =
                peer.process_block_with_hints(ordered.block.clone(), ordered.hints.clone())?;
            if let Some(log) = &mut self.block_logs[i] {
                log.append(&committed)?;
                log.sync()?;
            }
            if first.is_none() {
                first = Some(committed);
            }
        }
        first.map(Some).ok_or_else(|| Error::Config("every peer is down".into()))
    }

    /// Number of transactions waiting for the next block.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// All peers.
    pub fn peers(&self) -> &[Arc<Peer>] {
        &self.peers
    }

    /// The reporting peer (peer 0).
    pub fn reporting_peer(&self) -> &Arc<Peer> {
        &self.peers[0]
    }

    /// Outcome counters snapshot.
    pub fn stats(&self) -> TxStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode_fn;

    fn transfer_chaincode() -> Arc<dyn Chaincode> {
        chaincode_fn("transfer", |ctx, args| {
            // args: 8 bytes from-account, 8 bytes to-account, 8 bytes amount
            if args.len() != 24 {
                return Err("bad args".into());
            }
            let from = Key::composite("acct", u64::from_le_bytes(args[0..8].try_into().unwrap()));
            let to = Key::composite("acct", u64::from_le_bytes(args[8..16].try_into().unwrap()));
            let amount = i64::from_le_bytes(args[16..24].try_into().unwrap());
            let fb = ctx.get_i64(&from).map_err(|e| e.to_string())?.ok_or("no from")?;
            let tb = ctx.get_i64(&to).map_err(|e| e.to_string())?.ok_or("no to")?;
            ctx.put_i64(from, fb - amount);
            ctx.put_i64(to, tb + amount);
            Ok(())
        })
    }

    fn args(from: u64, to: u64, amount: i64) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&from.to_le_bytes());
        v.extend_from_slice(&to.to_le_bytes());
        v.extend_from_slice(&amount.to_le_bytes());
        v
    }

    fn genesis(n: u64) -> Vec<(Key, Value)> {
        (0..n).map(|i| (Key::composite("acct", i), Value::from_i64(100))).collect()
    }

    fn balance(net: &SyncNet, acct: u64) -> i64 {
        net.reporting_peer()
            .store()
            .get(&Key::composite("acct", acct))
            .unwrap()
            .unwrap()
            .value
            .as_i64()
            .unwrap()
    }

    #[test]
    fn happy_path_transfer() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 30)).unwrap();
        let block = net.cut_block().unwrap().expect("block");
        assert_eq!(block.validity, vec![ValidationCode::Valid]);
        assert_eq!(balance(&net, 0), 70);
        assert_eq!(balance(&net, 1), 130);
        // All peers agree.
        for peer in net.peers() {
            assert_eq!(peer.ledger().height(), 2);
            peer.ledger().verify_chain().unwrap();
        }
    }

    #[test]
    fn vanilla_conflicting_batch_loses_transactions() {
        // Two transfers touching account 0, simulated against the same
        // state, in one block: under vanilla arrival order the second dies.
        let mut net = SyncNet::new(
            &PipelineConfig::vanilla(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 10)).unwrap();
        net.propose_and_submit(1, "transfer", args(0, 2, 10)).unwrap();
        let block = net.cut_block().unwrap().expect("block");
        assert_eq!(
            block.validity,
            vec![ValidationCode::Valid, ValidationCode::MvccConflict]
        );
        let s = net.stats();
        assert_eq!(s.valid, 1);
        assert_eq!(s.mvcc_conflict, 1);
    }

    #[test]
    fn fabricpp_reorders_conflicting_batch() {
        // Same two conflicting transfers; both write acct0, both read it.
        // Writer-reader cycle? transfer(0→1) writes {0,1} reads {0,1};
        // transfer(0→2) writes {0,2} reads {0,2}. Conflict edges both ways
        // on acct0 → a 2-cycle → Fabric++ aborts one at ORDER time and
        // commits the other; nothing reaches validation as a conflict.
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 10)).unwrap();
        net.propose_and_submit(1, "transfer", args(0, 2, 10)).unwrap();
        let block = net.cut_block().unwrap().expect("block");
        assert_eq!(block.validity, vec![ValidationCode::Valid]);
        let s = net.stats();
        assert_eq!(s.valid, 1);
        assert_eq!(s.early_abort_cycle, 1);
        assert_eq!(s.mvcc_conflict, 0);
    }

    #[test]
    fn fabricpp_reorders_read_after_write_to_success() {
        // A pure reader of acct0 and a writer of acct0 (no cycle): vanilla
        // arrival order (writer first) kills the reader; Fabric++ schedules
        // the reader first and both commit.
        let reader_cc = chaincode_fn("audit", |ctx, args| {
            let k = Key::composite("acct", u64::from_le_bytes(args.try_into().map_err(|_| "bad")?));
            let v = ctx.get_i64(&k).map_err(|e| e.to_string())?.ok_or("missing")?;
            ctx.put_i64(Key::from("audit-log"), v);
            Ok(())
        });
        let writer_cc = chaincode_fn("deposit", |ctx, args| {
            let k = Key::composite("acct", u64::from_le_bytes(args.try_into().map_err(|_| "bad")?));
            ctx.put_i64(k, 999);
            Ok(())
        });

        for (cfg, expect_valid) in [
            (PipelineConfig::vanilla(), 1usize),
            (PipelineConfig::fabric_pp(), 2usize),
        ] {
            let mut net = SyncNet::new(
                &cfg,
                2,
                1,
                vec![reader_cc.clone(), writer_cc.clone()],
                &genesis(4),
            )
            .unwrap();
            // Writer submitted FIRST (arrival order dooms the reader).
            net.propose_and_submit(0, "deposit", 0u64.to_le_bytes().to_vec()).unwrap();
            net.propose_and_submit(1, "audit", 0u64.to_le_bytes().to_vec()).unwrap();
            let block = net.cut_block().unwrap().expect("block");
            assert_eq!(
                block.valid_count(),
                expect_valid,
                "mode {:?}",
                cfg.mode_label()
            );
        }
    }

    #[test]
    fn cross_block_stale_read_aborts_in_validation() {
        // Simulate tx A, commit a conflicting block, then submit A: its
        // read version is stale by commit time → MVCC abort (vanilla path).
        let mut net = SyncNet::new(
            &PipelineConfig::vanilla(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        // Endorse but do not submit yet.
        let stale_tx = match net.propose(0, "transfer", args(0, 1, 5)) {
            ProposeOutcome::Endorsed(tx) => *tx,
            other => panic!("unexpected {other:?}"),
        };
        // A conflicting transfer goes through a full block first.
        net.propose_and_submit(1, "transfer", args(0, 2, 7)).unwrap();
        net.cut_block().unwrap();
        // Now the stale transaction arrives.
        net.submit(stale_tx);
        let block = net.cut_block().unwrap().expect("block");
        assert_eq!(block.validity, vec![ValidationCode::MvccConflict]);
        assert_eq!(balance(&net, 1), 100, "stale write discarded");
    }

    #[test]
    fn fabricpp_early_aborts_stale_simulation() {
        // Under Fabric++, a simulation that runs after a conflicting commit
        // was applied — but against a stale snapshot — aborts at proposal
        // time. We emulate by endorsing, committing, then *re-proposing*
        // with a chaincode that reads the hot key: the new simulation sees
        // fresh state, so instead we check the within-ordering mismatch
        // path: two endorsements straddling a commit.
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        // Endorse T_old against genesis state.
        let t_old = match net.propose(0, "transfer", args(0, 1, 5)) {
            ProposeOutcome::Endorsed(tx) => *tx,
            other => panic!("unexpected {other:?}"),
        };
        // Commit a block that changes acct0.
        net.propose_and_submit(1, "transfer", args(0, 2, 7)).unwrap();
        net.cut_block().unwrap();
        // Endorse T_new against the fresh state; same keys as T_old.
        let t_new = match net.propose(2, "transfer", args(0, 1, 5)) {
            ProposeOutcome::Endorsed(tx) => *tx,
            other => panic!("unexpected {other:?}"),
        };
        // Both land in the same batch: the orderer's version-mismatch
        // check must drop T_old (older read version) and keep T_new.
        let old_id = t_old.id;
        let new_id = t_new.id;
        net.submit(t_old);
        net.submit(t_new);
        let block = net.cut_block().unwrap().expect("block");
        assert_eq!(block.block.txs.len(), 1);
        assert_eq!(block.block.txs[0].id, new_id);
        assert_eq!(block.validity, vec![ValidationCode::Valid]);
        let s = net.stats();
        assert_eq!(s.early_abort_version_mismatch, 1);
        assert!(net.reporting_peer().ledger().find_tx(old_id).is_none());
    }

    #[test]
    fn stats_account_every_submission() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            1,
            vec![transfer_chaincode()],
            &genesis(10),
        )
        .unwrap();
        for i in 0..5 {
            net.propose_and_submit(i, "transfer", args(i, i + 5, 1)).unwrap();
        }
        net.cut_block().unwrap();
        let s = net.stats();
        assert_eq!(s.submitted, 5);
        assert_eq!(s.finished(), 5);
        assert_eq!(s.valid, 5, "disjoint transfers all commit");
    }

    #[test]
    fn crash_and_restart_converges_in_memory() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(6),
        )
        .unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 10)).unwrap();
        net.cut_block().unwrap();

        // Crash a non-endorsing peer, commit two blocks it never sees.
        net.crash_peer(1);
        net.propose_and_submit(1, "transfer", args(2, 3, 5)).unwrap();
        net.cut_block().unwrap();
        net.propose_and_submit(2, "transfer", args(4, 5, 7)).unwrap();
        net.cut_block().unwrap();
        assert_eq!(net.peers()[1].ledger().height(), 2, "crashed peer misses blocks");

        let caught_up = net.restart_peer(1).unwrap();
        assert_eq!(caught_up, 2);
        let reference = Arc::clone(net.reporting_peer());
        let restored = &net.peers()[1];
        assert_eq!(restored.ledger().height(), reference.ledger().height());
        assert_eq!(restored.ledger().tip_hash(), reference.ledger().tip_hash());
        restored.ledger().verify_chain().unwrap();
        for acct in 0..6 {
            assert_eq!(
                restored.store().get(&Key::composite("acct", acct)).unwrap(),
                reference.store().get(&Key::composite("acct", acct)).unwrap(),
            );
        }
    }

    #[test]
    fn crash_with_torn_block_log_recovers_and_converges() {
        let dir = std::env::temp_dir()
            .join(format!("fabric-syncnet-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut net = SyncNet::new(
            &PipelineConfig::vanilla(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(6),
        )
        .unwrap();
        net.persist_blocks(&dir).unwrap();
        net.propose_and_submit(0, "transfer", args(0, 1, 10)).unwrap();
        net.cut_block().unwrap();
        net.propose_and_submit(1, "transfer", args(2, 3, 5)).unwrap();
        net.cut_block().unwrap();

        // Crash peer 3 and tear the tail of its block log, as if the
        // process died mid-append of block 2.
        net.crash_peer(3);
        net.tear_block_log(3, 9).unwrap();
        net.propose_and_submit(2, "transfer", args(4, 5, 7)).unwrap();
        net.cut_block().unwrap();

        // Restart: torn tail discarded, prefix replayed, archive catch-up
        // re-commits both the torn block and the missed one.
        let caught_up = net.restart_peer(3).unwrap();
        assert_eq!(caught_up, 2);
        let reference = Arc::clone(net.reporting_peer());
        let restored = &net.peers()[3];
        assert_eq!(restored.ledger().height(), reference.ledger().height());
        assert_eq!(restored.ledger().tip_hash(), reference.ledger().tip_hash());
        for acct in 0..6 {
            assert_eq!(
                restored.store().get(&Key::composite("acct", acct)).unwrap(),
                reference.store().get(&Key::composite("acct", acct)).unwrap(),
            );
        }

        // The re-synced on-disk log now loads cleanly at full height.
        net.crash_peer(3);
        let again = net.restart_peer(3).unwrap();
        assert_eq!(again, 0, "no catch-up needed after a clean crash");
        assert_eq!(net.peers()[3].ledger().height(), reference.ledger().height());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn endorsers_skip_crashed_peers() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(4),
        )
        .unwrap();
        // Peer 0 (org 1's first peer) crashes; peer 1 (same org) takes over
        // endorsement duty.
        net.crash_peer(0);
        net.propose_and_submit(0, "transfer", args(0, 1, 10)).unwrap();
        let block = net.cut_block().unwrap().expect("block");
        assert_eq!(block.validity, vec![ValidationCode::Valid]);
        // Crash the whole org: proposals are rejected.
        net.crash_peer(1);
        match net.propose(1, "transfer", args(0, 1, 1)) {
            ProposeOutcome::Rejected(e) => assert!(e.contains("no live endorser")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_cut_produces_no_block() {
        let mut net = SyncNet::new(
            &PipelineConfig::fabric_pp(),
            1,
            1,
            vec![transfer_chaincode()],
            &genesis(1),
        )
        .unwrap();
        let heights: Vec<u64> = net.peers().iter().map(|p| p.ledger().height()).collect();
        assert!(net.cut_block().unwrap().is_none(), "no empty block delivered");
        assert_eq!(net.pending_count(), 0);
        for (peer, h) in net.peers().iter().zip(heights) {
            assert_eq!(peer.ledger().height(), h, "chain untouched by empty cut");
        }
        // The next real cut picks up block numbering with no gap.
        net.propose_and_submit(0, "transfer", args(0, 0, 0)).unwrap();
        let block = net.cut_block().unwrap().expect("block");
        assert_eq!(block.block.header.number, 1);
    }
}
