//! # fabricpp
//!
//! The end-to-end system: Hyperledger Fabric v1.2's
//! simulate–order–validate–commit pipeline as a multi-threaded simulation,
//! plus the Fabric++ optimizations of Sharma et al. (SIGMOD'19) —
//! transaction reordering and early abort — switchable per
//! [`fabric_common::PipelineConfig`].
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use fabricpp::{NetworkBuilder, chaincode_fn};
//! use fabric_common::{Key, PipelineConfig, Value};
//!
//! // A chaincode: move 10 units from the key in args to "sink".
//! let transfer = chaincode_fn("transfer", |ctx, args| {
//!     let from = Key::new(args.to_vec());
//!     let bal = ctx.get_i64(&from).map_err(|e| e.to_string())?.unwrap_or(0);
//!     ctx.put_i64(from, bal - 10);
//!     let sink = ctx.get_i64(&Key::from("sink")).map_err(|e| e.to_string())?.unwrap_or(0);
//!     ctx.put_i64(Key::from("sink"), sink + 10);
//!     Ok(())
//! });
//!
//! let mut net = NetworkBuilder::new()
//!     .orgs(2)
//!     .peers_per_org(2)
//!     .pipeline(PipelineConfig::fabric_pp())
//!     .deploy(transfer)
//!     .genesis((0..4).map(|i| (Key::composite("acct", i), Value::from_i64(100))))
//!     .genesis([(Key::from("sink"), Value::from_i64(0))])
//!     .build()
//!     .unwrap();
//!
//! let client = net.client(0);
//! client.submit("transfer", b"acct:1".to_vec());
//! drop(client); // all clients must be gone before finish()
//! let report = net.finish();
//! assert_eq!(report.stats.submitted, 1);
//! ```
//!
//! ## Modules
//!
//! * [`client`] — the client side of the protocol: proposal →
//!   endorsement collection → read/write-set comparison → submission.
//! * [`channel`] — one channel's runtime: an ordering-service thread plus
//!   one validation thread per peer, wired over the simulated network.
//! * [`network`] — [`NetworkBuilder`] / [`FabricNetwork`]: organizations,
//!   peers, channels, chaincode deployment, genesis state, reporting.
//! * [`sync`] — a single-threaded, fully deterministic harness over the
//!   same components, used by integration tests to script exact scenarios
//!   (e.g. the paper's Appendix A running example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod client;
pub mod network;
pub mod sync;

pub use client::{ClientHandle, SubmitOutcome};
pub use network::{FabricNetwork, NetworkBuilder, RunReport, StateEngine};
pub use sync::SyncNet;

use std::sync::Arc;

use fabric_peer::chaincode::{Chaincode, TxContext};

/// Wraps a closure as a named [`Chaincode`] (the ergonomic way to define
/// contracts in examples and tests).
pub fn chaincode_fn<F>(name: &str, f: F) -> Arc<dyn Chaincode>
where
    F: Fn(&mut TxContext, &[u8]) -> Result<(), String> + Send + Sync + 'static,
{
    struct FnChaincode<F> {
        name: String,
        f: F,
    }
    impl<F> Chaincode for FnChaincode<F>
    where
        F: Fn(&mut TxContext, &[u8]) -> Result<(), String> + Send + Sync + 'static,
    {
        fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result<(), String> {
            (self.f)(ctx, args)
        }
        fn name(&self) -> &str {
            &self.name
        }
    }
    Arc::new(FnChaincode { name: name.to_owned(), f })
}

/// Like [`chaincode_fn`], but with a *declared read set*: `reads` names
/// the keys the invocation will read, computed from the arguments alone,
/// so the endorser can resolve the whole set in one engine round trip
/// before execution. Return `None` from `reads` when the set cannot be
/// determined for the given arguments.
pub fn chaincode_fn_with_reads<F, R>(name: &str, reads: R, f: F) -> Arc<dyn Chaincode>
where
    F: Fn(&mut TxContext, &[u8]) -> Result<(), String> + Send + Sync + 'static,
    R: Fn(&[u8]) -> Option<Vec<fabric_common::Key>> + Send + Sync + 'static,
{
    struct FnChaincodeWithReads<F, R> {
        name: String,
        f: F,
        reads: R,
    }
    impl<F, R> Chaincode for FnChaincodeWithReads<F, R>
    where
        F: Fn(&mut TxContext, &[u8]) -> Result<(), String> + Send + Sync + 'static,
        R: Fn(&[u8]) -> Option<Vec<fabric_common::Key>> + Send + Sync + 'static,
    {
        fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result<(), String> {
            (self.f)(ctx, args)
        }
        fn declared_reads(&self, args: &[u8]) -> Option<Vec<fabric_common::Key>> {
            (self.reads)(args)
        }
        fn name(&self) -> &str {
            &self.name
        }
    }
    Arc::new(FnChaincodeWithReads { name: name.to_owned(), f, reads })
}
