//! Threaded-network smoke tests for the core crate's public API surface:
//! builder validation, client retry plumbing, orderer telemetry, and
//! multi-channel isolation.

use std::time::Duration;

use fabric_common::{CostModel, Key, PipelineConfig, Value};
use fabric_net::LatencyModel;
use fabricpp::{chaincode_fn, NetworkBuilder, SubmitOutcome};

fn counter_chaincode() -> std::sync::Arc<dyn fabric_peer::chaincode::Chaincode> {
    chaincode_fn("count", |ctx, args| {
        let k = Key::new(args.to_vec());
        let v = ctx.get_i64(&k).map_err(|e| e.to_string())?.unwrap_or(0);
        ctx.put_i64(k, v + 1);
        Ok(())
    })
}

fn fast_builder() -> NetworkBuilder {
    NetworkBuilder::new()
        .orgs(2)
        .peers_per_org(1)
        .cost(CostModel::raw())
        .latency(LatencyModel::zero())
        .deploy(counter_chaincode())
        .genesis([(Key::from("c"), Value::from_i64(0))])
}

#[test]
fn builder_rejects_degenerate_topologies() {
    assert!(NetworkBuilder::new().orgs(0).build().is_err());
    assert!(NetworkBuilder::new().peers_per_org(0).build().is_err());
    assert!(NetworkBuilder::new().channels(0).build().is_err());
    let mut bad = PipelineConfig::fabric_pp();
    bad.max_cycles = 0;
    assert!(NetworkBuilder::new().pipeline(bad).build().is_err());
}

#[test]
fn submit_outcomes_and_retry_plumbing() {
    let net = fast_builder().build().unwrap();
    let client = net.client(0);

    // Normal path: submitted without retries.
    let (outcome, retries) = client.submit_with_retry("count", b"c".to_vec(), 3);
    assert!(outcome.is_submitted());
    assert_eq!(retries, 0);

    // Unknown chaincode: rejected immediately, never retried.
    let (outcome, retries) = client.submit_with_retry("nope", vec![], 3);
    assert!(matches!(outcome, SubmitOutcome::Rejected(_)));
    assert_eq!(retries, 0);

    drop(client);
    let report = net.finish();
    assert_eq!(report.stats.submitted, 2);
    assert_eq!(report.stats.valid, 1);
}

#[test]
fn orderer_telemetry_reports_cut_reasons() {
    let net = fast_builder()
        .pipeline(PipelineConfig::fabric_pp().with_block_size(4))
        .build()
        .unwrap();
    let client = net.client(0);
    for i in 0..10u64 {
        client.submit("count", Key::composite("k", i).as_bytes().to_vec());
    }
    drop(client);
    let report = net.finish();
    let ord = report.orderer;
    assert!(ord.blocks >= 2, "10 txs at BS=4 must cut at least twice");
    assert!(ord.cut_tx_count >= 2, "count condition must have fired");
    assert_eq!(
        ord.blocks,
        ord.cut_tx_count + ord.cut_bytes + ord.cut_timeout + ord.cut_unique_keys + ord.cut_flush
    );
    assert_eq!(ord.txs_ordered, 10);
}

#[test]
fn channels_are_isolated() {
    let net = fast_builder().channels(2).build().unwrap();
    // Only channel 0 receives traffic.
    let client = net.client(0);
    for _ in 0..5 {
        client.submit("count", b"c".to_vec());
    }
    drop(client);

    // Channel 1's peers never see those transactions.
    let ch1_state = net.channel_peers(1)[0].store().clone();
    let report = net.finish();
    assert!(report.block_heights[0] > 1, "channel 0 advanced");
    assert_eq!(report.block_heights[1], 1, "channel 1 stayed at genesis");
    assert_eq!(
        ch1_state.get(&Key::from("c")).unwrap().unwrap().value,
        Value::from_i64(0),
        "channel 1 state untouched"
    );
}

#[test]
fn crash_and_restart_peer_mid_run_converges() {
    let net = fast_builder().peers_per_org(2).build().unwrap();
    let client = net.client(0);
    // Disjoint keys so nothing conflicts: every submission must commit.
    for i in 0..5u64 {
        client.submit("count", Key::composite("k", i).as_bytes().to_vec());
    }
    // Let the first batch reach the peers, then crash a gossip peer.
    std::thread::sleep(Duration::from_millis(50));
    net.crash_peer(0, 1);
    assert!(net.is_peer_down(0, 1));
    for i in 5..10u64 {
        client.submit("count", Key::composite("k", i).as_bytes().to_vec());
    }
    std::thread::sleep(Duration::from_millis(50));

    // Restart: recovery from its own chain + catch-up from the archive.
    net.restart_peer(0, 1).unwrap();
    assert!(!net.is_peer_down(0, 1));
    for i in 10..15u64 {
        client.submit("count", Key::composite("k", i).as_bytes().to_vec());
    }
    drop(client);

    let peers = net.channel_peers(0);
    let report = net.finish();
    assert_eq!(report.stats.valid, 15);
    let reference = &peers[0];
    for peer in &peers {
        assert_eq!(peer.ledger().tip_hash(), reference.ledger().tip_hash());
        peer.ledger().verify_chain().unwrap();
        for i in 0..15u64 {
            assert_eq!(
                peer.store().get(&Key::composite("k", i)).unwrap().unwrap().value,
                Value::from_i64(1),
                "restarted peer must converge to the same state"
            );
        }
    }
}

#[test]
fn unique_keys_cutting_condition_fires() {
    // Fabric++ batch-cutting condition (d): keys per block bounded.
    let mut pipeline = PipelineConfig::fabric_pp();
    pipeline.cutting.max_unique_keys = Some(6);
    pipeline.cutting.max_tx_count = 1000;
    pipeline.cutting.max_batch_wait = Duration::from_millis(200);
    let net = fast_builder().pipeline(pipeline).build().unwrap();
    let client = net.client(0);
    for i in 0..12u64 {
        // Each tx touches a distinct key → 6-key bound cuts every ~6 txs.
        client.submit("count", Key::composite("u", i).as_bytes().to_vec());
    }
    drop(client);
    let report = net.finish();
    assert!(
        report.orderer.cut_unique_keys >= 1,
        "unique-keys condition never fired: {:?}",
        report.orderer
    );
}
