//! Corruption injection: plants a known class of nondeterminism bug
//! into a replica's collected artifacts, so the comparator can prove —
//! in tests and in the CI self-test gate — that it catches each class
//! with the right localization and root-cause hint. Corruptions edit the
//! *artifacts*, not the pipeline, which keeps the injected bug precisely
//! shaped and the real pipeline honest.

use fabric_common::codec::{Decode, Decoder, Encode};
use fabric_common::{Error, Result};
use fabric_ledger::{Block, CommittedBlock};

use crate::artifacts::{ReplicaArtifacts, BLOCK_STREAM, CHAIN_FINGERPRINT};

/// A known nondeterminism-bug shape to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Rotates the (transaction, validity) pairs of the first block with
    /// at least two transactions and recomputes its data hash — what a
    /// hash-map iteration order leaking into block assembly looks like:
    /// same transactions, different order.
    ShuffleTxOrder,
    /// Overwrites the 8 bytes at offset 16 of the chain fingerprint with
    /// a wall-clock-like value — what a serialized timestamp looks like.
    /// Inject *different* near-equal values into the two compared
    /// replicas (as a real leak would) to exercise the timestamp hint.
    TimestampLeak(u64),
    /// Drops the last `n` bytes of the block stream — a truncated or
    /// partially-flushed stream.
    TruncateTail(usize),
}

/// Applies `corruption` to `replica`'s artifacts in place.
pub fn apply(replica: &mut ReplicaArtifacts, corruption: &Corruption) -> Result<()> {
    match corruption {
        Corruption::ShuffleTxOrder => shuffle_tx_order(replica),
        Corruption::TimestampLeak(value) => {
            let art = replica
                .artifact_mut(CHAIN_FINGERPRINT)
                .ok_or_else(|| Error::Config("no chain fingerprint artifact".into()))?;
            if art.bytes.len() < 24 {
                return Err(Error::Config("chain fingerprint too short to corrupt".into()));
            }
            art.bytes[16..24].copy_from_slice(&value.to_le_bytes());
            Ok(())
        }
        Corruption::TruncateTail(n) => {
            let art = replica
                .artifact_mut(BLOCK_STREAM)
                .ok_or_else(|| Error::Config("no block stream artifact".into()))?;
            if *n == 0 || *n >= art.bytes.len() {
                return Err(Error::Config(format!(
                    "cannot truncate {} of {} bytes",
                    n,
                    art.bytes.len()
                )));
            }
            art.bytes.truncate(art.bytes.len() - n);
            Ok(())
        }
    }
}

fn shuffle_tx_order(replica: &mut ReplicaArtifacts) -> Result<()> {
    let art = replica
        .artifact_mut(BLOCK_STREAM)
        .ok_or_else(|| Error::Config("no block stream artifact".into()))?;
    let mut dec = Decoder::new(&art.bytes);
    let mut blocks = Vec::new();
    while dec.remaining() > 0 {
        blocks.push(CommittedBlock::decode(&mut dec)?);
    }
    let target = blocks
        .iter_mut()
        .find(|cb| cb.block.txs.len() >= 2)
        .ok_or_else(|| Error::Config("no block with >= 2 transactions to shuffle".into()))?;
    let mut txs = target.block.txs.clone();
    let mut validity = target.validity.clone();
    txs.rotate_left(1);
    validity.rotate_left(1);
    // Rebuild with a recomputed data hash: an assembly-order bug scrambles
    // the transactions before hashing, so the hash diverges too.
    let rebuilt =
        Block::build(target.block.header.number, target.block.header.prev_hash, txs);
    *target = CommittedBlock::new(rebuilt, validity)?;

    let mut stream = Vec::new();
    let mut offsets = Vec::new();
    for cb in &blocks {
        offsets.push((cb.block.header.number, stream.len()));
        stream.extend_from_slice(&cb.encode_to_vec());
    }
    art.bytes = stream;
    art.block_offsets = offsets;
    Ok(())
}
