//! One conformance replica: a full [`ChaosNet`] pipeline run under one
//! setting of the non-semantic knobs, reduced to its replicated
//! [`ReplicaArtifacts`].

use std::path::PathBuf;

use fabric_chaos::{ChaosNet, ChaosOptions};
use fabric_common::codec::{Encode, Encoder};
use fabric_common::{Error, Result};
use fabric_telemetry::TelemetryConfig;
use fabric_trace::{EventKind, TraceSink};
use fabricpp::StateEngine;

use crate::artifacts::{
    Artifact, ReplicaArtifacts, BLOCK_STREAM, CHAIN_FINGERPRINT, SCHEDULE_DIGEST, STATE_DIGEST,
    TX_STATS,
};
use crate::fixtures::Fixture;

/// Which storage engine backs the replica's peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The sharded in-memory store.
    Memory,
    /// The LSM engine, in a per-replica temporary directory the runner
    /// creates and removes.
    Lsm,
}

/// One point in the non-semantic knob matrix.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Stable label (used in divergence reports and gate names).
    pub label: &'static str,
    /// Validation-pool workers (`PipelineConfig::validation_workers`).
    pub validation_workers: usize,
    /// Reorder-stage workers (`PipelineConfig::reorder_workers`).
    pub reorder_workers: usize,
    /// Whether a flight-recorder sink is attached.
    pub traced: bool,
    /// Storage engine.
    pub engine: EngineKind,
    /// `Some(n)`: replicated consensus group of `n`; `None`: single
    /// orderer.
    pub consensus_replicas: Option<usize>,
    /// `Some(n)`: every peer store retains up to `n` committed versions
    /// per key (multi-version snapshot depth); `None`: engine default.
    /// Retention is non-semantic, so any two settings must replicate.
    pub retained_versions: Option<usize>,
    /// Commit-lane count (`PipelineConfig::commit_lanes`): the
    /// dependency-aware parallel validation + commit path when > 1.
    /// The lane count is non-semantic — every cell must produce the same
    /// byte stream as the sequential baseline.
    pub commit_lanes: usize,
    /// Whether the windowed time-series telemetry hub is attached.
    /// Telemetry is observation only, so a telemetry-on cell must
    /// replicate the baseline byte-for-byte — this is the proof obligation
    /// for the "always-on" claim.
    pub telemetry: bool,
}

impl ReplicaSpec {
    /// The comparison baseline: sequential everything, memory engine,
    /// untraced, single orderer.
    pub fn baseline() -> Self {
        ReplicaSpec {
            label: "baseline",
            validation_workers: 1,
            reorder_workers: 1,
            traced: false,
            engine: EngineKind::Memory,
            consensus_replicas: None,
            retained_versions: None,
            commit_lanes: 1,
            telemetry: false,
        }
    }

    /// Baseline with both worker knobs raised.
    pub fn workers(label: &'static str, validation: usize, reorder: usize) -> Self {
        ReplicaSpec {
            label,
            validation_workers: validation,
            reorder_workers: reorder,
            ..Self::baseline()
        }
    }

    /// Baseline with the flight recorder on.
    pub fn traced() -> Self {
        ReplicaSpec { label: "traced", traced: true, ..Self::baseline() }
    }

    /// Baseline on the LSM engine.
    pub fn lsm() -> Self {
        ReplicaSpec { label: "lsm", engine: EngineKind::Lsm, ..Self::baseline() }
    }

    /// Baseline with an `n`-replica consensus group ordering.
    pub fn consensus(n: usize) -> Self {
        ReplicaSpec { label: "consensus3", consensus_replicas: Some(n), ..Self::baseline() }
    }

    /// Baseline with a fixed per-key version-retention depth.
    pub fn retained(label: &'static str, n: usize) -> Self {
        ReplicaSpec { label, retained_versions: Some(n), ..Self::baseline() }
    }

    /// Baseline validating + committing on `n` commit lanes.
    pub fn lanes(label: &'static str, n: usize) -> Self {
        ReplicaSpec { label, commit_lanes: n, ..Self::baseline() }
    }

    /// Commit lanes with the flight recorder attached: proves the lane
    /// path replays conflict provenance events byte-for-byte too.
    pub fn lanes_traced(label: &'static str, n: usize) -> Self {
        ReplicaSpec { label, commit_lanes: n, traced: true, ..Self::baseline() }
    }

    /// Baseline with the windowed telemetry hub attached: proves telemetry
    /// is observation only (byte-identical artifacts to the baseline).
    pub fn telemetry() -> Self {
        ReplicaSpec { label: "telemetry", telemetry: true, ..Self::baseline() }
    }
}

fn lsm_dir(fixture: &Fixture, spec: &ReplicaSpec) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fabric-conformance-{}-{}-{}",
        fixture.name,
        spec.label,
        std::process::id()
    ))
}

/// Runs `fixture` once under `spec` and collects the replicated
/// artifacts. Also enforces two per-replica sanity gates: the invariant
/// sweep must pass, and on traced replicas the flight recorder's commit
/// events must reconcile with the outcome counters.
pub fn run_replica(fixture: &Fixture, spec: &ReplicaSpec) -> Result<ReplicaArtifacts> {
    let mut config = fixture.config();
    config.validation_workers = spec.validation_workers;
    config.reorder_workers = spec.reorder_workers;
    config.commit_lanes = spec.commit_lanes;

    let sink = if spec.traced { TraceSink::bounded(1 << 16) } else { TraceSink::disabled() };
    let tmp = match spec.engine {
        EngineKind::Memory => None,
        EngineKind::Lsm => {
            let dir = lsm_dir(fixture, spec);
            let _ = std::fs::remove_dir_all(&dir);
            Some(dir)
        }
    };
    let engine = match &tmp {
        None => StateEngine::Memory,
        Some(dir) => StateEngine::Lsm(dir.clone()),
    };
    let opts = ChaosOptions {
        replicas: spec.consensus_replicas,
        sink: sink.clone(),
        engine,
        retained_versions: spec.retained_versions,
        telemetry: spec
            .telemetry
            .then(|| TelemetryConfig { window_blocks: 2, ..TelemetryConfig::default() }),
    };

    let result = run_inner(fixture, spec, &config, opts, &sink);
    if let Some(dir) = tmp {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn run_inner(
    fixture: &Fixture,
    spec: &ReplicaSpec,
    config: &fabric_common::PipelineConfig,
    opts: ChaosOptions,
    sink: &TraceSink,
) -> Result<ReplicaArtifacts> {
    let mut net = ChaosNet::with_options(
        config,
        fixture.orgs,
        fixture.peers_per_org,
        fixture.chaincodes(),
        &fixture.genesis(),
        fixture.plan(),
        opts,
    )?;
    fixture.drive(&mut net)?;
    let report = net.check()?;
    if !report.ok() {
        return Err(Error::InvalidState(format!(
            "fixture {} replica {}: invariant violations: {:?}",
            fixture.name, spec.label, report.violations
        )));
    }

    let stats = net.stats();
    if spec.telemetry {
        // Per-replica sanity gate: the hub's windows must partition the
        // run exactly (counts telescope to the final totals, watermarks
        // monotone, no dropped windows).
        let series = net.telemetry_series().ok_or_else(|| {
            Error::InvalidState(format!(
                "fixture {} replica {}: telemetry enabled but no series came back",
                fixture.name, spec.label
            ))
        })?;
        series.check_invariants(&stats).map_err(|e| {
            Error::InvalidState(format!(
                "fixture {} replica {}: telemetry window invariants violated: {e}",
                fixture.name, spec.label
            ))
        })?;
    }
    if spec.traced {
        if sink.dropped() != 0 {
            return Err(Error::InvalidState(format!(
                "fixture {} replica {}: trace ring dropped {} events; raise the capacity",
                fixture.name,
                spec.label,
                sink.dropped()
            )));
        }
        let committed = sink
            .report()
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TxCommitted { .. }))
            .count() as u64;
        if committed != stats.valid {
            return Err(Error::InvalidState(format!(
                "fixture {} replica {}: trace-derived commit count {} != counter {}",
                fixture.name, spec.label, committed, stats.valid
            )));
        }
    }

    // All artifacts come off the reporting peer (slot 0), which the
    // settle() above has caught fully up.
    let peer = &net.peers()[0];

    let mut stream = Vec::new();
    let mut offsets = Vec::new();
    let mut blocks = Vec::new();
    peer.ledger().for_each(|cb| blocks.push(cb.clone()));
    for cb in &blocks {
        offsets.push((cb.block.header.number, stream.len()));
        stream.extend_from_slice(&cb.encode_to_vec());
    }

    let state_digest = peer.store().state_digest()?;

    let mut fp = Encoder::with_capacity(48);
    fp.put_u64(peer.ledger().height());
    fp.put_bytes(peer.ledger().tip_hash().as_bytes());

    let mut st = Encoder::with_capacity(56);
    st.put_u64(stats.submitted);
    st.put_u64(stats.valid);
    st.put_u64(stats.mvcc_conflict);
    st.put_u64(stats.endorsement_failure);
    st.put_u64(stats.early_abort_simulation);
    st.put_u64(stats.early_abort_cycle);
    st.put_u64(stats.early_abort_version_mismatch);

    Ok(ReplicaArtifacts {
        label: spec.label.to_owned(),
        validation_workers: spec.validation_workers,
        reorder_workers: spec.reorder_workers,
        artifacts: vec![
            Artifact { name: BLOCK_STREAM, bytes: stream, block_offsets: offsets },
            Artifact::flat(STATE_DIGEST, state_digest.as_bytes().to_vec()),
            Artifact::flat(CHAIN_FINGERPRINT, fp.into_bytes()),
            Artifact::flat(
                SCHEDULE_DIGEST,
                net.injector().schedule_digest().as_bytes().to_vec(),
            ),
            Artifact::flat(TX_STATS, st.into_bytes()),
        ],
    })
}
