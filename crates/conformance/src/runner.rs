//! The conformance runner: executes a fixture's whole knob matrix and
//! compares every replica against the baseline.

use fabric_common::Result;

use crate::artifacts::ReplicaArtifacts;
use crate::corrupt::{self, Corruption};
use crate::divergence::{compare_artifacts, Divergence};
use crate::fixtures::Fixture;
use crate::replica::{run_replica, ReplicaSpec};

/// The outcome of one fixture across its replica matrix.
#[derive(Debug)]
pub struct FixtureReport {
    /// The fixture's name.
    pub fixture: &'static str,
    /// Artifacts collected per replica (baseline first).
    pub replicas: Vec<ReplicaArtifacts>,
    /// First divergence found against the baseline, if any.
    pub divergence: Option<Divergence>,
}

impl FixtureReport {
    /// Whether every replica matched the baseline byte-for-byte.
    pub fn passed(&self) -> bool {
        self.divergence.is_none()
    }

    /// Total replicated bytes across all replicas — a report with zero
    /// artifact bytes means the harness compared nothing and must fail
    /// loudly.
    pub fn total_artifact_bytes(&self) -> usize {
        self.replicas.iter().map(ReplicaArtifacts::total_bytes).sum()
    }
}

/// Runs `fixture` under every spec in its knob matrix and compares each
/// replica's artifacts against the first (baseline) replica's.
pub fn run_fixture(fixture: &Fixture) -> Result<FixtureReport> {
    let specs = fixture.specs();
    let mut replicas = Vec::with_capacity(specs.len());
    for spec in &specs {
        replicas.push(run_replica(fixture, spec)?);
    }
    let mut divergence = None;
    for other in &replicas[1..] {
        if let Some(d) = compare_artifacts(&replicas[0], other) {
            divergence = Some(d);
            break;
        }
    }
    Ok(FixtureReport { fixture: fixture.name, replicas, divergence })
}

/// Runs the whole fixture matrix.
pub fn run_all() -> Result<Vec<FixtureReport>> {
    Fixture::all().iter().map(run_fixture).collect()
}

/// Self-test: runs the baseline replica twice (byte-identical by
/// construction), injects `corruption`, and returns what the comparator
/// found. `None` means the injected bug escaped detection — a harness
/// failure. For [`Corruption::TimestampLeak`] both copies get distinct
/// near-equal values, the way a real leak presents on two replicas.
pub fn corruption_is_caught(
    fixture: &Fixture,
    corruption: &Corruption,
) -> Result<Option<Divergence>> {
    let spec = ReplicaSpec::baseline();
    let mut a = run_replica(fixture, &spec)?;
    let mut b = run_replica(fixture, &spec)?;
    if let Some(d) = compare_artifacts(&a, &b) {
        return Err(fabric_common::Error::InvalidState(format!(
            "two baseline runs of fixture {} are not byte-identical: {d}",
            fixture.name
        )));
    }
    match corruption {
        Corruption::TimestampLeak(value) => {
            corrupt::apply(&mut a, &Corruption::TimestampLeak(*value))?;
            let skew = (value / 512).max(1); // well inside the 1% window
            corrupt::apply(&mut b, &Corruption::TimestampLeak(value + skew))?;
        }
        other => corrupt::apply(&mut b, other)?,
    }
    Ok(compare_artifacts(&a, &b))
}
