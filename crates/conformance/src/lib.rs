//! fabric-conformance: the multi-replica determinism conformance harness.
//!
//! The determinism invariant behind the whole stack — identical inputs
//! yield identical ledgers — is easy to state and easy to lose: one
//! hash-map iteration leaking into block assembly, one wall-clock value
//! serialized into replicated bytes, one worker-count-dependent merge,
//! and two replicas that "agree" on every invariant check still diverge
//! byte-for-byte. This crate turns the invariant into a harness:
//!
//! 1. [`fixtures`] defines seeded workloads (small, medium, an
//!    adversarial conflict-heavy one, and a chaos-faulted one) driven
//!    with *explicit* transaction ids, so independent runs produce
//!    byte-comparable blocks;
//! 2. [`replica`] runs one full pipeline (a [`fabric_chaos::ChaosNet`])
//!    per [`replica::ReplicaSpec`], varying only non-semantic knobs —
//!    validation workers, reorder workers, trace sink on/off, storage
//!    engine, consensus replication — and collects the replicated
//!    [`artifacts`]: serialized block stream, state digest, chain
//!    fingerprint, fault-schedule digest, and outcome counters;
//! 3. [`runner`] compares every replica against the baseline and, on
//!    mismatch, [`divergence`] localizes the first diverging artifact,
//!    block, and byte offset, with 16-byte hex context windows and a
//!    root-cause hint (length mismatch, hash-map iteration order,
//!    worker-count-dependent ordering, timestamp leakage);
//! 4. [`corrupt`] injects *known* nondeterminism bugs into collected
//!    artifacts so the harness can prove, in CI, that it would catch
//!    each class with the right localization and hint.

pub mod artifacts;
pub mod corrupt;
pub mod divergence;
pub mod fixtures;
pub mod replica;
pub mod runner;

pub use artifacts::{
    Artifact, ReplicaArtifacts, BLOCK_STREAM, CHAIN_FINGERPRINT, SCHEDULE_DIGEST, STATE_DIGEST,
    TX_STATS,
};
pub use corrupt::Corruption;
pub use divergence::{compare_artifacts, Divergence, RootCauseHint};
pub use fixtures::{Fixture, PlanKind};
pub use replica::{run_replica, EngineKind, ReplicaSpec};
pub use runner::{corruption_is_caught, run_all, run_fixture, FixtureReport};
