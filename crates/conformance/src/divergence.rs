//! Byte-level comparison of replica artifacts with divergence
//! localization: which artifact, which block, which byte, what the two
//! replicas hold there, and a root-cause hint for the classes of
//! determinism bug the stack has actually had to defend against.

use std::fmt;

use fabric_common::codec::{Decode, Decoder};
use fabric_ledger::CommittedBlock;

use crate::artifacts::{Artifact, ReplicaArtifacts, BLOCK_STREAM};

/// Aligned values above this threshold smell like microsecond/nanosecond
/// wall-clock readings rather than counters, lengths, or ids (2^40 µs is
/// ~13 days; every timestamp a leak would serialize is far above it,
/// every id/length in these artifacts far below).
const TIME_LIKE_FLOOR: u64 = 1 << 40;

/// Most likely cause of a divergence, inferred from its shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCauseHint {
    /// One replica's artifact is a strict prefix of the other's:
    /// truncated stream, missing blocks, or records dropped on one side.
    LengthMismatch,
    /// The diverging block holds the same transactions in a different
    /// order at identical worker settings — the classic symptom of
    /// hash-map iteration order leaking into block assembly.
    HashMapIterationOrder,
    /// The diverging block holds the same transactions in a different
    /// order and the replicas differ in worker counts — ordering that
    /// depends on how work was scheduled across workers.
    WorkerOrdering,
    /// Both replicas hold a large, nearly-equal aligned 64-bit value at
    /// the divergence — a wall-clock timestamp serialized into
    /// replicated bytes.
    TimestampLeakage,
    /// None of the known shapes matched.
    Unknown,
}

impl fmt::Display for RootCauseHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RootCauseHint::LengthMismatch => {
                "length mismatch: one artifact is a strict prefix of the other \
                 (truncated stream or records missing on one side)"
            }
            RootCauseHint::HashMapIterationOrder => {
                "same transactions, different order, at equal worker counts: \
                 hash-map iteration order is leaking into block assembly"
            }
            RootCauseHint::WorkerOrdering => {
                "same transactions, different order, across different worker \
                 counts: ordering depends on worker scheduling"
            }
            RootCauseHint::TimestampLeakage => {
                "near-equal wall-clock-like values at the divergence: a \
                 timestamp is serialized into replicated bytes"
            }
            RootCauseHint::Unknown => "content mismatch (no known bug shape matched)",
        };
        f.write_str(s)
    }
}

/// A localized byte-level disagreement between two replicas.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which artifact diverged first (artifacts compare in fixed order).
    pub artifact: &'static str,
    /// Label of the baseline replica.
    pub replica_a: String,
    /// Label of the diverging replica.
    pub replica_b: String,
    /// First byte offset at which the artifacts disagree (equal to the
    /// shorter length when one is a strict prefix of the other).
    pub byte_offset: usize,
    /// Artifact length on each side.
    pub len_a: usize,
    /// Artifact length on the diverging side.
    pub len_b: usize,
    /// For block streams: the block whose encoding contains the offset.
    pub block_number: Option<u64>,
    /// Up to 16 bytes of hex context starting at the offset, baseline side.
    pub context_a: String,
    /// Up to 16 bytes of hex context starting at the offset, diverging side.
    pub context_b: String,
    /// Most likely root cause.
    pub hint: RootCauseHint,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replicas {} and {} diverge in `{}` at byte {}",
            self.replica_a, self.replica_b, self.artifact, self.byte_offset
        )?;
        if let Some(b) = self.block_number {
            write!(f, " (inside block {b})")?;
        }
        write!(
            f,
            ": {} vs {} (lengths {} vs {}); hint: {}",
            self.context_a, self.context_b, self.len_a, self.len_b, self.hint
        )
    }
}

fn hex_window(bytes: &[u8], offset: usize) -> String {
    if offset >= bytes.len() {
        return "<end>".to_owned();
    }
    let end = (offset + 16).min(bytes.len());
    bytes[offset..end].iter().map(|b| format!("{b:02x}")).collect()
}

fn read_u64(bytes: &[u8], offset: usize) -> Option<u64> {
    let end = offset.checked_add(8)?;
    let chunk: [u8; 8] = bytes.get(offset..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(chunk))
}

/// Decodes the single block whose encoding starts at `artifact`'s index
/// entry for block `num`.
fn decode_block_at(artifact: &Artifact, num: u64) -> Option<CommittedBlock> {
    let start = artifact.offset_of_block(num)?;
    let mut dec = Decoder::new(&artifact.bytes[start..]);
    CommittedBlock::decode(&mut dec).ok()
}

fn classify(
    a: &ReplicaArtifacts,
    b: &ReplicaArtifacts,
    art_a: &Artifact,
    art_b: &Artifact,
    offset: usize,
) -> RootCauseHint {
    let min_len = art_a.bytes.len().min(art_b.bytes.len());
    if offset == min_len {
        // Equal up to the end of the shorter artifact.
        return RootCauseHint::LengthMismatch;
    }
    // Same-multiset / different-order check on the diverging block.
    if art_a.name == BLOCK_STREAM {
        if let Some(num) = art_a.block_of_offset(offset) {
            if let (Some(ba), Some(bb)) =
                (decode_block_at(art_a, num), decode_block_at(art_b, num))
            {
                let ids_a: Vec<u64> = ba.block.txs.iter().map(|t| t.id.raw()).collect();
                let ids_b: Vec<u64> = bb.block.txs.iter().map(|t| t.id.raw()).collect();
                let mut sorted_a = ids_a.clone();
                let mut sorted_b = ids_b.clone();
                sorted_a.sort_unstable();
                sorted_b.sort_unstable();
                if ids_a != ids_b && sorted_a == sorted_b {
                    let workers_differ = a.validation_workers != b.validation_workers
                        || a.reorder_workers != b.reorder_workers;
                    return if workers_differ {
                        RootCauseHint::WorkerOrdering
                    } else {
                        RootCauseHint::HashMapIterationOrder
                    };
                }
            }
        }
    }
    // Timestamp heuristic on the aligned word containing the divergence.
    let aligned = offset & !7;
    if let (Some(x), Some(y)) = (read_u64(&art_a.bytes, aligned), read_u64(&art_b.bytes, aligned))
    {
        if x != y && x > TIME_LIKE_FLOOR && y > TIME_LIKE_FLOOR {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            if (hi - lo) as f64 <= hi as f64 * 0.01 {
                return RootCauseHint::TimestampLeakage;
            }
        }
    }
    RootCauseHint::Unknown
}

fn localize(
    a: &ReplicaArtifacts,
    b: &ReplicaArtifacts,
    art_a: &Artifact,
    art_b: &Artifact,
) -> Divergence {
    let min_len = art_a.bytes.len().min(art_b.bytes.len());
    let offset = (0..min_len)
        .find(|&i| art_a.bytes[i] != art_b.bytes[i])
        .unwrap_or(min_len);
    let block_number = art_a.block_of_offset(offset).or_else(|| art_b.block_of_offset(offset));
    Divergence {
        artifact: art_a.name,
        replica_a: a.label.clone(),
        replica_b: b.label.clone(),
        byte_offset: offset,
        len_a: art_a.bytes.len(),
        len_b: art_b.bytes.len(),
        block_number,
        context_a: hex_window(&art_a.bytes, offset),
        context_b: hex_window(&art_b.bytes, offset),
        hint: classify(a, b, art_a, art_b, offset),
    }
}

/// Compares every artifact of `a` against `b` in fixed order and returns
/// the first divergence, fully localized — or `None` when the replicas
/// are byte-identical.
pub fn compare_artifacts(a: &ReplicaArtifacts, b: &ReplicaArtifacts) -> Option<Divergence> {
    for art_a in &a.artifacts {
        let Some(art_b) = b.artifact(art_a.name) else {
            return Some(Divergence {
                artifact: art_a.name,
                replica_a: a.label.clone(),
                replica_b: b.label.clone(),
                byte_offset: 0,
                len_a: art_a.bytes.len(),
                len_b: 0,
                block_number: None,
                context_a: hex_window(&art_a.bytes, 0),
                context_b: "<missing>".to_owned(),
                hint: RootCauseHint::LengthMismatch,
            });
        };
        if art_a.bytes != art_b.bytes {
            return Some(localize(a, b, art_a, art_b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::CHAIN_FINGERPRINT;

    fn replica(label: &str, arts: Vec<Artifact>) -> ReplicaArtifacts {
        ReplicaArtifacts {
            label: label.to_owned(),
            validation_workers: 1,
            reorder_workers: 1,
            artifacts: arts,
        }
    }

    #[test]
    fn identical_replicas_produce_no_divergence() {
        let a = replica("a", vec![Artifact::flat(CHAIN_FINGERPRINT, vec![1, 2, 3])]);
        let b = replica("b", vec![Artifact::flat(CHAIN_FINGERPRINT, vec![1, 2, 3])]);
        assert!(compare_artifacts(&a, &b).is_none());
    }

    #[test]
    fn first_differing_byte_is_localized_with_context() {
        let mut bytes_b = vec![0u8; 64];
        bytes_b[37] = 0xff;
        let a = replica("a", vec![Artifact::flat(CHAIN_FINGERPRINT, vec![0u8; 64])]);
        let b = replica("b", vec![Artifact::flat(CHAIN_FINGERPRINT, bytes_b)]);
        let d = compare_artifacts(&a, &b).expect("must diverge");
        assert_eq!(d.byte_offset, 37);
        assert_eq!(d.artifact, CHAIN_FINGERPRINT);
        assert!(d.context_a.starts_with("00"));
        assert!(d.context_b.starts_with("ff"));
        // 16-byte window, two hex chars per byte.
        assert_eq!(d.context_a.len(), 32);
    }

    #[test]
    fn prefix_truncation_hints_length_mismatch() {
        let a = replica("a", vec![Artifact::flat(CHAIN_FINGERPRINT, vec![7u8; 40])]);
        let b = replica("b", vec![Artifact::flat(CHAIN_FINGERPRINT, vec![7u8; 25])]);
        let d = compare_artifacts(&a, &b).expect("must diverge");
        assert_eq!(d.hint, RootCauseHint::LengthMismatch);
        assert_eq!(d.byte_offset, 25);
        assert_eq!(d.context_b, "<end>");
    }

    #[test]
    fn near_equal_time_like_words_hint_timestamp_leakage() {
        let t = 1_722_000_000_000_000u64; // µs since epoch scale
        let mut bytes_a = vec![0u8; 32];
        let mut bytes_b = vec![0u8; 32];
        bytes_a[8..16].copy_from_slice(&t.to_le_bytes());
        bytes_b[8..16].copy_from_slice(&(t + 1_234).to_le_bytes());
        let a = replica("a", vec![Artifact::flat(CHAIN_FINGERPRINT, bytes_a)]);
        let b = replica("b", vec![Artifact::flat(CHAIN_FINGERPRINT, bytes_b)]);
        let d = compare_artifacts(&a, &b).expect("must diverge");
        assert_eq!(d.hint, RootCauseHint::TimestampLeakage);
    }

    #[test]
    fn small_value_differences_do_not_hint_timestamps() {
        let mut bytes_a = vec![0u8; 32];
        let mut bytes_b = vec![0u8; 32];
        bytes_a[8..16].copy_from_slice(&41u64.to_le_bytes());
        bytes_b[8..16].copy_from_slice(&42u64.to_le_bytes());
        let a = replica("a", vec![Artifact::flat(CHAIN_FINGERPRINT, bytes_a)]);
        let b = replica("b", vec![Artifact::flat(CHAIN_FINGERPRINT, bytes_b)]);
        let d = compare_artifacts(&a, &b).expect("must diverge");
        assert_eq!(d.hint, RootCauseHint::Unknown);
    }

    #[test]
    fn missing_artifact_is_reported() {
        let a = replica("a", vec![Artifact::flat(CHAIN_FINGERPRINT, vec![1])]);
        let b = replica("b", vec![]);
        let d = compare_artifacts(&a, &b).expect("must diverge");
        assert_eq!(d.hint, RootCauseHint::LengthMismatch);
        assert_eq!(d.context_b, "<missing>");
    }
}
