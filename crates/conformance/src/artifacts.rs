//! The replicated artifacts one conformance replica produces: everything
//! the determinism invariant promises will be byte-identical across
//! replicas that differ only in non-semantic knobs.

/// The reporting peer's full committed chain, genesis included: each
/// [`fabric_ledger::CommittedBlock`] in canonical storage encoding,
/// concatenated in chain order. Carries a block-offset index for
/// divergence localization.
pub const BLOCK_STREAM: &str = "block_stream";

/// SHA-256 over the reporting peer's final state, ascending-key
/// (engine-independent; see `fabric_statedb::StateStore::state_digest`).
pub const STATE_DIGEST: &str = "state_digest";

/// Chain height (`u64`) plus the tip block hash — the 40 bytes two
/// gossiping peers would exchange to decide whether they agree.
pub const CHAIN_FINGERPRINT: &str = "chain_fingerprint";

/// The fault injector's schedule digest: a hash of every fault decision
/// taken during the run, in order.
pub const SCHEDULE_DIGEST: &str = "schedule_digest";

/// The run's outcome counters (`fabric_common::TxStats`), serialized as
/// seven little-endian `u64`s in declaration order.
pub const TX_STATS: &str = "tx_stats";

/// One named replicated artifact: a byte string plus, for the block
/// stream, an index of where each block's encoding starts.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Which artifact this is (one of the module's name constants).
    pub name: &'static str,
    /// The replicated bytes.
    pub bytes: Vec<u8>,
    /// `(block number, start offset)` per encoded block, in stream
    /// order; empty for artifacts that are not block streams.
    pub block_offsets: Vec<(u64, usize)>,
}

impl Artifact {
    /// An artifact with no internal block structure.
    pub fn flat(name: &'static str, bytes: Vec<u8>) -> Self {
        Artifact { name, bytes, block_offsets: Vec::new() }
    }

    /// The number of the block whose encoding contains byte `offset`,
    /// when this artifact carries a block index.
    pub fn block_of_offset(&self, offset: usize) -> Option<u64> {
        self.block_offsets
            .iter()
            .rev()
            .find(|(_, start)| *start <= offset)
            .map(|(num, _)| *num)
    }

    /// The start offset of block `num`'s encoding, when indexed.
    pub fn offset_of_block(&self, num: u64) -> Option<usize> {
        self.block_offsets.iter().find(|(n, _)| *n == num).map(|(_, s)| *s)
    }
}

/// Everything one conformance replica replicated, plus the knob settings
/// that produced it (the comparator uses those to tell a hash-map-order
/// bug from a worker-count-dependent one).
#[derive(Debug, Clone)]
pub struct ReplicaArtifacts {
    /// The replica's spec label (e.g. `baseline`, `vw4-rw4`, `lsm`).
    pub label: String,
    /// Validation-pool worker count the replica ran with.
    pub validation_workers: usize,
    /// Reorder-stage worker count the replica ran with.
    pub reorder_workers: usize,
    /// The collected artifacts, in a fixed order.
    pub artifacts: Vec<Artifact>,
}

impl ReplicaArtifacts {
    /// Looks up an artifact by name.
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// Mutable lookup (corruption injection).
    pub fn artifact_mut(&mut self, name: &str) -> Option<&mut Artifact> {
        self.artifacts.iter_mut().find(|a| a.name == name)
    }

    /// Total replicated bytes across all artifacts.
    pub fn total_bytes(&self) -> usize {
        self.artifacts.iter().map(|a| a.bytes.len()).sum()
    }
}
