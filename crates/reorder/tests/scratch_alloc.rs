//! Asserts the scratch-reuse contract of `reorder_with`: once the
//! per-worker arena has warmed up, repeat calls perform **zero heap
//! allocations** on the non-fallback path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms the arena on every batch shape it will measure, then counts
//! allocations across further calls. Debug builds keep the algorithm's
//! `debug_assert!` consistency checks, some of which allocate on purpose,
//! so the exact zero is asserted in release (`cargo test --release`, as CI
//! runs this crate) and a small bound in debug.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
use fabric_common::{Key, Value, Version};
use fabric_reorder::{reorder_with, ReorderConfig, ReorderOutput, ReorderScratch};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn tx(reads: &[u64], writes: &[u64]) -> ReadWriteSet {
    let rk: Vec<Key> = reads.iter().map(|&i| Key::composite("K", i)).collect();
    let wk: Vec<Key> = writes.iter().map(|&i| Key::composite("K", i)).collect();
    rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
}

/// Batches of the same shape but fresh keys per batch, the way real cut
/// batches look to a warm worker: structure repeats, keys do not.
fn build_batches(make: impl Fn(u64) -> Vec<ReadWriteSet>, count: u64) -> Vec<Vec<ReadWriteSet>> {
    (0..count).map(make).collect()
}

fn measure(batches: &[Vec<ReadWriteSet>], cfg: &ReorderConfig) -> u64 {
    let ref_batches: Vec<Vec<&ReadWriteSet>> =
        batches.iter().map(|sets| sets.iter().collect()).collect();
    let mut scratch = ReorderScratch::new();
    let mut out = ReorderOutput::new();
    // Warm-up: every shape the measurement will replay.
    for refs in &ref_batches {
        reorder_with(refs, cfg, &mut scratch, &mut out);
    }
    let footprint = scratch.footprint();
    let before = allocations();
    for refs in &ref_batches {
        reorder_with(refs, cfg, &mut scratch, &mut out);
    }
    let allocated = allocations() - before;
    assert_eq!(scratch.footprint(), footprint, "steady state must not grow the arena");
    allocated
}

fn assert_steady_state(allocated: u64, what: &str) {
    if cfg!(debug_assertions) {
        // Debug builds run the algorithm's allocating debug_assert!
        // consistency checks (survivor-acyclicity re-derivation).
        assert!(allocated < 10_000, "{what}: {allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "{what}: steady-state reorder loop must not allocate");
    }
}

#[test]
fn steady_state_edgeless_batches_do_not_allocate() {
    // Disjoint transactions: zero conflict edges, the common low-contention
    // case — exercises interning, graph build, and the fast-path schedule.
    let batches = build_batches(
        |seed| (0..64).map(|i| tx(&[seed * 1000 + 2 * i], &[seed * 1000 + 2 * i + 1])).collect(),
        8,
    );
    let allocated = measure(&batches, &ReorderConfig::default());
    assert_steady_state(allocated, "edgeless");
}

#[test]
fn steady_state_acyclic_batches_do_not_allocate() {
    // Conflict chains (edges, no cycles): exercises Tarjan and the paper
    // schedule walk over the full graph.
    let batches = build_batches(
        |seed| (0..64).map(|i| tx(&[seed * 1000 + i], &[seed * 1000 + i + 1])).collect(),
        8,
    );
    let allocated = measure(&batches, &ReorderConfig::default());
    assert_steady_state(allocated, "acyclic");
}

#[test]
fn steady_state_cyclic_batches_do_not_allocate() {
    // A few small cycles per batch: exercises Johnson enumeration, greedy
    // cycle breaking, and the survivor-graph rebuild + remap.
    let batches = build_batches(
        |seed| {
            let mut sets = Vec::new();
            for c in 0..4u64 {
                let a = seed * 1000 + 10 * c;
                let b = a + 1;
                sets.push(tx(&[a], &[b]));
                sets.push(tx(&[b], &[a]));
            }
            for i in 0..32u64 {
                sets.push(tx(&[seed * 1000 + 500 + 2 * i], &[seed * 1000 + 500 + 2 * i + 1]));
            }
            sets
        },
        8,
    );
    let allocated = measure(&batches, &ReorderConfig::default());
    assert_steady_state(allocated, "cyclic");
}
