//! # fabric-reorder
//!
//! The Fabric++ transaction-reordering mechanism — Algorithm 1 of the paper
//! (Sharma et al., SIGMOD'19 §5.1) — as a standalone library. Given the
//! read/write sets of the transactions buffered for one block, it:
//!
//! 1. builds the read-write **conflict graph** (`Ti → Tj` iff `Ti` writes a
//!    key that `Tj` read) using the paper's bit-vector intersection test
//!    ([`graph`]);
//! 2. partitions it into strongly connected subgraphs with **Tarjan's
//!    algorithm** ([`tarjan`]);
//! 3. enumerates all elementary **conflict cycles** inside each non-trivial
//!    subgraph with **Johnson's algorithm** ([`johnson`]);
//! 4. **greedily aborts** the transactions appearing in the most cycles
//!    until none remain ([`cycle_break`]); and
//! 5. emits a **serializable schedule** of the survivors using the paper's
//!    source-chasing traversal ([`schedule`]).
//!
//! The top-level entry point is [`reorder`]. Ties are always broken toward
//! the smaller transaction index, matching the paper's determinism rule, so
//! the worked example of §5.1.1 (six transactions over ten keys) reproduces
//! its exact output: schedule `T5 ⇒ T1 ⇒ T3 ⇒ T4`, aborts `{T0, T2}`.
//!
//! The ordering service calls the mechanism once per cut batch, so the hot
//! path is engineered to be **allocation-free on repeat calls**:
//! [`reorder_with`] runs the identical algorithm over a caller-owned
//! [`ReorderScratch`] arena ([`scratch`]) — keys are interned to dense
//! `u32` ids once per batch, every graph/Tarjan/Johnson/schedule buffer is
//! pooled, Tarjan is skipped outright on an edgeless graph, and the cycles
//! of independent non-trivial SCCs can be enumerated on parallel threads
//! ([`ReorderConfig::enumeration_threads`]) without changing the output.
//!
//! Cycle enumeration is exponential in the worst case, so it is bounded by
//! [`ReorderConfig::max_cycles`]; past the bound the mechanism falls back to
//! SCC-condensation cycle breaking (repeatedly abort the highest-degree node
//! of each non-trivial SCC), which preserves the safety property — the
//! output schedule is always serializable — at some cost in aborts. The
//! paper's batch-cutting condition (d) (bounding unique keys per block)
//! exists precisely to keep this machinery cheap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle_break;
pub mod graph;
pub mod johnson;
pub mod schedule;
pub mod scratch;
pub mod tarjan;

use fabric_common::rwset::ReadWriteSet;

pub use graph::ConflictGraph;
pub use schedule::{count_valid_in_order, kahn_schedule, verify_serializable};
pub use scratch::{AbortScc, InternedBatch, ReorderOutput, ReorderScratch};

/// Minimum total node count across non-trivial SCCs before parallel cycle
/// enumeration is worth the thread hand-off; below this the sequential
/// path wins regardless of [`ReorderConfig::enumeration_threads`].
pub const PARALLEL_SCC_NODE_THRESHOLD: usize = 32;

/// Tuning for the reordering mechanism.
#[derive(Debug, Clone)]
pub struct ReorderConfig {
    /// Upper bound on enumerated cycles before falling back to
    /// SCC-condensation cycle breaking.
    pub max_cycles: usize,
    /// SCCs larger than this skip Johnson enumeration entirely and go
    /// straight to the fallback: a dense component of this size has far
    /// more elementary cycles than any budget, so enumerating first only
    /// burns orderer time.
    pub max_scc_for_enumeration: usize,
    /// Threads used to enumerate the cycles of independent non-trivial
    /// SCCs in parallel (1 = fully sequential, the default). The result
    /// is identical for every value: per-SCC enumerations are merged in
    /// deterministic SCC order, and the fallback decision — total cycles
    /// exceeding `max_cycles`, or any oversized SCC — depends only on the
    /// graph, not on thread scheduling.
    pub enumeration_threads: usize,
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig { max_cycles: 4096, max_scc_for_enumeration: 128, enumeration_threads: 1 }
    }
}

/// Outcome of reordering one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderResult {
    /// Indices (into the input slice) of the surviving transactions, in
    /// serializable commit order.
    pub schedule: Vec<usize>,
    /// Indices of transactions aborted to break conflict cycles, ascending.
    pub aborted: Vec<usize>,
    /// Provenance parallel to `aborted`: the conflict-cycle component
    /// (deterministic rank + size) that doomed each aborted transaction.
    pub abort_sccs: Vec<AbortScc>,
    /// Diagnostics.
    pub stats: ReorderStats,
}

/// Diagnostics from one reordering run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReorderStats {
    /// Edges in the conflict graph.
    pub edges: usize,
    /// Strongly connected subgraphs with more than one node.
    pub nontrivial_sccs: usize,
    /// Cycles enumerated (0 if the graph was already acyclic).
    pub cycles: usize,
    /// Whether the enumeration bound was hit and the fallback engaged.
    pub fallback_used: bool,
}

/// Algorithm 1: reorders `rwsets`, aborting cycle participants.
///
/// The returned schedule contains every input index exactly once across
/// `schedule` and `aborted`, and `schedule` is serializable: committing the
/// transactions in that order, each transaction's reads see exactly the
/// state its simulation saw (verified by [`schedule::verify_serializable`]
/// in this crate's tests for arbitrary inputs).
pub fn reorder(rwsets: &[&ReadWriteSet], config: &ReorderConfig) -> ReorderResult {
    let mut scratch = ReorderScratch::new();
    let mut out = ReorderOutput::new();
    reorder_with(rwsets, config, &mut scratch, &mut out);
    ReorderResult {
        schedule: out.schedule,
        aborted: out.aborted,
        abort_sccs: out.abort_sccs,
        stats: out.stats,
    }
}

/// Algorithm 1 over reusable buffers: like [`reorder`], but every
/// intermediate lives in the caller-owned `scratch` arena and the result
/// lands in `out`, so repeat calls on a warm arena perform no heap
/// allocation on the non-fallback path (asserted by this crate's
/// counting-allocator test).
///
/// This is the hot-path entry used by the ordering service's reorder
/// workers (one arena per worker). Output is identical to [`reorder`] for
/// any scratch state — the arena only carries capacity, never data —
/// including for any [`ReorderConfig::enumeration_threads`] setting.
pub fn reorder_with(
    rwsets: &[&ReadWriteSet],
    config: &ReorderConfig,
    scratch: &mut ReorderScratch,
    out: &mut ReorderOutput,
) {
    out.clear();
    let n = rwsets.len();
    if n == 0 {
        return;
    }

    let ReorderScratch {
        table,
        batch,
        index,
        graph,
        graph2,
        tarjan: tarjan_scratch,
        sccs,
        scc_order,
        johnson: johnson_scratch,
        cycles,
        greedy,
        scc_of,
        survivors,
        scheduled,
        local_order,
    } = scratch;

    // Step 1: intern the batch's keys to dense ids once, then build the
    // conflict graph over ids (no further Key hashing or cloning).
    batch.intern(table, rwsets);
    graph.rebuild_interned(batch, index);
    out.stats.edges = graph.edge_count();

    // Fast path: with no conflicts there is nothing to decompose, and the
    // paper's source-chasing walk over an edgeless graph degenerates to
    // pushing 0..n and reversing.
    if graph.edge_count() == 0 {
        out.schedule.extend((0..n).rev());
        return;
    }

    // Step 2: strongly connected subgraphs, then cycles within them.
    tarjan::scc_into(graph, tarjan_scratch, sccs, scc_order);
    // Node → SCC rank, for abort provenance (every node is in exactly
    // one component, so the map is total).
    scc_of.clear();
    scc_of.resize(n, u32::MAX);
    for (rank, &ci) in scc_order.iter().enumerate() {
        for &v in sccs.get(ci as usize) {
            scc_of[v] = rank as u32;
        }
    }
    let mut nontrivial_sccs = 0usize;
    let mut nontrivial_nodes = 0usize;
    let mut oversized = false;
    for &ci in scc_order.iter() {
        let len = sccs.get(ci as usize).len();
        if len > 1 {
            nontrivial_sccs += 1;
            nontrivial_nodes += len;
            oversized |= len > config.max_scc_for_enumeration;
        }
    }
    out.stats.nontrivial_sccs = nontrivial_sccs;

    if nontrivial_sccs == 0 {
        // Acyclic already: no aborts; schedule the graph we have.
        schedule::paper_schedule_into(graph, scheduled, &mut out.schedule);
        return;
    }

    cycles.clear();
    let mut overflow = oversized;
    if !overflow {
        let parallel = config.enumeration_threads > 1
            && nontrivial_sccs >= 2
            && nontrivial_nodes >= PARALLEL_SCC_NODE_THRESHOLD;
        if parallel {
            overflow = enumerate_sccs_parallel(graph, sccs, scc_order, config, cycles);
        } else {
            for &ci in scc_order.iter() {
                let scc = sccs.get(ci as usize);
                if scc.len() < 2 {
                    continue;
                }
                // `cycles` accumulates across SCCs, so capping its total
                // count is exactly the paper's shared decrementing budget.
                if johnson::elementary_cycles_into(
                    graph,
                    scc,
                    config.max_cycles,
                    johnson_scratch,
                    cycles,
                )
                .is_err()
                {
                    overflow = true;
                    break;
                }
            }
        }
    }

    if overflow {
        // Rare, already-degenerate path: allocating here is fine.
        out.stats.fallback_used = true;
        let mut fallback = cycle_break::break_by_scc_condensation(graph);
        out.aborted.append(&mut fallback);
    } else {
        out.stats.cycles = cycles.count();
        // Steps 3 & 4: count cycle membership, greedily abort.
        cycle_break::break_cycles_greedy_into(n, cycles, greedy, &mut out.aborted);
    }
    out.aborted.sort_unstable();
    for &i in &out.aborted {
        let rank = scc_of[i];
        let size = sccs.get(scc_order[rank as usize] as usize).len() as u32;
        out.abort_sccs.push(scratch::AbortScc { scc: rank, size });
    }

    // Step 5: rebuild the conflict graph over the survivors and emit the
    // serializable schedule.
    if out.aborted.is_empty() {
        // Nothing aborted: the survivor graph is the graph we built.
        schedule::paper_schedule_into(graph, scheduled, &mut out.schedule);
        return;
    }
    survivors.clear();
    survivors.extend((0..n).filter(|i| out.aborted.binary_search(i).is_err()));
    graph2.rebuild_interned_filtered(batch, index, survivors);
    debug_assert!(
        tarjan::strongly_connected_components(graph2).iter().all(|c| c.len() == 1),
        "survivor graph must be acyclic"
    );
    schedule::paper_schedule_into(graph2, scheduled, local_order);
    out.schedule.extend(local_order.iter().map(|&li| survivors[li]));
}

/// Enumerates the cycles of each non-trivial SCC on its own scoped thread
/// (round-robin over `enumeration_threads`), merging per-SCC results in
/// deterministic SCC order. Returns `true` if the fallback must engage.
///
/// Equivalence with the sequential shared-budget rule: sequentially, the
/// budget overflows iff some prefix sum of per-SCC cycle counts exceeds
/// `max_cycles` — and since counts are non-negative that holds iff the
/// *total* exceeds `max_cycles`. Each thread enumerates its SCCs with the
/// full budget (a lone SCC overflowing it implies the total does too), and
/// the final total is checked during the merge, so the decision — and on
/// success the merged cycle list — is identical to the sequential path.
fn enumerate_sccs_parallel(
    g: &ConflictGraph,
    sccs: &scratch::SegList,
    scc_order: &[u32],
    config: &ReorderConfig,
    out: &mut scratch::SegList,
) -> bool {
    let jobs: Vec<u32> = scc_order
        .iter()
        .copied()
        .filter(|&ci| sccs.get(ci as usize).len() > 1)
        .collect();
    let threads = config.enumeration_threads.min(jobs.len());
    let mut results: Vec<Option<Result<Vec<Vec<usize>>, johnson::CycleOverflow>>> = Vec::new();
    results.resize_with(jobs.len(), || None);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let jobs = &jobs;
                s.spawn(move || {
                    let mut found = Vec::new();
                    let mut j = t;
                    while j < jobs.len() {
                        let scc = sccs.get(jobs[j] as usize);
                        found.push((j, johnson::elementary_cycles(g, scc, config.max_cycles)));
                        j += threads;
                    }
                    found
                })
            })
            .collect();
        for h in handles {
            for (j, r) in h.join().expect("enumeration worker panicked") {
                results[j] = Some(r);
            }
        }
    });

    let mut total = 0usize;
    for r in &results {
        match r.as_ref().expect("every job produced a result") {
            Err(johnson::CycleOverflow) => return true,
            Ok(scc_cycles) => {
                if total + scc_cycles.len() > config.max_cycles {
                    return true;
                }
                total += scc_cycles.len();
                for cycle in scc_cycles {
                    for &v in cycle {
                        out.push(v);
                    }
                    out.end_seg();
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::{rwset_from_keys, RwSetBuilder};
    use fabric_common::{Key, Value, Version};

    fn key(i: usize) -> Key {
        Key::composite("K", i as u64)
    }

    /// Builds a transaction reading `reads` and writing `writes` (key
    /// indices), all reads at the genesis version — the setting of the
    /// paper's §5.1.1 example and appendix micro-benchmarks.
    fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
        let rk: Vec<Key> = reads.iter().map(|&i| key(i)).collect();
        let wk: Vec<Key> = writes.iter().map(|&i| key(i)).collect();
        rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
    }

    /// The six transactions of the paper's Table 3.
    fn paper_example() -> Vec<ReadWriteSet> {
        vec![
            tx(&[0, 1], &[2]),       // T0
            tx(&[3, 4, 5], &[0]),    // T1
            tx(&[6, 7], &[3, 9]),    // T2
            tx(&[2, 8], &[1, 4]),    // T3
            tx(&[9], &[5, 6, 8]),    // T4
            tx(&[], &[7]),           // T5
        ]
    }

    #[test]
    fn paper_walkthrough_exact_output() {
        // §5.1.1: aborts {T0, T2}; final schedule T5 ⇒ T1 ⇒ T3 ⇒ T4.
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert_eq!(result.aborted, vec![0, 2]);
        assert_eq!(result.schedule, vec![5, 1, 3, 4]);
        assert!(!result.stats.fallback_used);
        // Figure 4: two non-trivial strongly connected subgraphs; three
        // cycles total (c1, c2 in the green one; c3 in the red one).
        assert_eq!(result.stats.nontrivial_sccs, 2);
        assert_eq!(result.stats.cycles, 3);
    }

    #[test]
    fn paper_walkthrough_abort_provenance() {
        // Figure 4: T0 dies breaking the green subgraph {T0, T1, T3}
        // (rank 0, size 3); T2 the red one {T2, T4} (rank 1, size 2).
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert_eq!(result.aborted, vec![0, 2]);
        assert_eq!(
            result.abort_sccs,
            vec![AbortScc { scc: 0, size: 3 }, AbortScc { scc: 1, size: 2 }]
        );
    }

    #[test]
    fn abort_provenance_parallel_to_aborted_on_fallback() {
        // Dense clique with a tiny budget: fallback engages, yet every
        // aborted tx still names the (single) component it belonged to.
        let n = 12;
        let all: Vec<usize> = (0..n).collect();
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&all, &[i])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig { max_cycles: 8, ..Default::default() });
        assert!(result.stats.fallback_used);
        assert_eq!(result.abort_sccs.len(), result.aborted.len());
        for info in &result.abort_sccs {
            assert_eq!(*info, AbortScc { scc: 0, size: n as u32 });
        }
    }

    #[test]
    fn paper_schedule_is_serializable() {
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert!(verify_serializable(&refs, &result.schedule));
    }

    #[test]
    fn tables_1_and_2_scenario() {
        // Table 1: T1 writes k1; T2, T3, T4 read k1. Arrival order
        // T1⇒T2⇒T3⇒T4 leaves only T1 valid; the reordering must schedule
        // T1 last so all four commit (Table 2 exhibits one such order).
        let t1 = tx(&[], &[1]);
        let t2 = tx(&[1, 2], &[2]);
        let t3 = tx(&[1, 3], &[3]);
        let t4 = tx(&[1, 3], &[4]);
        let sets = [t1, t2, t3, t4];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();

        // Arrival order: exactly one valid (T1; the rest read stale k1).
        assert_eq!(count_valid_in_order(&refs, &[0, 1, 2, 3]), 1);

        let result = reorder(&refs, &ReorderConfig::default());
        assert!(result.aborted.is_empty(), "no cycles here");
        assert_eq!(result.schedule.len(), 4);
        assert!(verify_serializable(&refs, &result.schedule));
        assert_eq!(count_valid_in_order(&refs, &result.schedule), 4);
        // T1 (index 0) must be scheduled after every reader of k1.
        // T3 writes k3 which T4 reads, so T4 must precede T3 as well.
        let pos = |i: usize| result.schedule.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) > pos(1) && pos(0) > pos(2) && pos(0) > pos(3));
        assert!(pos(3) < pos(2));
    }

    #[test]
    fn empty_input() {
        let result = reorder(&[], &ReorderConfig::default());
        assert!(result.schedule.is_empty());
        assert!(result.aborted.is_empty());
    }

    #[test]
    fn single_transaction() {
        let t = tx(&[0], &[0]);
        let refs = [&t];
        let result = reorder(&refs, &ReorderConfig::default());
        assert_eq!(result.schedule, vec![0]);
        assert!(result.aborted.is_empty());
    }

    #[test]
    fn self_conflict_is_not_a_cycle() {
        // A transaction reading and writing the same key conflicts with
        // itself only trivially; it must not be aborted.
        let sets = [tx(&[0], &[0]), tx(&[1], &[1])];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert!(result.aborted.is_empty());
        assert_eq!(result.schedule.len(), 2);
    }

    #[test]
    fn two_cycle_aborts_exactly_one() {
        // T0 reads k0 writes k1; T1 reads k1 writes k0: a 2-cycle.
        let sets = [tx(&[0], &[1]), tx(&[1], &[0])];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert_eq!(result.aborted.len(), 1);
        assert_eq!(result.aborted, vec![0], "tie broken toward smaller index");
        assert_eq!(result.schedule, vec![1]);
    }

    #[test]
    fn disjoint_transactions_all_survive() {
        let sets: Vec<ReadWriteSet> =
            (0..20).map(|i| tx(&[2 * i], &[2 * i + 1])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert!(result.aborted.is_empty());
        assert_eq!(result.schedule.len(), 20);
        assert!(verify_serializable(&refs, &result.schedule));
        assert_eq!(result.stats.edges, 0);
    }

    #[test]
    fn long_cycle_aborts_one_transaction() {
        // Appendix B.2 workload shape: T[r(k0),w(k1)], T[r(k1),w(k2)],
        // ..., T[r(kn-1),w(k0)] — one big cycle; aborting any single
        // transaction breaks it.
        let n = 50;
        let sets: Vec<ReadWriteSet> =
            (0..n).map(|i| tx(&[i], &[(i + 1) % n])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert_eq!(result.aborted.len(), 1);
        assert_eq!(result.schedule.len(), n - 1);
        assert!(verify_serializable(&refs, &result.schedule));
    }

    #[test]
    fn fallback_still_produces_serializable_schedule() {
        // A dense clique of conflicting transactions has exponentially many
        // cycles; with a tiny budget the fallback must engage and still
        // produce a serializable schedule.
        let n = 12;
        // Every tx reads every key and writes its own: complete conflict.
        let all: Vec<usize> = (0..n).collect();
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&all, &[i])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig { max_cycles: 8, ..Default::default() });
        assert!(result.stats.fallback_used);
        assert!(!result.schedule.is_empty());
        assert!(verify_serializable(&refs, &result.schedule));
        assert_eq!(result.schedule.len() + result.aborted.len(), n);
    }

    #[test]
    fn schedule_and_aborted_partition_input() {
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        let mut all: Vec<usize> = result.schedule.clone();
        all.extend(&result.aborted);
        all.sort_unstable();
        assert_eq!(all, (0..sets.len()).collect::<Vec<_>>());
    }

    #[test]
    fn reordering_beats_arrival_order_on_interleaved_workload() {
        // Appendix B.1: writers of k0..k2 before readers of k0..k2 in
        // arrival order → readers die; reordered → everything commits.
        let sets = [
            tx(&[], &[0]),
            tx(&[], &[1]),
            tx(&[], &[2]),
            tx(&[0], &[]),
            tx(&[1], &[]),
            tx(&[2], &[]),
        ];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let arrival: Vec<usize> = (0..6).collect();
        assert_eq!(count_valid_in_order(&refs, &arrival), 3);
        let result = reorder(&refs, &ReorderConfig::default());
        assert_eq!(count_valid_in_order(&refs, &result.schedule), 6);
    }

    #[test]
    fn deterministic_across_runs() {
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let a = reorder(&refs, &ReorderConfig::default());
        let b = reorder(&refs, &ReorderConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn warm_scratch_matches_fresh_reorder_across_varied_batches() {
        // One arena reused across batches of different shape and size must
        // produce exactly what a fresh call produces each time.
        let batches: Vec<Vec<ReadWriteSet>> = vec![
            paper_example(),
            (0..20).map(|i| tx(&[2 * i], &[2 * i + 1])).collect(),
            (0..50).map(|i| tx(&[i], &[(i + 1) % 50])).collect(),
            vec![tx(&[0], &[1]), tx(&[1], &[0])],
            paper_example(),
        ];
        let cfg = ReorderConfig::default();
        let mut scratch = ReorderScratch::new();
        let mut out = ReorderOutput::new();
        for sets in &batches {
            let refs: Vec<&ReadWriteSet> = sets.iter().collect();
            reorder_with(&refs, &cfg, &mut scratch, &mut out);
            let fresh = reorder(&refs, &cfg);
            assert_eq!(out.schedule, fresh.schedule);
            assert_eq!(out.aborted, fresh.aborted);
            assert_eq!(out.abort_sccs, fresh.abort_sccs);
            assert_eq!(out.stats, fresh.stats);
        }
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        // 24 disjoint 2-cycles (48 nodes in non-trivial SCCs) plus the
        // paper example: crosses PARALLEL_SCC_NODE_THRESHOLD so threads
        // actually engage.
        let mut sets: Vec<ReadWriteSet> = Vec::new();
        for c in 0..24usize {
            sets.push(tx(&[100 + 2 * c], &[100 + 2 * c + 1]));
            sets.push(tx(&[100 + 2 * c + 1], &[100 + 2 * c]));
        }
        sets.extend(paper_example());
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let seq = reorder(&refs, &ReorderConfig::default());
        for threads in [2, 4, 8] {
            let par = reorder(
                &refs,
                &ReorderConfig { enumeration_threads: threads, ..Default::default() },
            );
            assert_eq!(par, seq, "threads={threads} must not change the result");
        }
    }

    #[test]
    fn parallel_enumeration_matches_sequential_on_overflow() {
        // Two dense cliques: enough cycles that a small budget overflows
        // and the fallback engages — identically on both paths.
        let mut sets: Vec<ReadWriteSet> = Vec::new();
        for block in 0..2usize {
            let keys: Vec<usize> = (0..20).map(|k| 1000 * block + k).collect();
            for i in 0..20usize {
                sets.push(tx(&keys, &[1000 * block + i]));
            }
        }
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let cfg_seq = ReorderConfig { max_cycles: 64, ..Default::default() };
        let seq = reorder(&refs, &cfg_seq);
        assert!(seq.stats.fallback_used);
        let par = reorder(
            &refs,
            &ReorderConfig { max_cycles: 64, enumeration_threads: 4, ..Default::default() },
        );
        assert_eq!(par, seq);
    }

    #[test]
    fn zero_edge_fast_path_matches_general_walk() {
        // The fast path must emit exactly what the paper's walk emits on
        // an edgeless graph: (0..n) reversed.
        let sets: Vec<ReadWriteSet> = (0..7).map(|i| tx(&[2 * i], &[2 * i + 1])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        assert_eq!(result.schedule, (0..7).rev().collect::<Vec<_>>());
        assert!(verify_serializable(&refs, &result.schedule));
    }

    #[test]
    fn read_your_own_write_transactions() {
        // rwset where a tx both reads and writes overlapping keys mixed
        // with others; regression guard for index bookkeeping.
        let mut b0 = RwSetBuilder::new();
        b0.record_read(key(0), Some(Version::GENESIS));
        b0.record_write(key(0), Some(Value::from_i64(5)));
        b0.record_write(key(1), Some(Value::from_i64(5)));
        let t0 = b0.build();
        let t1 = tx(&[1], &[2]);
        let t2 = tx(&[2], &[0]);
        let sets = [t0, t1, t2];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let result = reorder(&refs, &ReorderConfig::default());
        // Cycle: T0 →(k1) T1? T0 writes k1, T1 reads k1: T0→T1.
        // T1 writes k2, T2 reads k2: T1→T2. T2 writes k0, T0 reads k0:
        // T2→T0. A 3-cycle → exactly one abort.
        assert_eq!(result.aborted.len(), 1);
        assert!(verify_serializable(&refs, &result.schedule));
    }
}
