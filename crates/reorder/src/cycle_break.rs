//! Cycle breaking (paper §5.1.1 steps 3 & 4).
//!
//! Step 3 tabulates, per transaction, the cycles it participates in (the
//! paper's Table 4); step 4 "greedily remove\[s\] the transaction from S'
//! that occurs in most cycles, until all cycles have been resolved", with
//! ties broken toward the smaller transaction index so the mechanism is
//! deterministic.
//!
//! The paper notes the result is not guaranteed to abort a *minimal* set —
//! that would be the NP-hard feedback vertex set problem — but is a "very
//! lightweight way to generate a serializable schedule with a small number
//! of aborts".
//!
//! [`break_by_scc_condensation`] is the overflow fallback: when cycle
//! enumeration exceeds its budget, repeatedly abort the highest-degree node
//! of each non-trivial SCC until the graph is acyclic. More aborts, same
//! safety guarantee.

use crate::graph::ConflictGraph;
use crate::scratch::{GreedyScratch, SegList};
use crate::tarjan::strongly_connected_components;

/// Greedy max-participation cycle breaking over enumerated `cycles`
/// (each a vertex list). Returns the aborted node indices, unsorted.
pub fn break_cycles_greedy(n: usize, cycles: &[Vec<usize>]) -> Vec<usize> {
    let mut set = SegList::default();
    for cycle in cycles {
        for &v in cycle {
            set.push(v);
        }
        set.end_seg();
    }
    let mut scratch = GreedyScratch::default();
    let mut aborted = Vec::new();
    break_cycles_greedy_into(n, &set, &mut scratch, &mut aborted);
    aborted
}

/// Allocation-free core of [`break_cycles_greedy`]: cycles come in as
/// segments of a [`SegList`], aborted node indices are appended to
/// `aborted` (unsorted).
pub(crate) fn break_cycles_greedy_into(
    n: usize,
    cycles: &SegList,
    scratch: &mut GreedyScratch,
    aborted: &mut Vec<usize>,
) {
    let n_cycles = cycles.count();
    if n_cycles == 0 {
        return;
    }
    let GreedyScratch { counts, membership, alive } = scratch;
    // counts[v] = number of *alive* cycles containing v (paper Table 4).
    counts.clear();
    counts.resize(n, 0);
    // membership[v] = ids of cycles containing v.
    if membership.len() < n {
        membership.resize_with(n, Vec::new);
    }
    for m in &mut membership[..n] {
        m.clear();
    }
    for cid in 0..n_cycles {
        for &v in cycles.get(cid) {
            counts[v] += 1;
            membership[v].push(cid as u32);
        }
    }
    alive.clear();
    alive.resize(n_cycles, true);
    let mut alive_count = n_cycles;

    while alive_count > 0 {
        // popMax with smallest-index tie-break.
        let (victim, &max) = counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .expect("counts non-empty");
        debug_assert!(max > 0, "alive cycles imply a positive count");
        aborted.push(victim);
        for &cid in &membership[victim] {
            let cid = cid as usize;
            if alive[cid] {
                alive[cid] = false;
                alive_count -= 1;
                for &v in cycles.get(cid) {
                    counts[v] -= 1;
                }
            }
        }
        debug_assert_eq!(counts[victim], 0);
    }
}

/// Fallback breaker: abort highest-degree nodes until no non-trivial SCC
/// remains. Deterministic (degree desc, then index asc). Returns the
/// aborted node indices, unsorted.
///
/// To keep the orderer's per-block cost low on dense batches, each round
/// removes the top `⌈|scc|/8⌉` highest-degree members of every non-trivial
/// SCC before recomputing components (removing one at a time would make
/// the number of Tarjan passes linear in the abort count).
pub fn break_by_scc_condensation(g: &ConflictGraph) -> Vec<usize> {
    let n = g.len();
    let mut removed = vec![false; n];
    let mut aborted = Vec::new();

    loop {
        // SCCs of the graph induced on the surviving nodes.
        let sccs = induced_sccs(g, &removed);
        let mut progressed = false;
        for scc in sccs {
            if scc.len() <= 1 {
                continue;
            }
            // Abort the members with the largest induced degree
            // (ties toward the smaller index).
            let mut by_degree: Vec<(usize, usize)> = scc
                .iter()
                .map(|&v| (induced_degree(g, &removed, v), v))
                .collect();
            by_degree.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            // A component whose maximum degree is 2 is a simple cycle: one
            // removal breaks it. Denser components take a batch.
            let take = if by_degree[0].0 <= 2 { 1 } else { scc.len().div_ceil(8) };
            for &(_, victim) in by_degree.iter().take(take) {
                removed[victim] = true;
                aborted.push(victim);
            }
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    aborted
}

fn induced_degree(g: &ConflictGraph, removed: &[bool], v: usize) -> usize {
    g.children(v).iter().filter(|&&w| !removed[w]).count()
        + g.parents(v).iter().filter(|&&w| !removed[w]).count()
}

/// SCCs of the subgraph induced on `!removed` nodes.
fn induced_sccs(g: &ConflictGraph, removed: &[bool]) -> Vec<Vec<usize>> {
    // Build a compacted graph over survivors and run Tarjan on it.
    let n = g.len();
    let survivors: Vec<usize> = (0..n).filter(|&v| !removed[v]).collect();
    let mut local = vec![usize::MAX; n];
    for (li, &v) in survivors.iter().enumerate() {
        local[v] = li;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); survivors.len()];
    for (li, &v) in survivors.iter().enumerate() {
        for &w in g.children(v) {
            if !removed[w] {
                adj[li].push(local[w]);
            }
        }
    }
    let compact = ConflictGraph::from_adjacency(adj);
    strongly_connected_components(&compact)
        .into_iter()
        .map(|scc| scc.into_iter().map(|li| survivors[li]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
    use fabric_common::{Key, Value, Version};

    fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
        let rk: Vec<Key> = reads.iter().map(|&i| Key::composite("K", i as u64)).collect();
        let wk: Vec<Key> = writes.iter().map(|&i| Key::composite("K", i as u64)).collect();
        rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
    }

    fn graph_of(txs: &[ReadWriteSet]) -> ConflictGraph {
        let refs: Vec<&ReadWriteSet> = txs.iter().collect();
        ConflictGraph::build(&refs)
    }

    #[test]
    fn paper_table_4_walkthrough() {
        // Cycles: c1 = {T0,T3}, c2 = {T0,T1,T3}, c3 = {T2,T4}.
        // Counts: T0=2, T1=1, T2=1, T3=2, T4=1, T5=0.
        // Greedy: T0 and T3 tie at 2 → pick T0 (smaller index); that kills
        // c1 and c2. Then T2 and T4 tie at 1 → pick T2; kills c3.
        let cycles = vec![vec![0, 3], vec![0, 3, 1], vec![2, 4]];
        let mut aborted = break_cycles_greedy(6, &cycles);
        aborted.sort_unstable();
        assert_eq!(aborted, vec![0, 2]);
    }

    #[test]
    fn no_cycles_no_aborts() {
        assert!(break_cycles_greedy(10, &[]).is_empty());
    }

    #[test]
    fn hub_transaction_aborted_first() {
        // Node 9 sits on every cycle; aborting it alone resolves all.
        let cycles = vec![vec![9, 1], vec![9, 2], vec![9, 3, 4], vec![9, 5]];
        assert_eq!(break_cycles_greedy(10, &cycles), vec![9]);
    }

    #[test]
    fn overlapping_cycles_resolved_incrementally() {
        // Chain of overlapping 2-cycles: {0,1},{1,2},{2,3}.
        // Counts: 0=1, 1=2, 2=2, 3=1 → abort 1 (kills first two), then
        // {2,3} remains with counts 2=1, 3=1 → abort 2.
        let cycles = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let mut aborted = break_cycles_greedy(4, &cycles);
        aborted.sort_unstable();
        assert_eq!(aborted, vec![1, 2]);
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let cycles = vec![vec![5, 7]];
        assert_eq!(break_cycles_greedy(8, &cycles), vec![5]);
    }

    #[test]
    fn scc_condensation_breaks_all_cycles() {
        let n = 10;
        let all_keys: Vec<usize> = (0..n).collect();
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&all_keys, &[i])).collect();
        let g = graph_of(&sets);
        let aborted = break_by_scc_condensation(&g);
        // Verify acyclicity of the survivors.
        let mut removed = vec![false; n];
        for &v in &aborted {
            removed[v] = true;
        }
        for scc in super::induced_sccs(&g, &removed) {
            assert_eq!(scc.len(), 1);
        }
        // On a complete digraph all but one node must go.
        assert_eq!(aborted.len(), n - 1);
    }

    #[test]
    fn scc_condensation_on_acyclic_graph_aborts_nothing() {
        let sets = vec![tx(&[], &[0]), tx(&[0], &[1]), tx(&[1], &[])];
        let g = graph_of(&sets);
        assert!(break_by_scc_condensation(&g).is_empty());
    }

    #[test]
    fn scc_condensation_single_long_cycle() {
        let n = 20;
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&[i], &[(i + 1) % n])).collect();
        let g = graph_of(&sets);
        let aborted = break_by_scc_condensation(&g);
        assert_eq!(aborted.len(), 1, "one abort breaks a simple cycle");
    }
}
