//! Serializable schedule generation (paper §5.1.1 step 5) and schedule
//! verification.
//!
//! Given the cycle-free conflict graph of the surviving transactions, the
//! paper's algorithm alternates two parts "until all nodes are scheduled:
//! (a) the locating of the source node in the current subgraph and (b) the
//! scheduling of all nodes that are reachable from that source". Sources
//! (nodes whose writes feed others' reads) are scheduled *last*; the
//! collected order is inverted at the end. The result commits every reader
//! before the writer it conflicts with.

use std::collections::HashMap;

use fabric_common::rwset::ReadWriteSet;
use fabric_common::{Key, Version};

use crate::graph::ConflictGraph;

/// The paper's schedule construction (Algorithm 1 lines 43–71) over an
/// acyclic conflict graph. Returns node indices in commit order.
///
/// Determinism: the walk starts at the smallest-index unscheduled node, and
/// parent/child lists are iterated in ascending index order — the paper's
/// "smaller subscript" rule — so the worked example yields exactly
/// `T5 ⇒ T1 ⇒ T3 ⇒ T4`.
///
/// # Panics
/// Panics if the graph contains a cycle (the caller must break cycles
/// first); detected via a step bound.
pub fn paper_schedule(g: &ConflictGraph) -> Vec<usize> {
    let mut scheduled = Vec::new();
    let mut order = Vec::new();
    paper_schedule_into(g, &mut scheduled, &mut order);
    order
}

/// Allocation-free core of [`paper_schedule`]: `scheduled` is a reusable
/// scratch vector, the commit order is written into `order` (cleared
/// first).
pub(crate) fn paper_schedule_into(
    g: &ConflictGraph,
    scheduled: &mut Vec<bool>,
    order: &mut Vec<usize>,
) {
    let n = g.len();
    scheduled.clear();
    scheduled.resize(n, false);
    order.clear();
    if n == 0 {
        return;
    }

    let mut start_node = 0usize;
    let mut next_probe = 0usize; // cursor for getNextNode()
    // In a DAG each iteration either schedules a node or strictly ascends
    // toward a source; 2·n² + n + 1 comfortably bounds the walk.
    let mut fuel = 2 * n * n + n + 1;

    while order.len() < n {
        fuel -= 1;
        assert!(fuel > 0, "schedule walk did not terminate: graph has a cycle");

        if scheduled[start_node] {
            // getNextNode(): smallest unscheduled node.
            while scheduled[next_probe] {
                next_probe += 1;
            }
            start_node = next_probe;
            continue;
        }
        // Traverse upwards to find a source.
        let mut add_node = true;
        for &p in g.parents(start_node) {
            if !scheduled[p] {
                start_node = p;
                add_node = false;
                break;
            }
        }
        if add_node {
            // A source has been found: schedule it, then walk downwards.
            scheduled[start_node] = true;
            order.push(start_node);
            for &c in g.children(start_node) {
                if !scheduled[c] {
                    start_node = c;
                    break;
                }
            }
        }
    }

    order.reverse();
}

/// Alternative schedule construction: Kahn's algorithm over the acyclic
/// conflict graph, emitting readers before the writers that would
/// invalidate them (for every edge `w → r`, `r` is scheduled first).
///
/// Provided as an ablation partner for [`paper_schedule`]: both emit a
/// serializable order (a property test asserts this for arbitrary DAGs),
/// but Kahn is the textbook `O(N + E)` construction while the paper's
/// source-chasing walk is quadratic in the worst case. The pipeline uses
/// the paper's algorithm for fidelity; benchmarks compare the two.
///
/// Determinism: among ready nodes, the smallest index is emitted first.
///
/// # Panics
/// Panics if the graph contains a cycle.
pub fn kahn_schedule(g: &ConflictGraph) -> Vec<usize> {
    let n = g.len();
    // A node is "ready" when all of its children (its readers) are already
    // scheduled — children must precede parents in the commit order.
    let mut unscheduled_children: Vec<usize> = (0..n).map(|i| g.children(i).len()).collect();
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| unscheduled_children[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = ready.pop() {
        order.push(v);
        for &p in g.parents(v) {
            unscheduled_children[p] -= 1;
            if unscheduled_children[p] == 0 {
                ready.push(std::cmp::Reverse(p));
            }
        }
    }
    assert_eq!(order.len(), n, "kahn walk did not cover the graph: cycle present");
    order
}

/// Verifies the defining property of a serializable schedule over these
/// read/write sets: for every conflict edge `w → r` (w writes a key r
/// read), `r` commits before `w`. Transactions absent from `order` are
/// ignored (they were aborted).
pub fn verify_serializable(rwsets: &[&ReadWriteSet], order: &[usize]) -> bool {
    let g = ConflictGraph::build(rwsets);
    let mut pos: HashMap<usize, usize> = HashMap::with_capacity(order.len());
    for (p, &idx) in order.iter().enumerate() {
        if pos.insert(idx, p).is_some() {
            return false; // duplicate entry
        }
    }
    for (w, r) in g.edges() {
        if let (Some(&pw), Some(&pr)) = (pos.get(&w), pos.get(&r)) {
            if pr > pw {
                return false;
            }
        }
    }
    true
}

/// Sequentially validates `order` the way a Fabric peer would, counting how
/// many transactions commit (the metric of the paper's appendix
/// micro-benchmarks, Figures 15 and 16).
///
/// Assumes every key starts at [`Version::GENESIS`] — the appendix setting,
/// where all transactions simulated against the same initial state. A
/// transaction is valid iff every read's recorded version matches the
/// current state; a valid transaction's writes install fresh versions.
pub fn count_valid_in_order(rwsets: &[&ReadWriteSet], order: &[usize]) -> usize {
    let mut current: HashMap<&Key, Version> = HashMap::new();
    let mut valid = 0usize;
    for (pos, &idx) in order.iter().enumerate() {
        let rw = rwsets[idx];
        let ok = rw.reads.entries().iter().all(|e| {
            let cur = current.get(&e.key).copied().unwrap_or(Version::GENESIS);
            e.version == Some(cur)
        });
        if ok {
            valid += 1;
            for e in rw.writes.entries() {
                current.insert(&e.key, Version::new(1, pos as u32));
            }
        }
    }
    valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::Value;
    use proptest::prelude::*;

    fn key(i: usize) -> Key {
        Key::composite("K", i as u64)
    }

    fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
        let rk: Vec<Key> = reads.iter().map(|&i| key(i)).collect();
        let wk: Vec<Key> = writes.iter().map(|&i| key(i)).collect();
        rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
    }

    #[test]
    fn paper_figure_5_schedule() {
        // Cycle-free graph over survivors {T1, T3, T4, T5} of the worked
        // example. Local indices: T1=0, T3=1, T4=2, T5=3.
        // Edges: T3→T1, T4→T1, T4→T3 → local (1,0), (2,0), (2,1).
        let sets = [
            tx(&[3, 4, 5], &[0]), // T1
            tx(&[2, 8], &[1, 4]), // T3
            tx(&[9], &[5, 6, 8]), // T4
            tx(&[], &[7]),        // T5
        ];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let g = ConflictGraph::build(&refs);
        assert_eq!(g.edges(), vec![(1, 0), (2, 0), (2, 1)]);
        let order = paper_schedule(&g);
        // Paper: T5 ⇒ T1 ⇒ T3 ⇒ T4 → local 3, 0, 1, 2.
        assert_eq!(order, vec![3, 0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(paper_schedule(&ConflictGraph::build(&[])).is_empty());
        let t = tx(&[0], &[1]);
        let refs = [&t];
        assert_eq!(paper_schedule(&ConflictGraph::build(&refs)), vec![0]);
    }

    #[test]
    fn no_conflicts_keeps_all() {
        let sets: Vec<ReadWriteSet> = (0..5).map(|i| tx(&[2 * i], &[2 * i + 1])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let order = paper_schedule(&ConflictGraph::build(&refs));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert!(verify_serializable(&refs, &order));
    }

    #[test]
    #[should_panic(expected = "graph has a cycle")]
    fn cyclic_graph_panics() {
        let sets = [tx(&[0], &[1]), tx(&[1], &[0])];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        paper_schedule(&ConflictGraph::build(&refs));
    }

    #[test]
    fn verify_rejects_reader_after_writer() {
        let writer = tx(&[], &[0]);
        let reader = tx(&[0], &[]);
        let sets = [writer, reader];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        assert!(verify_serializable(&refs, &[1, 0])); // reader first: fine
        assert!(!verify_serializable(&refs, &[0, 1])); // writer first: stale
    }

    #[test]
    fn verify_rejects_duplicates() {
        let t = tx(&[0], &[1]);
        let refs = [&t];
        assert!(!verify_serializable(&refs, &[0, 0]));
    }

    #[test]
    fn verify_ignores_aborted() {
        let sets = [tx(&[0], &[1]), tx(&[1], &[0])]; // 2-cycle
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        // Either alone is serializable.
        assert!(verify_serializable(&refs, &[0]));
        assert!(verify_serializable(&refs, &[1]));
    }

    #[test]
    fn count_valid_matches_table_1_and_2() {
        // Table 1: T1 writes k1 first, T2–T4 read it → 1 valid.
        // Table 2 order T4⇒T2⇒T3⇒T1 → 4 valid.
        let t1 = tx(&[], &[1]);
        let t2 = tx(&[1, 2], &[2]);
        let t3 = tx(&[1, 3], &[3]);
        let t4 = tx(&[1, 3], &[4]);
        let sets = [t1, t2, t3, t4];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        assert_eq!(count_valid_in_order(&refs, &[0, 1, 2, 3]), 1);
        assert_eq!(count_valid_in_order(&refs, &[3, 1, 2, 0]), 4);
    }

    #[test]
    fn count_valid_empty_order() {
        let t = tx(&[0], &[1]);
        let refs = [&t];
        assert_eq!(count_valid_in_order(&refs, &[]), 0);
    }

    #[test]
    fn kahn_matches_paper_on_figure_5() {
        let sets = [
            tx(&[3, 4, 5], &[0]), // T1 (local 0)
            tx(&[2, 8], &[1, 4]), // T3 (local 1)
            tx(&[9], &[5, 6, 8]), // T4 (local 2)
            tx(&[], &[7]),        // T5 (local 3)
        ];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let g = ConflictGraph::build(&refs);
        let order = kahn_schedule(&g);
        assert!(verify_serializable(&refs, &order));
        assert_eq!(order.len(), 4);
        // Kahn's tie-breaking differs from the paper's walk, but the
        // partial order constraints are identical.
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1), "T1 before T3");
        assert!(pos(1) < pos(2), "T3 before T4");
    }

    #[test]
    #[should_panic(expected = "cycle present")]
    fn kahn_panics_on_cycle() {
        let sets = [tx(&[0], &[1]), tx(&[1], &[0])];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        kahn_schedule(&ConflictGraph::build(&refs));
    }

    proptest! {
        /// Kahn and the paper's walk both emit serializable orders over
        /// the same acyclic graphs (the greedy breaker makes them acyclic).
        #[test]
        fn kahn_and_paper_schedule_both_serializable(batch in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..10, 0..4),
                proptest::collection::vec(0usize..10, 0..4),
            ),
            1..12,
        )) {
            let sets: Vec<ReadWriteSet> = batch.iter().map(|(r, w)| tx(r, w)).collect();
            let refs: Vec<&ReadWriteSet> = sets.iter().collect();
            let result = crate::reorder(&refs, &crate::ReorderConfig::default());
            let survivor_sets: Vec<&ReadWriteSet> =
                result.schedule.iter().map(|&i| refs[i]).collect();
            let g = ConflictGraph::build(&survivor_sets);
            let kahn_local = kahn_schedule(&g);
            let kahn_global: Vec<usize> =
                kahn_local.into_iter().map(|i| result.schedule[i]).collect();
            prop_assert!(verify_serializable(&refs, &kahn_global));
            prop_assert_eq!(
                count_valid_in_order(&refs, &kahn_global),
                count_valid_in_order(&refs, &result.schedule),
                "both schedules commit every survivor"
            );
        }

        /// For arbitrary acyclic-izable inputs, the full pipeline property:
        /// schedule from `paper_schedule` over any DAG obtained by greedy
        /// breaking is serializable, and all scheduled transactions commit
        /// under sequential validation (with genesis-version reads).
        #[test]
        fn schedule_always_serializable(batch in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..10, 0..4),
                proptest::collection::vec(0usize..10, 0..4),
            ),
            1..12,
        )) {
            let sets: Vec<ReadWriteSet> = batch.iter().map(|(r, w)| tx(r, w)).collect();
            let refs: Vec<&ReadWriteSet> = sets.iter().collect();
            let result = crate::reorder(&refs, &crate::ReorderConfig::default());
            prop_assert!(verify_serializable(&refs, &result.schedule));
            // With genesis reads and conflict-free order, every scheduled
            // transaction validates.
            prop_assert_eq!(
                count_valid_in_order(&refs, &result.schedule),
                result.schedule.len()
            );
        }

        /// The reordered schedule never commits fewer transactions than the
        /// arrival order (the paper's headline property).
        #[test]
        fn reorder_never_worse_than_arrival(batch in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..8, 0..3),
                proptest::collection::vec(0usize..8, 0..3),
            ),
            1..10,
        )) {
            let sets: Vec<ReadWriteSet> = batch.iter().map(|(r, w)| tx(r, w)).collect();
            let refs: Vec<&ReadWriteSet> = sets.iter().collect();
            let arrival: Vec<usize> = (0..refs.len()).collect();
            let arrival_valid = count_valid_in_order(&refs, &arrival);
            let result = crate::reorder(&refs, &crate::ReorderConfig::default());
            let reordered_valid = count_valid_in_order(&refs, &result.schedule);
            prop_assert!(
                reordered_valid >= arrival_valid,
                "reordered {} < arrival {}", reordered_valid, arrival_valid
            );
        }
    }
}
