//! Reusable scratch buffers for the reordering hot path.
//!
//! Algorithm 1 runs once per cut batch, thousands of times per benchmark
//! run. The original implementation allocated every intermediate — the
//! key inverted index, both adjacency directions, Tarjan's stacks,
//! Johnson's block lists, the schedule — afresh per call. This module
//! pools all of that in a [`ReorderScratch`] arena: every buffer is
//! `clear()`ed (keeping capacity) rather than dropped, so once a worker's
//! scratch has warmed up to the largest batch shape it has seen, a
//! [`crate::reorder_with`] call performs **zero heap allocations** in the
//! steady state (asserted by a counting-allocator test in this crate).
//!
//! The arena is deliberately per-worker, not shared: each thread of the
//! ordering service's reorder pool owns one `ReorderScratch`, so there is
//! no synchronization on the hot path.

use fabric_common::rwset::ReadWriteSet;
use fabric_common::KeyTable;

use crate::graph::ConflictGraph;
use crate::ReorderStats;

/// A list of variable-length `usize` segments stored flat (one backing
/// vector plus segment bounds), reused across calls without per-segment
/// allocation. Holds Tarjan components and Johnson cycles.
#[derive(Debug, Clone)]
pub(crate) struct SegList {
    items: Vec<usize>,
    /// `bounds[i]..bounds[i+1]` delimits segment `i`; always starts `[0]`.
    bounds: Vec<usize>,
}

impl Default for SegList {
    fn default() -> Self {
        SegList { items: Vec::new(), bounds: vec![0] }
    }
}

impl SegList {
    /// Drops all segments, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.items.clear();
        self.bounds.clear();
        self.bounds.push(0);
    }

    /// Appends one item to the segment currently being built.
    pub(crate) fn push(&mut self, v: usize) {
        self.items.push(v);
    }

    /// Closes the segment currently being built.
    pub(crate) fn end_seg(&mut self) {
        self.bounds.push(self.items.len());
    }

    /// Sorts the members of the segment currently being built.
    pub(crate) fn sort_open_seg(&mut self) {
        let start = *self.bounds.last().expect("bounds never empty");
        self.items[start..].sort_unstable();
    }

    /// Number of closed segments.
    pub(crate) fn count(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Members of closed segment `i`.
    pub(crate) fn get(&self, i: usize) -> &[usize] {
        &self.items[self.bounds[i]..self.bounds[i + 1]]
    }

    pub(crate) fn capacity(&self) -> usize {
        self.items.capacity() + self.bounds.capacity()
    }
}

/// One batch's read/write sets with every key replaced by its dense
/// [`KeyTable`] id — interned once, shared by the conflict-graph build
/// (and, in the ordering crate, by anything else that would otherwise
/// hash raw keys per stage).
#[derive(Debug, Default, Clone)]
pub struct InternedBatch {
    n_txs: usize,
    read_ids: Vec<u32>,
    read_bounds: Vec<u32>,
    write_ids: Vec<u32>,
    write_bounds: Vec<u32>,
    n_keys: usize,
}

impl InternedBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-interns `rwsets` into this batch, reusing `table` and all
    /// internal buffers. Ids are dense `0..n_keys()` in first-seen order.
    pub fn intern(&mut self, table: &mut KeyTable, rwsets: &[&ReadWriteSet]) {
        table.clear();
        self.n_txs = rwsets.len();
        self.read_ids.clear();
        self.write_ids.clear();
        self.read_bounds.clear();
        self.write_bounds.clear();
        self.read_bounds.push(0);
        self.write_bounds.push(0);
        for rw in rwsets {
            for k in rw.reads.keys() {
                self.read_ids.push(table.intern(k));
            }
            self.read_bounds.push(self.read_ids.len() as u32);
            for k in rw.writes.keys() {
                self.write_ids.push(table.intern(k));
            }
            self.write_bounds.push(self.write_ids.len() as u32);
        }
        self.n_keys = table.len();
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.n_txs
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.n_txs == 0
    }

    /// Number of distinct keys across the batch.
    pub fn n_keys(&self) -> usize {
        self.n_keys
    }

    /// Key ids read by transaction `i`.
    pub fn reads(&self, i: usize) -> &[u32] {
        &self.read_ids[self.read_bounds[i] as usize..self.read_bounds[i + 1] as usize]
    }

    /// Key ids written by transaction `i`.
    pub fn writes(&self, i: usize) -> &[u32] {
        &self.write_ids[self.write_bounds[i] as usize..self.write_bounds[i + 1] as usize]
    }

    fn capacity(&self) -> usize {
        self.read_ids.capacity()
            + self.read_bounds.capacity()
            + self.write_ids.capacity()
            + self.write_bounds.capacity()
    }
}

/// Inverted index key-id → (reader tx indices, writer tx indices), with
/// reusable per-key buckets.
#[derive(Debug, Default, Clone)]
pub(crate) struct KeyIndex {
    readers: Vec<Vec<u32>>,
    writers: Vec<Vec<u32>>,
    active: usize,
}

impl KeyIndex {
    /// Clears the first `n_keys` buckets (keeping their capacity) and
    /// grows the bucket arrays if this batch has more keys than any
    /// before it.
    pub(crate) fn reset(&mut self, n_keys: usize) {
        if self.readers.len() < n_keys {
            self.readers.resize_with(n_keys, Vec::new);
            self.writers.resize_with(n_keys, Vec::new);
        }
        for b in &mut self.readers[..n_keys] {
            b.clear();
        }
        for b in &mut self.writers[..n_keys] {
            b.clear();
        }
        self.active = n_keys;
    }

    pub(crate) fn add_reader(&mut self, key: u32, tx: u32) {
        self.readers[key as usize].push(tx);
    }

    pub(crate) fn add_writer(&mut self, key: u32, tx: u32) {
        self.writers[key as usize].push(tx);
    }

    pub(crate) fn bucket(&self, key: usize) -> (&[u32], &[u32]) {
        (&self.readers[key], &self.writers[key])
    }

    pub(crate) fn active(&self) -> usize {
        self.active
    }

    fn capacity(&self) -> usize {
        self.readers.iter().map(Vec::capacity).sum::<usize>()
            + self.writers.iter().map(Vec::capacity).sum::<usize>()
    }
}

/// Tarjan working set (see [`crate::tarjan`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct TarjanScratch {
    pub(crate) index: Vec<usize>,
    pub(crate) lowlink: Vec<usize>,
    pub(crate) on_stack: Vec<bool>,
    pub(crate) stack: Vec<usize>,
    pub(crate) call_stack: Vec<(usize, usize)>,
}

impl TarjanScratch {
    fn capacity(&self) -> usize {
        self.index.capacity()
            + self.lowlink.capacity()
            + self.on_stack.capacity()
            + self.stack.capacity()
            + self.call_stack.capacity()
    }
}

/// Johnson working set (see [`crate::johnson`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct JohnsonScratch {
    /// Global node → local index within the current SCC (`u32::MAX` =
    /// not a member); sized to the batch, reset per SCC by membership.
    pub(crate) local_of: Vec<u32>,
    /// Local adjacency of the current SCC, flattened.
    pub(crate) adj: SegList,
    pub(crate) blocked: Vec<bool>,
    pub(crate) block_lists: Vec<Vec<usize>>,
    pub(crate) stack: Vec<usize>,
}

impl JohnsonScratch {
    fn capacity(&self) -> usize {
        self.local_of.capacity()
            + self.adj.capacity()
            + self.blocked.capacity()
            + self.block_lists.iter().map(Vec::capacity).sum::<usize>()
            + self.stack.capacity()
    }
}

/// Greedy cycle-breaking working set (see [`crate::cycle_break`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct GreedyScratch {
    pub(crate) counts: Vec<usize>,
    pub(crate) membership: Vec<Vec<u32>>,
    pub(crate) alive: Vec<bool>,
}

impl GreedyScratch {
    fn capacity(&self) -> usize {
        self.counts.capacity()
            + self.membership.iter().map(Vec::capacity).sum::<usize>()
            + self.alive.capacity()
    }
}

/// Per-worker arena holding every intermediate of one [`crate::reorder_with`]
/// call. Create once per reorder worker thread; reuse for every batch.
#[derive(Debug, Default, Clone)]
pub struct ReorderScratch {
    pub(crate) table: KeyTable,
    pub(crate) batch: InternedBatch,
    pub(crate) index: KeyIndex,
    pub(crate) graph: ConflictGraph,
    pub(crate) graph2: ConflictGraph,
    pub(crate) tarjan: TarjanScratch,
    pub(crate) sccs: SegList,
    /// SCC segment indices ordered by smallest member (the paper's
    /// deterministic iteration order).
    pub(crate) scc_order: Vec<u32>,
    pub(crate) johnson: JohnsonScratch,
    pub(crate) cycles: SegList,
    pub(crate) greedy: GreedyScratch,
    /// Node index → rank of its SCC in the deterministic `scc_order`
    /// iteration (abort-provenance lookup; filled whenever Tarjan runs).
    pub(crate) scc_of: Vec<u32>,
    pub(crate) survivors: Vec<usize>,
    pub(crate) scheduled: Vec<bool>,
    pub(crate) local_order: Vec<usize>,
}

impl ReorderScratch {
    /// Creates an empty arena; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interned batch of the most recent [`crate::reorder_with`]
    /// call on this arena: every key of the batch replaced by its dense
    /// `u32` id. This is the id space the seal path carries forward as
    /// [`fabric_common::DependencyHints`] instead of re-hashing keys.
    pub fn interned(&self) -> &InternedBatch {
        &self.batch
    }

    /// Appends the dependency edges of the most recent
    /// [`crate::reorder_with`] call's **survivor** conflict graph to
    /// `edges`, as `(writer, reader)` pairs in *original input indices*.
    ///
    /// Must be called with the [`ReorderOutput`] of that same call (it
    /// selects which pooled graph is current): with no aborts the full
    /// graph is the survivor graph; with aborts the filtered rebuild over
    /// the survivors is, and its local node ids are mapped back through
    /// the survivor list. Appends nothing when the batch was empty or
    /// conflict-free — consumers must treat absent edges as "derive from
    /// the interned read/write sets instead", not as independence.
    pub fn survivor_edges_into(&self, out: &ReorderOutput, edges: &mut Vec<(u32, u32)>) {
        if out.schedule.is_empty() || out.stats.edges == 0 {
            return;
        }
        if out.aborted.is_empty() {
            for w in 0..self.graph.len() {
                for &r in self.graph.children(w) {
                    edges.push((w as u32, r as u32));
                }
            }
        } else {
            for lw in 0..self.graph2.len() {
                for &lr in self.graph2.children(lw) {
                    edges.push((self.survivors[lw] as u32, self.survivors[lr] as u32));
                }
            }
        }
    }

    /// Total reserved capacity across every pooled buffer, in elements.
    ///
    /// Diagnostics for the scratch-reuse contract: after warm-up on a
    /// fixed batch shape, repeat calls must leave this number unchanged
    /// (no buffer grew, nothing was dropped and re-allocated).
    pub fn footprint(&self) -> usize {
        self.table.capacity()
            + self.batch.capacity()
            + self.index.capacity()
            + self.graph.scratch_capacity()
            + self.graph2.scratch_capacity()
            + self.tarjan.capacity()
            + self.sccs.capacity()
            + self.scc_order.capacity()
            + self.johnson.capacity()
            + self.cycles.capacity()
            + self.greedy.capacity()
            + self.scc_of.capacity()
            + self.survivors.capacity()
            + self.scheduled.capacity()
            + self.local_order.capacity()
    }
}

/// Cycle-membership provenance for one aborted transaction: which
/// strongly connected subgraph doomed it, and how big that subgraph was.
///
/// `scc` is the rank of the component in the reorderer's deterministic
/// iteration order (components sorted by smallest member), so two aborted
/// transactions with equal `scc` died breaking the same knot of cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbortScc {
    /// Deterministic rank of the component containing the transaction.
    pub scc: u32,
    /// Number of transactions in that component.
    pub size: u32,
}

/// Reusable output of one [`crate::reorder_with`] call. The vectors are
/// cleared (capacity kept) at the start of every call.
#[derive(Debug, Default, Clone)]
pub struct ReorderOutput {
    /// Indices (into the input slice) of the surviving transactions, in
    /// serializable commit order.
    pub schedule: Vec<usize>,
    /// Indices of transactions aborted to break conflict cycles, ascending.
    pub aborted: Vec<usize>,
    /// Provenance parallel to `aborted`: `abort_sccs[i]` names the
    /// conflict-cycle component that doomed `aborted[i]`.
    pub abort_sccs: Vec<AbortScc>,
    /// Diagnostics.
    pub stats: ReorderStats,
}

impl ReorderOutput {
    /// Creates an empty output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the index lists (keeping capacity) and zeroes the stats.
    pub fn clear(&mut self) {
        self.schedule.clear();
        self.aborted.clear();
        self.abort_sccs.clear();
        self.stats = ReorderStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{Key, Value, Version};

    fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
        let rk: Vec<Key> = reads.iter().map(|&i| Key::composite("K", i as u64)).collect();
        let wk: Vec<Key> = writes.iter().map(|&i| Key::composite("K", i as u64)).collect();
        rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
    }

    #[test]
    fn seg_list_round_trip() {
        let mut s = SegList::default();
        s.clear();
        s.push(3);
        s.push(1);
        s.sort_open_seg();
        s.end_seg();
        s.push(9);
        s.end_seg();
        assert_eq!(s.count(), 2);
        assert_eq!(s.get(0), &[1, 3]);
        assert_eq!(s.get(1), &[9]);
        s.clear();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn interned_batch_ids_are_dense_and_shared() {
        let sets = [tx(&[0, 1], &[2]), tx(&[2], &[0])];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let mut table = KeyTable::new();
        let mut b = InternedBatch::new();
        b.intern(&mut table, &refs);
        assert_eq!(b.len(), 2);
        assert_eq!(b.n_keys(), 3);
        // tx0 reads K0, K1 → ids 0, 1; writes K2 → id 2.
        assert_eq!(b.reads(0), &[0, 1]);
        assert_eq!(b.writes(0), &[2]);
        // tx1 reads K2 (already id 2), writes K0 (id 0).
        assert_eq!(b.reads(1), &[2]);
        assert_eq!(b.writes(1), &[0]);
    }

    #[test]
    fn interned_batch_reuse_resets_ids() {
        let mut table = KeyTable::new();
        let mut b = InternedBatch::new();
        let first = [tx(&[0, 1, 2], &[3])];
        let refs: Vec<&ReadWriteSet> = first.iter().collect();
        b.intern(&mut table, &refs);
        assert_eq!(b.n_keys(), 4);
        let second = [tx(&[7], &[8])];
        let refs: Vec<&ReadWriteSet> = second.iter().collect();
        b.intern(&mut table, &refs);
        assert_eq!(b.n_keys(), 2);
        assert_eq!(b.reads(0), &[0], "ids restart from zero per batch");
        assert_eq!(b.writes(0), &[1]);
    }

    #[test]
    fn survivor_edges_match_a_fresh_survivor_graph() {
        // The paper's §5.1.1 example aborts {T0, T2}; the extracted edges
        // must be exactly the conflict graph over the four survivors,
        // expressed in original indices.
        let sets = [
            tx(&[0, 1], &[2]),
            tx(&[3, 4, 5], &[0]),
            tx(&[6, 7], &[3, 9]),
            tx(&[2, 8], &[1, 4]),
            tx(&[9], &[5, 6, 8]),
            tx(&[], &[7]),
        ];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let mut scratch = ReorderScratch::new();
        let mut out = ReorderOutput::new();
        crate::reorder_with(&refs, &crate::ReorderConfig::default(), &mut scratch, &mut out);
        assert_eq!(out.aborted, vec![0, 2]);
        let mut edges = Vec::new();
        scratch.survivor_edges_into(&out, &mut edges);
        assert!(!edges.is_empty());
        let survivors: Vec<usize> = vec![1, 3, 4, 5];
        let survivor_sets: Vec<&ReadWriteSet> = survivors.iter().map(|&i| refs[i]).collect();
        let fresh = crate::ConflictGraph::build(&survivor_sets);
        let mut expected: Vec<(u32, u32)> = fresh
            .edges()
            .into_iter()
            .map(|(w, r)| (survivors[w] as u32, survivors[r] as u32))
            .collect();
        expected.sort_unstable();
        edges.sort_unstable();
        assert_eq!(edges, expected);
    }

    #[test]
    fn survivor_edges_empty_on_conflict_free_batch() {
        let sets: Vec<ReadWriteSet> = (0..6).map(|i| tx(&[2 * i], &[2 * i + 1])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let mut scratch = ReorderScratch::new();
        let mut out = ReorderOutput::new();
        crate::reorder_with(&refs, &crate::ReorderConfig::default(), &mut scratch, &mut out);
        assert_eq!(out.schedule.len(), 6);
        let mut edges = Vec::new();
        scratch.survivor_edges_into(&out, &mut edges);
        assert!(edges.is_empty());
    }

    #[test]
    fn survivor_edges_cover_the_full_graph_when_nothing_aborts() {
        // Acyclic but conflicting: writer T0 → readers T1, T2. No aborts,
        // so the full graph is the survivor graph.
        let sets = [tx(&[], &[0]), tx(&[0], &[1]), tx(&[0], &[2])];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let mut scratch = ReorderScratch::new();
        let mut out = ReorderOutput::new();
        crate::reorder_with(&refs, &crate::ReorderConfig::default(), &mut scratch, &mut out);
        assert!(out.aborted.is_empty());
        let mut edges = Vec::new();
        scratch.survivor_edges_into(&out, &mut edges);
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn footprint_is_stable_after_warmup() {
        let mut scratch = ReorderScratch::new();
        let sets: Vec<ReadWriteSet> = (0..32).map(|i| tx(&[i], &[(i + 1) % 32])).collect();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let mut out = ReorderOutput::new();
        crate::reorder_with(&refs, &crate::ReorderConfig::default(), &mut scratch, &mut out);
        let warm = scratch.footprint();
        assert!(warm > 0);
        for _ in 0..5 {
            crate::reorder_with(&refs, &crate::ReorderConfig::default(), &mut scratch, &mut out);
        }
        assert_eq!(scratch.footprint(), warm, "steady-state call must not grow any buffer");
    }
}
