//! The conflict graph (paper §5.1, step 1).
//!
//! Nodes are the transactions of one batch; there is a directed edge
//! `Ti → Tj` iff `Ti` writes a key that `Tj` reads (`Ti ⇝ Tj` in the
//! paper's notation), in which case a serializable schedule must commit
//! `Tj` **before** `Ti` — otherwise `Tj`'s read would be outdated. A
//! transaction never conflicts with itself (its own writes are its
//! read-your-own-writes, not a stale read).
//!
//! Two construction paths produce identical graphs:
//!
//! * [`ConflictGraph::build_bitset`] — the paper's method: per transaction
//!   a read bit-vector and a write bit-vector over the batch's unique keys,
//!   pairwise AND (quadratic in the batch size, as the paper notes, but
//!   bounded by the block size).
//! * [`ConflictGraph::build`] — an inverted-index method (for each key:
//!   writers × readers) that is asymptotically cheaper on sparse batches
//!   and is the default. A property test cross-validates the two.

use std::collections::HashMap;

use fabric_common::rwset::ReadWriteSet;
use fabric_common::{BitSet, Key};

use crate::scratch::{InternedBatch, KeyIndex};

/// Directed conflict graph with both adjacency directions materialized.
///
/// The adjacency vectors are kept at their high-water length so a graph
/// held in a [`crate::ReorderScratch`] can be rebuilt for a new batch
/// without reallocating: only the first [`len`](Self::len) entries are
/// active.
#[derive(Debug, Clone, Default)]
pub struct ConflictGraph {
    /// `children[i]` = sorted indices `j` with edge `i → j`
    /// (i writes a key j reads; j must commit before i).
    children: Vec<Vec<usize>>,
    /// `parents[j]` = sorted indices `i` with edge `i → j`.
    parents: Vec<Vec<usize>>,
    edge_count: usize,
    /// Active node count; `children`/`parents` may be longer (pooled).
    n: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph using the inverted-index method (default).
    pub fn build(rwsets: &[&ReadWriteSet]) -> Self {
        let n = rwsets.len();
        // key → (reader indices, writer indices)
        let mut by_key: HashMap<&Key, (Vec<usize>, Vec<usize>)> = HashMap::new();
        for (i, rw) in rwsets.iter().enumerate() {
            for k in rw.reads.keys() {
                by_key.entry(k).or_default().0.push(i);
            }
            for k in rw.writes.keys() {
                by_key.entry(k).or_default().1.push(i);
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (readers, writers) in by_key.values() {
            for &w in writers {
                for &r in readers {
                    if w != r {
                        children[w].push(r);
                    }
                }
            }
        }
        Self::finish(children)
    }

    /// Builds the conflict graph with the paper's bit-vector intersection
    /// (§5.1.1 step 1). Kept for fidelity and cross-validation.
    pub fn build_bitset(rwsets: &[&ReadWriteSet]) -> Self {
        let n = rwsets.len();
        // Assign each unique key a bit position.
        let mut key_ids: HashMap<&Key, usize> = HashMap::new();
        for rw in rwsets {
            for k in rw.reads.keys().chain(rw.writes.keys()) {
                let next = key_ids.len();
                key_ids.entry(k).or_insert(next);
            }
        }
        let nkeys = key_ids.len();
        let mut read_vec = Vec::with_capacity(n);
        let mut write_vec = Vec::with_capacity(n);
        for rw in rwsets {
            let mut r = BitSet::new(nkeys);
            for k in rw.reads.keys() {
                r.set(key_ids[k]);
            }
            let mut w = BitSet::new(nkeys);
            for k in rw.writes.keys() {
                w.set(key_ids[k]);
            }
            read_vec.push(r);
            write_vec.push(w);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for (j, read) in read_vec.iter().enumerate() {
                if i != j && write_vec[i].intersects(read) {
                    children[i].push(j);
                }
            }
        }
        Self::finish(children)
    }

    /// Builds the conflict graph from a batch interned to dense key ids.
    ///
    /// Produces exactly the graph [`build`](Self::build) produces on the
    /// raw read/write sets (cross-validated by a property test against
    /// [`build_bitset`](Self::build_bitset)); the interned form is what the
    /// allocation-free hot path uses via [`crate::reorder_with`].
    pub fn build_interned(batch: &InternedBatch) -> Self {
        let mut g = Self::default();
        let mut index = KeyIndex::default();
        g.rebuild_interned(batch, &mut index);
        g
    }

    /// In-place [`build_interned`](Self::build_interned): rebuilds this
    /// graph for `batch`, reusing this graph's adjacency buffers and the
    /// caller's inverted `index`.
    pub(crate) fn rebuild_interned(&mut self, batch: &InternedBatch, index: &mut KeyIndex) {
        index.reset(batch.n_keys());
        for i in 0..batch.len() {
            let tx = i as u32;
            for &k in batch.reads(i) {
                index.add_reader(k, tx);
            }
            for &k in batch.writes(i) {
                index.add_writer(k, tx);
            }
        }
        self.rebuild_from_index(batch.len(), index);
    }

    /// Rebuilds this graph over the subset `survivors` (ascending global
    /// indices) of `batch`; node `li` of the result is transaction
    /// `survivors[li]`. Equivalent to building over the survivor rwsets.
    pub(crate) fn rebuild_interned_filtered(
        &mut self,
        batch: &InternedBatch,
        index: &mut KeyIndex,
        survivors: &[usize],
    ) {
        index.reset(batch.n_keys());
        for (li, &gi) in survivors.iter().enumerate() {
            let tx = li as u32;
            for &k in batch.reads(gi) {
                index.add_reader(k, tx);
            }
            for &k in batch.writes(gi) {
                index.add_writer(k, tx);
            }
        }
        self.rebuild_from_index(survivors.len(), index);
    }

    fn rebuild_from_index(&mut self, n: usize, index: &KeyIndex) {
        self.reset(n);
        for k in 0..index.active() {
            let (readers, writers) = index.bucket(k);
            for &w in writers {
                for &r in readers {
                    if w != r {
                        self.children[w as usize].push(r as usize);
                    }
                }
            }
        }
        self.finalize_edges();
    }

    /// Clears the first `n` adjacency lists (keeping capacity) and marks
    /// `n` nodes active, growing the pooled vectors only past their
    /// high-water mark.
    pub(crate) fn reset(&mut self, n: usize) {
        if self.children.len() < n {
            self.children.resize_with(n, Vec::new);
            self.parents.resize_with(n, Vec::new);
        }
        for v in &mut self.children[..n] {
            v.clear();
        }
        for v in &mut self.parents[..n] {
            v.clear();
        }
        self.n = n;
        self.edge_count = 0;
    }

    /// Sorts/dedups the child lists and derives parents and the edge
    /// count, all in place. Pushing in ascending `i` order leaves every
    /// parent list already sorted.
    fn finalize_edges(&mut self) {
        let n = self.n;
        let mut edge_count = 0;
        for ch in &mut self.children[..n] {
            ch.sort_unstable();
            ch.dedup();
            edge_count += ch.len();
        }
        let (children, parents) = (&self.children, &mut self.parents);
        for (i, ch) in children[..n].iter().enumerate() {
            for &j in ch {
                parents[j].push(i);
            }
        }
        self.edge_count = edge_count;
    }

    /// Builds a graph directly from adjacency lists (used by the fallback
    /// cycle breaker's induced subgraphs).
    pub(crate) fn from_adjacency(children: Vec<Vec<usize>>) -> Self {
        Self::finish(children)
    }

    fn finish(mut children: Vec<Vec<usize>>) -> Self {
        let n = children.len();
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut edge_count = 0;
        for (i, ch) in children.iter_mut().enumerate() {
            ch.sort_unstable();
            ch.dedup();
            edge_count += ch.len();
            for &j in ch.iter() {
                parents[j].push(i);
            }
        }
        for p in &mut parents {
            p.sort_unstable();
        }
        ConflictGraph { children, parents, edge_count, n }
    }

    /// Number of nodes (transactions).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total reserved adjacency capacity (scratch-reuse diagnostics).
    pub(crate) fn scratch_capacity(&self) -> usize {
        self.children.iter().map(Vec::capacity).sum::<usize>()
            + self.parents.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Nodes `j` with edge `i → j` (readers of i's writes), ascending.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Nodes `j` with edge `j → i` (writers into i's reads), ascending.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// Total degree of node `i` (in + out), used by the fallback breaker.
    pub fn degree(&self, i: usize) -> usize {
        self.children[i].len() + self.parents[i].len()
    }

    /// All edges as `(from, to)` pairs, ascending (tests/debugging).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (i, ch) in self.children[..self.n].iter().enumerate() {
            for &j in ch {
                out.push((i, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{Value, Version};
    use proptest::prelude::*;

    fn key(i: usize) -> Key {
        Key::composite("K", i as u64)
    }

    fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
        let rk: Vec<Key> = reads.iter().map(|&i| key(i)).collect();
        let wk: Vec<Key> = writes.iter().map(|&i| key(i)).collect();
        rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
    }

    /// The paper's Table 3 transactions.
    fn paper_example() -> Vec<ReadWriteSet> {
        vec![
            tx(&[0, 1], &[2]),
            tx(&[3, 4, 5], &[0]),
            tx(&[6, 7], &[3, 9]),
            tx(&[2, 8], &[1, 4]),
            tx(&[9], &[5, 6, 8]),
            tx(&[], &[7]),
        ]
    }

    #[test]
    fn paper_figure_3_edges() {
        // Figure 3's conflict graph, derived from Table 3:
        // T0 writes K2, read by T3           → T0→T3
        // T1 writes K0, read by T0           → T1→T0
        // T2 writes K3 (read by T1), K9 (T4) → T2→T1, T2→T4
        // T3 writes K1 (T0), K4 (T1)         → T3→T0, T3→T1
        // T4 writes K5 (T1), K6 (T2), K8 (T3)→ T4→T1, T4→T2, T4→T3
        // T5 writes K7, read by T2           → T5→T2
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let cg = ConflictGraph::build(&refs);
        let expected = vec![
            (0, 3),
            (1, 0),
            (2, 1),
            (2, 4),
            (3, 0),
            (3, 1),
            (4, 1),
            (4, 2),
            (4, 3),
            (5, 2),
        ];
        assert_eq!(cg.edges(), expected);
        assert_eq!(cg.edge_count(), 10);
    }

    #[test]
    fn bitset_build_matches_on_paper_example() {
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        assert_eq!(
            ConflictGraph::build(&refs).edges(),
            ConflictGraph::build_bitset(&refs).edges()
        );
    }

    #[test]
    fn no_self_edges() {
        let t = tx(&[0, 1], &[0, 1]);
        let refs = [&t];
        let cg = ConflictGraph::build(&refs);
        assert_eq!(cg.edge_count(), 0);
        let cg = ConflictGraph::build_bitset(&refs);
        assert_eq!(cg.edge_count(), 0);
    }

    #[test]
    fn parents_mirror_children() {
        let sets = paper_example();
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let cg = ConflictGraph::build(&refs);
        for i in 0..cg.len() {
            for &j in cg.children(i) {
                assert!(cg.parents(j).contains(&i));
            }
            for &j in cg.parents(i) {
                assert!(cg.children(j).contains(&i));
            }
        }
        assert_eq!(cg.degree(4), cg.children(4).len() + cg.parents(4).len());
    }

    #[test]
    fn duplicate_key_conflicts_produce_one_edge() {
        // i writes two keys that j reads: still a single edge.
        let t0 = tx(&[], &[0, 1]);
        let t1 = tx(&[0, 1], &[]);
        let sets = [t0, t1];
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let cg = ConflictGraph::build(&refs);
        assert_eq!(cg.edges(), vec![(0, 1)]);
    }

    #[test]
    fn empty_graph() {
        let cg = ConflictGraph::build(&[]);
        assert!(cg.is_empty());
        assert_eq!(cg.edge_count(), 0);
        assert!(cg.edges().is_empty());
    }

    proptest! {
        /// The fast inverted-index construction and the paper's bit-vector
        /// construction agree on arbitrary batches.
        #[test]
        fn builds_agree(batch in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..12, 0..5), // reads
                proptest::collection::vec(0usize..12, 0..5), // writes
            ),
            0..14,
        )) {
            let sets: Vec<ReadWriteSet> = batch
                .iter()
                .map(|(r, w)| tx(r, w))
                .collect();
            let refs: Vec<&ReadWriteSet> = sets.iter().collect();
            prop_assert_eq!(
                ConflictGraph::build(&refs).edges(),
                ConflictGraph::build_bitset(&refs).edges()
            );
        }

        /// The interned-id construction (the allocation-free hot path)
        /// agrees with the paper's bit-vector construction over raw keys
        /// on arbitrary batches.
        #[test]
        fn interned_build_matches_bitset(batch in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..12, 0..5), // reads
                proptest::collection::vec(0usize..12, 0..5), // writes
            ),
            0..14,
        )) {
            let sets: Vec<ReadWriteSet> = batch
                .iter()
                .map(|(r, w)| tx(r, w))
                .collect();
            let refs: Vec<&ReadWriteSet> = sets.iter().collect();
            let mut table = fabric_common::KeyTable::new();
            let mut interned = InternedBatch::new();
            interned.intern(&mut table, &refs);
            let a = ConflictGraph::build_interned(&interned);
            let b = ConflictGraph::build_bitset(&refs);
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.edges(), b.edges());
        }

        /// Rebuilding a pooled graph in place across batches of varying
        /// shape always matches a fresh build.
        #[test]
        fn inplace_rebuild_matches_fresh(batches in proptest::collection::vec(
            proptest::collection::vec(
                (
                    proptest::collection::vec(0usize..10, 0..4),
                    proptest::collection::vec(0usize..10, 0..4),
                ),
                0..10,
            ),
            1..5,
        )) {
            let mut table = fabric_common::KeyTable::new();
            let mut interned = InternedBatch::new();
            let mut index = KeyIndex::default();
            let mut pooled = ConflictGraph::default();
            for batch in &batches {
                let sets: Vec<ReadWriteSet> =
                    batch.iter().map(|(r, w)| tx(r, w)).collect();
                let refs: Vec<&ReadWriteSet> = sets.iter().collect();
                interned.intern(&mut table, &refs);
                pooled.rebuild_interned(&interned, &mut index);
                let fresh = ConflictGraph::build(&refs);
                prop_assert_eq!(pooled.len(), fresh.len());
                prop_assert_eq!(pooled.edges(), fresh.edges());
                for i in 0..fresh.len() {
                    prop_assert_eq!(pooled.parents(i), fresh.parents(i));
                }
            }
        }

        /// Edges exist exactly when a write-read key overlap exists.
        #[test]
        fn edge_iff_overlap(batch in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..8, 0..4),
                proptest::collection::vec(0usize..8, 0..4),
            ),
            2..8,
        )) {
            let sets: Vec<ReadWriteSet> = batch.iter().map(|(r, w)| tx(r, w)).collect();
            let refs: Vec<&ReadWriteSet> = sets.iter().collect();
            let cg = ConflictGraph::build(&refs);
            for i in 0..refs.len() {
                for j in 0..refs.len() {
                    if i == j { continue; }
                    let overlap = refs[i].writes_conflict_with_reads_of(refs[j]);
                    prop_assert_eq!(
                        cg.children(i).contains(&j),
                        overlap,
                        "edge {}→{} vs overlap {}", i, j, overlap
                    );
                }
            }
        }
    }
}
