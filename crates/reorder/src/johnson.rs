//! Johnson's elementary-circuit enumeration (paper §5.1.1 step 2).
//!
//! "We identify the cycles within the subgraphs using Johnson's algorithm"
//! — run per strongly connected subgraph, each elementary circuit is
//! reported exactly once (attributed to its minimal vertex). Enumeration is
//! capped by a budget: the number of elementary circuits can be exponential
//! in the subgraph size, and Fabric++ bounds the work per block (the
//! unique-keys batch-cutting condition exists for the same reason). Hitting
//! the cap returns [`CycleOverflow`], signalling the caller to use the
//! SCC-condensation fallback breaker instead.

use crate::graph::ConflictGraph;
use crate::scratch::{JohnsonScratch, SegList};

/// Enumeration exceeded its cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleOverflow;

/// Enumerates all elementary cycles inside one strongly connected component
/// `scc` (global node indices) of `g`, up to `budget` cycles.
///
/// Each cycle is returned as its vertex sequence in traversal order,
/// starting at its minimal vertex; the back-edge to the start is implicit.
pub fn elementary_cycles(
    g: &ConflictGraph,
    scc: &[usize],
    budget: usize,
) -> Result<Vec<Vec<usize>>, CycleOverflow> {
    let mut scratch = JohnsonScratch::default();
    let mut out = SegList::default();
    elementary_cycles_into(g, scc, budget, &mut scratch, &mut out)?;
    Ok((0..out.count()).map(|i| out.get(i).to_vec()).collect())
}

/// Allocation-free core of [`elementary_cycles`]: appends each cycle of
/// `scc` as one segment of `out` (global node indices).
///
/// `max_total` caps the **total** segment count of `out`, not just this
/// call's contribution — passing one accumulator across a batch's SCCs
/// with `max_total = max_cycles` reproduces the shared decrementing budget
/// exactly (overflow the moment cycle `max_total + 1` is found).
///
/// On [`CycleOverflow`] the accumulator holds a partial enumeration; the
/// caller is expected to discard it and engage the fallback breaker.
pub(crate) fn elementary_cycles_into(
    g: &ConflictGraph,
    scc: &[usize],
    max_total: usize,
    scratch: &mut JohnsonScratch,
    out: &mut SegList,
) -> Result<(), CycleOverflow> {
    let m = scc.len();
    if m < 2 {
        return Ok(());
    }
    let n = g.len();
    let JohnsonScratch { local_of, adj, blocked, block_lists, stack } = scratch;

    // Local dense indexing of the component, ascending so that local order
    // matches global order (needed for the minimal-vertex attribution).
    // The table is all-MAX between calls; entries set here are reset on
    // every exit path below.
    if local_of.len() < n {
        local_of.resize(n, u32::MAX);
    }
    for (li, &v) in scc.iter().enumerate() {
        local_of[v] = li as u32;
    }
    adj.clear();
    for &v in scc.iter() {
        for w in g.children(v) {
            let lw = local_of[*w];
            if lw != u32::MAX {
                adj.push(lw as usize);
            }
        }
        adj.end_seg();
    }

    blocked.clear();
    blocked.resize(m, false);
    if block_lists.len() < m {
        block_lists.resize_with(m, Vec::new);
    }
    stack.clear();

    struct Ctx<'a> {
        adj: &'a SegList,
        scc: &'a [usize],
        max_total: usize,
        out: &'a mut SegList,
        blocked: &'a mut [bool],
        block_lists: &'a mut [Vec<usize>],
        stack: &'a mut Vec<usize>,
    }

    fn unblock(ctx: &mut Ctx<'_>, v: usize) {
        ctx.blocked[v] = false;
        // Take the list out to recurse without aliasing; it is restored
        // empty with its capacity intact (unblock never repopulates it).
        let mut pending = std::mem::take(&mut ctx.block_lists[v]);
        for &w in &pending {
            if ctx.blocked[w] {
                unblock(ctx, w);
            }
        }
        pending.clear();
        ctx.block_lists[v] = pending;
    }

    /// DFS for circuits whose minimal (local) vertex is `s`; explores only
    /// vertices `>= s`. Returns whether any circuit through `v` was found.
    fn circuit(ctx: &mut Ctx<'_>, v: usize, s: usize) -> Result<bool, CycleOverflow> {
        let mut found = false;
        ctx.stack.push(v);
        ctx.blocked[v] = true;
        for i in 0..ctx.adj.get(v).len() {
            let w = ctx.adj.get(v)[i];
            if w < s {
                continue;
            }
            if w == s {
                if ctx.out.count() >= ctx.max_total {
                    return Err(CycleOverflow);
                }
                for &li in ctx.stack.iter() {
                    ctx.out.push(ctx.scc[li]);
                }
                ctx.out.end_seg();
                found = true;
            } else if !ctx.blocked[w] && circuit(ctx, w, s)? {
                found = true;
            }
        }
        if found {
            unblock(ctx, v);
        } else {
            for i in 0..ctx.adj.get(v).len() {
                let w = ctx.adj.get(v)[i];
                if w >= s && !ctx.block_lists[w].contains(&v) {
                    ctx.block_lists[w].push(v);
                }
            }
        }
        ctx.stack.pop();
        Ok(found)
    }

    let mut ctx = Ctx {
        adj,
        scc,
        max_total,
        out,
        blocked: &mut blocked[..m],
        block_lists: &mut block_lists[..m],
        stack,
    };

    let mut result = Ok(());
    for s in 0..m {
        // Reset the blocking state for each start vertex.
        for b in ctx.blocked.iter_mut() {
            *b = false;
        }
        for bl in ctx.block_lists.iter_mut() {
            bl.clear();
        }
        if let Err(e) = circuit(&mut ctx, s, s) {
            result = Err(e);
            break;
        }
        debug_assert!(ctx.stack.is_empty());
    }

    // Restore the all-MAX invariant on the shared local-index table.
    for &v in scc.iter() {
        local_of[v] = u32::MAX;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::strongly_connected_components;
    use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
    use fabric_common::{Key, Value, Version};

    fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
        let rk: Vec<Key> = reads.iter().map(|&i| Key::composite("K", i as u64)).collect();
        let wk: Vec<Key> = writes.iter().map(|&i| Key::composite("K", i as u64)).collect();
        rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
    }

    fn graph_of(txs: &[ReadWriteSet]) -> ConflictGraph {
        let refs: Vec<&ReadWriteSet> = txs.iter().collect();
        ConflictGraph::build(&refs)
    }

    fn all_cycles(g: &ConflictGraph, budget: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for scc in strongly_connected_components(g) {
            if scc.len() > 1 {
                out.extend(elementary_cycles(g, &scc, budget).unwrap());
            }
        }
        out
    }

    /// Canonical form for comparing cycles regardless of rotation.
    fn canon(mut c: Vec<usize>) -> Vec<usize> {
        let min_pos = c
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap();
        c.rotate_left(min_pos);
        c
    }

    #[test]
    fn paper_example_three_cycles() {
        // §5.1.1: c1 = T0→T3→T0, c2 = T0→T3→T1→T0, c3 = T2→T4→T2.
        let sets = vec![
            tx(&[0, 1], &[2]),
            tx(&[3, 4, 5], &[0]),
            tx(&[6, 7], &[3, 9]),
            tx(&[2, 8], &[1, 4]),
            tx(&[9], &[5, 6, 8]),
            tx(&[], &[7]),
        ];
        let g = graph_of(&sets);
        let mut cycles: Vec<Vec<usize>> =
            all_cycles(&g, 1000).into_iter().map(canon).collect();
        cycles.sort();
        assert_eq!(cycles, vec![vec![0, 3], vec![0, 3, 1], vec![2, 4]]);
    }

    #[test]
    fn acyclic_has_no_cycles() {
        let sets = vec![tx(&[], &[0]), tx(&[0], &[1]), tx(&[1], &[])];
        let g = graph_of(&sets);
        assert!(all_cycles(&g, 100).is_empty());
    }

    #[test]
    fn simple_two_cycle() {
        let sets = vec![tx(&[0], &[1]), tx(&[1], &[0])];
        let g = graph_of(&sets);
        let cycles = all_cycles(&g, 100);
        assert_eq!(cycles, vec![vec![0, 1]]);
    }

    #[test]
    fn long_single_cycle_found_once() {
        let n = 200;
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&[i], &[(i + 1) % n])).collect();
        let g = graph_of(&sets);
        let cycles = all_cycles(&g, 100);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), n);
    }

    #[test]
    fn complete_digraph_cycle_count() {
        // K4 as a digraph has 20 elementary circuits:
        // 12 of length 2? No — pairs: C(4,2)=6 two-cycles, 2·C(4,3)=8
        // three-cycles, 3!=6 four-cycles → 6 + 8 + 6 = 20.
        let n = 4;
        let all_keys: Vec<usize> = (0..n).collect();
        // Every tx writes key i and reads all keys → edge i→j for all i≠j.
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&all_keys, &[i])).collect();
        let g = graph_of(&sets);
        assert_eq!(g.edge_count(), 12);
        let cycles = all_cycles(&g, 10_000);
        assert_eq!(cycles.len(), 20);
        // All distinct in canonical form.
        let mut canons: Vec<Vec<usize>> = cycles.into_iter().map(canon).collect();
        canons.sort();
        canons.dedup();
        assert_eq!(canons.len(), 20);
    }

    #[test]
    fn budget_overflow_reported() {
        let n = 8;
        let all_keys: Vec<usize> = (0..n).collect();
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&all_keys, &[i])).collect();
        let g = graph_of(&sets);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(elementary_cycles(&g, &sccs[0], 5), Err(CycleOverflow));
    }

    #[test]
    fn two_disjoint_cycles() {
        let sets = vec![
            tx(&[0], &[1]),
            tx(&[1], &[0]),
            tx(&[2], &[3]),
            tx(&[3], &[2]),
        ];
        let g = graph_of(&sets);
        let mut cycles: Vec<Vec<usize>> = all_cycles(&g, 100).into_iter().map(canon).collect();
        cycles.sort();
        assert_eq!(cycles, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn trivial_scc_yields_nothing() {
        let sets = vec![tx(&[0], &[1])];
        let g = graph_of(&sets);
        assert!(elementary_cycles(&g, &[0], 100).unwrap().is_empty());
    }

    #[test]
    fn figure_eight_shares_a_vertex() {
        // Two 2-cycles sharing vertex 0: 0↔1 and 0↔2.
        // Edges: 0→1, 1→0, 0→2, 2→0.
        // tx0 writes k1,k2; reads k0a,k0b. tx1 reads k1 writes k0a.
        // tx2 reads k2 writes k0b.
        let sets = vec![tx(&[10, 11], &[1, 2]), tx(&[1], &[10]), tx(&[2], &[11])];
        let g = graph_of(&sets);
        let mut cycles: Vec<Vec<usize>> = all_cycles(&g, 100).into_iter().map(canon).collect();
        cycles.sort();
        assert_eq!(cycles, vec![vec![0, 1], vec![0, 2]]);
    }
}
