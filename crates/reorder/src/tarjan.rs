//! Iterative Tarjan strongly-connected-components (paper §5.1.1 step 2).
//!
//! "We identify all cycles \[by\] dividing cg into strongly connected
//! subgraphs using Tarjan's algorithm": every cycle lives entirely inside
//! one SCC, so SCCs of size one (without self-loops, which conflict graphs
//! never have) can be skipped by the cycle enumeration.
//!
//! The implementation is iterative (explicit stack) so deep graphs cannot
//! overflow the call stack, and runs in `O(N + E)`.

use crate::graph::ConflictGraph;
use crate::scratch::{SegList, TarjanScratch};

/// Computes the strongly connected components of `g`.
///
/// Components are returned with their member node indices sorted ascending,
/// and the component list itself is sorted by smallest member, making the
/// output deterministic and convenient to assert on.
pub fn strongly_connected_components(g: &ConflictGraph) -> Vec<Vec<usize>> {
    let mut scratch = TarjanScratch::default();
    let mut out = SegList::default();
    let mut order = Vec::new();
    scc_into(g, &mut scratch, &mut out, &mut order);
    order.iter().map(|&ci| out.get(ci as usize).to_vec()).collect()
}

/// Allocation-free core of [`strongly_connected_components`]: fills `out`
/// with one segment per component (members sorted ascending, segments in
/// Tarjan pop order) and `order` with the segment indices sorted by
/// smallest member — iterate `order` to visit components in the same
/// deterministic order the public function returns them in.
pub(crate) fn scc_into(
    g: &ConflictGraph,
    scratch: &mut TarjanScratch,
    out: &mut SegList,
    order: &mut Vec<u32>,
) {
    let n = g.len();
    const UNVISITED: usize = usize::MAX;

    let TarjanScratch { index, lowlink, on_stack, stack, call_stack } = scratch;
    index.clear();
    index.resize(n, UNVISITED);
    lowlink.clear();
    lowlink.resize(n, 0);
    on_stack.clear();
    on_stack.resize(n, false);
    stack.clear();
    call_stack.clear();
    out.clear();
    order.clear();

    let mut next_index = 0usize;

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        while let Some(&(v, ci)) = call_stack.last() {
            if ci == 0 {
                // First visit of v.
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < g.children(v).len() {
                call_stack.last_mut().expect("frame present").1 += 1;
                let w = g.children(v)[ci];
                if index[w] == UNVISITED {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // All children explored: pop v.
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        out.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.sort_open_seg();
                    out.end_seg();
                }
            }
        }
    }

    order.extend(0..out.count() as u32);
    // Smallest members are distinct across components (they partition the
    // nodes), so the unstable sort is deterministic.
    order.sort_unstable_by_key(|&ci| out.get(ci as usize)[0]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
    use fabric_common::{Key, Value, Version};

    fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
        let rk: Vec<Key> = reads.iter().map(|&i| Key::composite("K", i as u64)).collect();
        let wk: Vec<Key> = writes.iter().map(|&i| Key::composite("K", i as u64)).collect();
        rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
    }

    fn graph_of(txs: &[ReadWriteSet]) -> ConflictGraph {
        let refs: Vec<&ReadWriteSet> = txs.iter().collect();
        ConflictGraph::build(&refs)
    }

    #[test]
    fn paper_figure_4_three_subgraphs() {
        // The paper's example decomposes into {T0, T1, T3} (green),
        // {T2, T4} (red), and {T5} (yellow).
        let sets = vec![
            tx(&[0, 1], &[2]),
            tx(&[3, 4, 5], &[0]),
            tx(&[6, 7], &[3, 9]),
            tx(&[2, 8], &[1, 4]),
            tx(&[9], &[5, 6, 8]),
            tx(&[], &[7]),
        ];
        let sccs = strongly_connected_components(&graph_of(&sets));
        assert_eq!(sccs, vec![vec![0, 1, 3], vec![2, 4], vec![5]]);
    }

    #[test]
    fn acyclic_graph_all_singletons() {
        // Chain: T0 writes k0 read by T1; T1 writes k1 read by T2.
        let sets = vec![tx(&[], &[0]), tx(&[0], &[1]), tx(&[1], &[])];
        let sccs = strongly_connected_components(&graph_of(&sets));
        assert_eq!(sccs, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn single_big_cycle_is_one_component() {
        let n = 30;
        let sets: Vec<ReadWriteSet> = (0..n).map(|i| tx(&[i], &[(i + 1) % n])).collect();
        let sccs = strongly_connected_components(&graph_of(&sets));
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph() {
        assert!(strongly_connected_components(&ConflictGraph::build(&[])).is_empty());
    }

    #[test]
    fn isolated_nodes() {
        let sets = vec![tx(&[0], &[]), tx(&[1], &[]), tx(&[2], &[])];
        let sccs = strongly_connected_components(&graph_of(&sets));
        assert_eq!(sccs, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn components_partition_nodes() {
        let n = 40;
        // Two interleaved cycles plus isolated nodes.
        let mut sets = Vec::new();
        for i in 0..10usize {
            sets.push(tx(&[i], &[(i + 1) % 10]));
        }
        for i in 0..10usize {
            sets.push(tx(&[100 + i], &[100 + (i + 1) % 10]));
        }
        for i in 0..20usize {
            sets.push(tx(&[500 + i], &[]));
        }
        let sccs = strongly_connected_components(&graph_of(&sets));
        let mut all: Vec<usize> = sccs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 20_000-node chain; a recursive Tarjan would blow the stack.
        let n = 20_000;
        let sets: Vec<ReadWriteSet> = (0..n)
            .map(|i| if i == 0 { tx(&[], &[0]) } else { tx(&[i - 1], &[i]) })
            .collect();
        let sccs = strongly_connected_components(&graph_of(&sets));
        assert_eq!(sccs.len(), n);
    }
}
