//! # fabric-statedb
//!
//! The *current state* database of a Fabric peer: a key-value store mapping
//! each key to a pair of value and version number, where the version is the
//! `(block, tx)` coordinate of the writing transaction (paper §2.1, §5.2.1).
//!
//! Two engines implement the common [`StateStore`] trait:
//!
//! * [`MemStateDb`] — a sharded in-memory store. This is the engine the
//!   benchmarks use: the paper shows Fabric's throughput is not storage
//!   bound, and an in-memory store keeps the measurement focused on the
//!   pipeline.
//! * [`LsmStateDb`] — a from-scratch log-structured merge engine
//!   (WAL → memtable → sorted-run files with bloom filters and sparse
//!   indexes, plus compaction). It stands in for the LevelDB instance the
//!   paper's deployment uses, demonstrating the identical pipeline on
//!   persistent storage and surviving crash/reopen.
//!
//! The trait's contract encodes the commit protocol both the vanilla and the
//! Fabric++ pipeline rely on: [`StateStore::apply_block`] installs all writes
//! of a block and only *then* publishes the new
//! [`StateStore::last_committed_block`], so a simulation snapshot taken at
//! block `n` can detect any value committed after it by checking
//! `version.block > n` — the Fabric++ early-abort test (paper Figure 6).
//!
//! Both engines are **multi-version**: each key retains up to
//! `retained_versions` recent committed facts, and a simulation that pins a
//! [`StateSnapshot`] reads a consistent point-in-time view at that height
//! ([`StateStore::get_at`], [`StateStore::multi_get_at_into`],
//! [`StateStore::scan_range_at`]) without ever taking the commit ticket —
//! the lockless-endorsement design of Meir et al. ("Lockless Transaction
//! Isolation in Hyperledger Fabric"). An epoch GC driven by the commit
//! watermark and the [`PinRegistry`] of live pins trims chains so memory
//! stays bounded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lsm;
pub mod memdb;
pub mod pin;
pub mod snapshot;
pub mod store;

pub use lsm::engine::{LsmConfig, LsmStateDb};
pub use lsm::wal::{WalFaultPolicy, WalIoFault};
pub use memdb::MemStateDb;
pub use pin::{PinRegistry, StateSnapshot};
pub use snapshot::{SnapshotRead, SnapshotView, StaleInfo};
pub use store::{
    CommitWrite, SnapshotGet, StateStore, VersionedValue, WriteBatch, WriteRef,
};
