//! Snapshot pins: the registry of live reads-at-height that the epoch GC
//! must not collect under.
//!
//! Every simulation that wants a consistent point-in-time view of state
//! pins a height through [`crate::StateStore::pin_snapshot`]; the returned
//! [`StateSnapshot`] is an RAII guard whose `Drop` releases the pin. The
//! engine's GC computes its trim floor as the oldest live pin (falling
//! back to the commit watermark when no pins are live), so a pinned height
//! stays resolvable for as long as any snapshot holds it — the
//! "epoch" of the epoch-based GC is exactly the span between the oldest
//! pin and the watermark.

use std::sync::Arc;

use fabric_common::BlockNum;
use parking_lot::Mutex;

/// Refcounted registry of pinned snapshot heights.
///
/// Internally a small sorted `Vec<(height, refcount)>` rather than a map:
/// live pins number in the tens (one per in-flight simulation), the common
/// operations are "pin the watermark" (append or bump the last slot) and
/// "oldest live pin" (read slot 0), and a vector with warm capacity keeps
/// the pin/unpin path allocation-free in steady state — the same property
/// the rest of the read hot path is gated on.
#[derive(Debug, Default)]
pub struct PinRegistry {
    pins: Mutex<Vec<(BlockNum, usize)>>,
}

impl PinRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        PinRegistry { pins: Mutex::new(Vec::with_capacity(16)) }
    }

    /// Registers one pin at `height`.
    pub fn pin(&self, height: BlockNum) {
        let mut pins = self.pins.lock();
        match pins.binary_search_by_key(&height, |&(h, _)| h) {
            Ok(i) => pins[i].1 += 1,
            Err(i) => pins.insert(i, (height, 1)),
        }
    }

    /// Releases one pin at `height`. Unbalanced releases are a logic error
    /// in the snapshot guard and are ignored rather than panicking in a
    /// `Drop` path.
    pub fn unpin(&self, height: BlockNum) {
        let mut pins = self.pins.lock();
        if let Ok(i) = pins.binary_search_by_key(&height, |&(h, _)| h) {
            pins[i].1 -= 1;
            if pins[i].1 == 0 {
                pins.remove(i);
            }
        }
    }

    /// The oldest height any live snapshot still pins, or `None` when no
    /// pins are live.
    pub fn oldest(&self) -> Option<BlockNum> {
        self.pins.lock().first().map(|&(h, _)| h)
    }

    /// Number of live pins (diagnostics).
    pub fn live_pins(&self) -> usize {
        self.pins.lock().iter().map(|&(_, n)| n).sum()
    }
}

/// RAII guard for a pinned read height.
///
/// While the snapshot is alive, every versioned read at
/// [`StateSnapshot::height`] (`get_at`, `multi_get_at_into`,
/// `scan_range_at`) resolves exactly the state as of that block: the GC
/// will not trim any chain entry the height still needs. Dropping the
/// snapshot releases the pin; cloning it re-pins, so clones are
/// independently droppable.
///
/// Snapshots taken through the trait's *default* `pin_snapshot` (an engine
/// without multi-version support) carry no registry — they still name a
/// height, but nothing is retained for them beyond what the engine keeps
/// anyway.
#[derive(Debug)]
pub struct StateSnapshot {
    height: BlockNum,
    registry: Option<Arc<PinRegistry>>,
}

impl StateSnapshot {
    /// Creates a registered snapshot; the caller must already have pinned
    /// `height` in `registry` (engines do this inside `pin_snapshot`).
    pub fn registered(height: BlockNum, registry: Arc<PinRegistry>) -> Self {
        StateSnapshot { height, registry: Some(registry) }
    }

    /// Creates an unregistered snapshot: a named height with no retention
    /// behind it (single-version engines, tests).
    pub fn unregistered(height: BlockNum) -> Self {
        StateSnapshot { height, registry: None }
    }

    /// The pinned block height: reads through this snapshot see exactly
    /// the state after block `height` committed.
    pub fn height(&self) -> BlockNum {
        self.height
    }
}

impl Clone for StateSnapshot {
    fn clone(&self) -> Self {
        if let Some(reg) = &self.registry {
            reg.pin(self.height);
        }
        StateSnapshot { height: self.height, registry: self.registry.clone() }
    }
}

impl Drop for StateSnapshot {
    fn drop(&mut self) {
        if let Some(reg) = &self.registry {
            reg.unpin(self.height);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_refcount_and_report_oldest() {
        let reg = Arc::new(PinRegistry::new());
        assert_eq!(reg.oldest(), None);
        reg.pin(5);
        reg.pin(3);
        reg.pin(5);
        assert_eq!(reg.oldest(), Some(3));
        assert_eq!(reg.live_pins(), 3);
        reg.unpin(3);
        assert_eq!(reg.oldest(), Some(5));
        reg.unpin(5);
        assert_eq!(reg.oldest(), Some(5));
        reg.unpin(5);
        assert_eq!(reg.oldest(), None);
        assert_eq!(reg.live_pins(), 0);
    }

    #[test]
    fn snapshot_guard_unpins_on_drop_and_clone_repins() {
        let reg = Arc::new(PinRegistry::new());
        reg.pin(7);
        let snap = StateSnapshot::registered(7, Arc::clone(&reg));
        assert_eq!(snap.height(), 7);
        let copy = snap.clone();
        assert_eq!(reg.live_pins(), 2);
        drop(snap);
        assert_eq!(reg.oldest(), Some(7));
        drop(copy);
        assert_eq!(reg.oldest(), None);
    }

    #[test]
    fn unregistered_snapshot_is_inert() {
        let snap = StateSnapshot::unregistered(9);
        assert_eq!(snap.height(), 9);
        let copy = snap.clone();
        drop(snap);
        assert_eq!(copy.height(), 9);
    }

    #[test]
    fn unbalanced_unpin_is_ignored() {
        let reg = PinRegistry::new();
        reg.unpin(4);
        reg.pin(4);
        reg.unpin(4);
        assert_eq!(reg.oldest(), None);
    }
}
