//! A from-scratch log-structured merge engine, standing in for the LevelDB
//! instance the paper's deployment uses as the current-state database
//! (paper §6.1: "Fabric is set up to use LevelDB as the current state
//! database").
//!
//! Architecture (write path left to right):
//!
//! ```text
//!  apply_block ──► WAL (crc-framed, fsync) ──► memtable (BTreeMap)
//!                                                   │ full
//!                                                   ▼
//!                                       SSTable (sorted run, sparse
//!                                        index + bloom filter)
//!                                                   │ too many runs
//!                                                   ▼
//!                                          full merge compaction
//! ```
//!
//! * [`crc`] — CRC-32 (IEEE 802.3) integrity checksums.
//! * [`record`] — the shared on-disk entry encoding (key, tombstone tag,
//!   value, version) used by both the WAL and the SSTables. The version is
//!   first-class on disk: the state database must return `(value, version)`
//!   pairs for the MVCC checks, so the engine persists them.
//! * [`bloom`] — per-table bloom filters to skip runs on point reads.
//! * [`wal`] — the write-ahead log; one crc-framed record per block commit,
//!   torn tails tolerated on recovery.
//! * [`memtable`] — the in-memory sorted buffer.
//! * [`sstable`] — immutable sorted-run files with a sparse index.
//! * [`engine`] — [`engine::LsmStateDb`]: ties it together, implements
//!   [`crate::StateStore`], recovers from crashes on reopen.

pub mod bloom;
pub mod crc;
pub mod engine;
pub mod memtable;
pub mod record;
pub mod sstable;
pub mod wal;
