//! The LSM engine: WAL + memtable + sorted runs + compaction, implementing
//! [`StateStore`].
//!
//! Durability protocol per block commit:
//!
//! 1. append the block's writes to the WAL (crc-framed, flushed),
//! 2. install them in the memtable,
//! 3. publish the block as last-committed (same visibility contract as the
//!    in-memory engine),
//! 4. if the memtable is full, flush it to a new SSTable, persist a new
//!    MANIFEST, rotate the WAL, and compact when too many runs accumulate.
//!
//! On reopen the engine loads the MANIFEST, opens the listed runs, replays
//! any WAL records newer than the last flushed block, and resumes exactly
//! where it left off — including after a crash mid-flush (the MANIFEST is
//! replaced atomically via rename, so either the old or the new table list
//! is in effect, and the WAL covers the difference).

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use fabric_common::{BlockNum, Error, Key, Result, StoreCounters, Value, Version};
use fabric_trace::{EventKind, TraceSink};

use super::memtable::{MemEntry, Memtable};
use super::record::DiskEntry;
use super::sstable::{write_sstable, SsTableOptions, SsTableReader};
use super::wal::{replay, WalFaultPolicy, WalRecord, WalWriter};
use crate::pin::{PinRegistry, StateSnapshot};
use crate::store::{SnapshotGet, StateStore, VersionedValue, WriteBatch};

const NO_BLOCK: u64 = u64::MAX;
const MANIFEST: &str = "MANIFEST";
const WAL_FILE: &str = "wal.log";

/// Tuning knobs for the LSM engine.
#[derive(Clone)]
pub struct LsmConfig {
    /// Flush the memtable to an SSTable once it holds this many bytes.
    pub memtable_max_bytes: usize,
    /// Merge all runs into one once this many have accumulated.
    pub compaction_threshold: usize,
    /// fsync the WAL on every commit (slower, strictly durable).
    pub sync_writes: bool,
    /// SSTable build options.
    pub sstable: SsTableOptions,
    /// Fault policy consulted on every WAL append (chaos testing seam);
    /// `None` disables injection.
    pub wal_faults: Option<Arc<dyn WalFaultPolicy>>,
    /// Recent versions retained per key for snapshot reads-at-height
    /// (clamped to ≥ 1; live pins extend retention past this regardless).
    pub retained_versions: usize,
}

impl fmt::Debug for LsmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LsmConfig")
            .field("memtable_max_bytes", &self.memtable_max_bytes)
            .field("compaction_threshold", &self.compaction_threshold)
            .field("sync_writes", &self.sync_writes)
            .field("sstable", &self.sstable)
            .field("wal_faults", &self.wal_faults.as_ref().map(|_| "<policy>"))
            .field("retained_versions", &self.retained_versions)
            .finish()
    }
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_max_bytes: 4 * 1024 * 1024,
            compaction_threshold: 4,
            sync_writes: false,
            sstable: SsTableOptions::default(),
            wal_faults: None,
            retained_versions: 4,
        }
    }
}

struct Inner {
    memtable: Memtable,
    /// Sorted runs, newest first.
    tables: Vec<Arc<SsTableReader>>,
    next_file_id: u64,
    /// Highest block already covered by the runs (WAL records at or below
    /// this are stale).
    flushed_block: Option<BlockNum>,
    /// Superseded version history: facts displaced from the memtable (by a
    /// newer write to the same key) or from the runs (by compaction),
    /// newest-first per key. Never holds a key's newest *live* value —
    /// only what snapshot reads-at-height may still need. In-memory only:
    /// pins do not survive a crash, and recovery rebuilds chains from the
    /// WAL and the ledger as blocks replay.
    history: BTreeMap<Key, Vec<MemEntry>>,
}

/// Trims one history chain (newest-first): keep everything down to the
/// first entry at or below `pin_floor` (a live pin may resolve through
/// it), and up to `retain_extra` entries regardless. `pin_floor: None`
/// (no live pins, quiescent sweep) keeps only the retention budget — the
/// newest fact at any committed height is never history-only, so nothing
/// a watermark read needs can be lost. Returns the number dropped.
fn trim_history_chain(
    chain: &mut Vec<MemEntry>,
    pin_floor: Option<BlockNum>,
    retain_extra: usize,
) -> usize {
    let needed = match pin_floor {
        Some(f) => match chain.iter().position(|e| e.version.block <= f) {
            Some(i) => i + 1,
            None => chain.len(),
        },
        None => 0,
    };
    let keep = retain_extra.min(chain.len()).max(needed);
    let dropped = chain.len() - keep;
    chain.truncate(keep);
    dropped
}

/// Accumulator for at-height resolution across memtable, history overlay,
/// and runs: tracks the max-version fact overall and the max-version fact
/// at or below the height, in whatever order facts arrive.
#[derive(Default)]
struct ResolveAcc {
    newest: Option<(Version, Option<Value>)>,
    at_h: Option<(Version, Option<Value>)>,
}

impl ResolveAcc {
    fn consider(&mut self, version: Version, value: &Option<Value>, height: BlockNum) {
        if self.newest.as_ref().is_none_or(|(v, _)| version > *v) {
            self.newest = Some((version, value.clone()));
        }
        if version.block <= height && self.at_h.as_ref().is_none_or(|(v, _)| version > *v) {
            self.at_h = Some((version, value.clone()));
        }
    }

    fn finish(self) -> SnapshotGet {
        SnapshotGet {
            at_height: self
                .at_h
                .and_then(|(ver, val)| val.map(|v| VersionedValue::new(v, ver))),
            newest: self.newest,
        }
    }
}

/// Persistent LSM-backed state database.
pub struct LsmStateDb {
    dir: PathBuf,
    cfg: LsmConfig,
    inner: RwLock<Inner>,
    wal: Mutex<WalWriter>,
    last_block: AtomicU64,
    commit_lock: Mutex<()>,
    read_scratch: Mutex<ReadScratch>,
    /// Live snapshot pins: history trimming never drops below the oldest.
    pins: Arc<PinRegistry>,
    counters: StoreCounters,
    sink: TraceSink,
}

/// Reusable index scratch for the batched version-read path: probe order
/// plus the shrinking sets of still-unresolved keys. Reused across calls so
/// a warm engine batch-reads without allocating.
#[derive(Default)]
struct ReadScratch {
    /// Probe indices sorted by key — tables are consulted in key order so
    /// sparse-index lookups walk forward instead of seeking randomly.
    order: Vec<u32>,
    /// Indices not yet resolved by the memtable / previous runs.
    pending: Vec<u32>,
    /// Double-buffer for `pending` while probing a run.
    still_pending: Vec<u32>,
}

impl LsmStateDb {
    /// Opens (or creates) an engine rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>, cfg: LsmConfig) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;

        let (tables, next_file_id, flushed_block) = Self::load_manifest(&dir)?;

        // Replay WAL records newer than the flushed watermark. Facts a
        // replayed write supersedes go straight to the history overlay, so
        // the reopened engine resolves at-height reads exactly like the
        // one that crashed (modulo the pins, which died with it).
        let mut memtable = Memtable::new();
        let mut history: BTreeMap<Key, Vec<MemEntry>> = BTreeMap::new();
        let mut last = flushed_block;
        for rec in replay(&dir.join(WAL_FILE))? {
            if flushed_block.is_some_and(|fb| rec.block <= fb) {
                continue;
            }
            for e in rec.entries {
                let key = e.key.clone();
                if let Some(old) = memtable.insert(e.key, e.value, e.version) {
                    history.entry(key).or_default().insert(0, old);
                }
            }
            last = Some(match last {
                Some(l) => l.max(rec.block),
                None => rec.block,
            });
        }
        let retain_extra = cfg.retained_versions.max(1) - 1;
        history.retain(|_, chain| {
            trim_history_chain(chain, None, retain_extra);
            !chain.is_empty()
        });

        let mut wal = WalWriter::open(dir.join(WAL_FILE), cfg.sync_writes)?;
        wal.set_fault_policy(cfg.wal_faults.clone());
        Ok(LsmStateDb {
            dir,
            cfg,
            inner: RwLock::new(Inner { memtable, tables, next_file_id, flushed_block, history }),
            wal: Mutex::new(wal),
            last_block: AtomicU64::new(last.unwrap_or(NO_BLOCK)),
            commit_lock: Mutex::new(()),
            read_scratch: Mutex::new(ReadScratch::default()),
            pins: Arc::new(PinRegistry::new()),
            counters: StoreCounters::new(),
            sink: TraceSink::disabled(),
        })
    }

    /// Attaches a flight-recorder sink; every group-commit WAL record
    /// emits one [`EventKind::WalRecord`] through it.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.sink = sink;
        self
    }

    fn load_manifest(dir: &Path) -> Result<(Vec<Arc<SsTableReader>>, u64, Option<BlockNum>)> {
        let path = dir.join(MANIFEST);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Vec::new(), 0, None));
            }
            Err(e) => return Err(e.into()),
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header != "fabric-lsm v1" {
            return Err(Error::Corruption(format!("bad manifest header: {header:?}")));
        }
        let next_file_id: u64 = lines
            .next()
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| Error::Corruption("manifest missing next_file_id".into()))?;
        let flushed_block = match lines.next() {
            Some("-") => None,
            Some(l) => Some(l.parse().map_err(|_| {
                Error::Corruption(format!("manifest bad flushed_block: {l:?}"))
            })?),
            None => return Err(Error::Corruption("manifest missing flushed_block".into())),
        };
        let mut tables = Vec::new();
        for name in lines {
            if name.is_empty() {
                continue;
            }
            tables.push(Arc::new(SsTableReader::open(dir.join(name))?));
        }
        Ok((tables, next_file_id, flushed_block))
    }

    fn write_manifest(dir: &Path, inner: &Inner) -> Result<()> {
        let mut text = String::from("fabric-lsm v1\n");
        text.push_str(&inner.next_file_id.to_string());
        text.push('\n');
        match inner.flushed_block {
            Some(b) => text.push_str(&b.to_string()),
            None => text.push('-'),
        }
        text.push('\n');
        for t in &inner.tables {
            let name = t
                .path()
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| Error::InvalidState("sstable path has no file name".into()))?;
            text.push_str(name);
            text.push('\n');
        }
        let tmp = dir.join("MANIFEST.tmp");
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, dir.join(MANIFEST))?;
        Ok(())
    }

    /// Flushes the memtable (if non-empty) and compacts if needed.
    /// Caller must hold the commit lock.
    fn flush_locked(&self, current_block: BlockNum) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let entries = inner.memtable.drain_sorted();
        let id = inner.next_file_id;
        inner.next_file_id += 1;
        let name = format!("sst-{id:06}.sst");
        let path = self.dir.join(&name);
        write_sstable(&path, &entries, &self.cfg.sstable)?;
        inner.tables.insert(0, Arc::new(SsTableReader::open(&path)?));
        inner.flushed_block = Some(current_block);

        let mut obsolete: Vec<PathBuf> = Vec::new();
        if inner.tables.len() > self.cfg.compaction_threshold {
            obsolete = self.compact_locked(&mut inner)?;
        }

        Self::write_manifest(&self.dir, &inner)?;

        // Rotate the WAL: everything it held is now in runs.
        {
            let mut wal = self.wal.lock();
            let wal_path = wal.path().to_path_buf();
            // Replace the writer with a fresh one over a truncated file.
            std::fs::write(&wal_path, b"")?;
            *wal = WalWriter::open(&wal_path, self.cfg.sync_writes)?;
            wal.set_fault_policy(self.cfg.wal_faults.clone());
        }

        // Old runs are unreachable from the new manifest; delete them.
        for p in obsolete {
            let _ = std::fs::remove_file(p);
        }
        Ok(())
    }

    /// Full-merge compaction: all runs into one, newest value per key wins,
    /// tombstones dropped (a full merge is the bottom level). Facts the
    /// merge displaces — shadowed older versions and the dropped
    /// tombstones — move to the in-memory history overlay instead of
    /// vanishing, trimmed to what live pins and the retention budget still
    /// need, so snapshot reads-at-height survive compaction. Returns paths
    /// of the now-obsolete run files.
    fn compact_locked(&self, inner: &mut Inner) -> Result<Vec<PathBuf>> {
        let mut merged: BTreeMap<Key, DiskEntry> = BTreeMap::new();
        let mut displaced: Vec<(Key, MemEntry)> = Vec::new();
        // Oldest first so newer runs overwrite.
        for table in inner.tables.iter().rev() {
            for e in table.scan_all()? {
                if let Some(old) = merged.insert(e.key.clone(), e) {
                    displaced
                        .push((old.key, MemEntry { value: old.value, version: old.version }));
                }
            }
        }
        let mut survivors: Vec<DiskEntry> = Vec::with_capacity(merged.len());
        for (_, e) in merged {
            if e.value.is_some() {
                survivors.push(e);
            } else {
                displaced.push((e.key, MemEntry { value: None, version: e.version }));
            }
        }

        let pin_floor = self.pin_floor();
        let retain_extra = self.cfg.retained_versions.max(1) - 1;
        let mut touched: std::collections::BTreeSet<Key> = std::collections::BTreeSet::new();
        for (key, entry) in displaced {
            inner.history.entry(key.clone()).or_default().push(entry);
            touched.insert(key);
        }
        let mut trimmed = 0usize;
        for key in touched {
            let empty = {
                let chain = inner.history.get_mut(&key).expect("chain just touched");
                // Displaced run facts interleave with memtable-displaced
                // ones by version; restore newest-first order before
                // trimming.
                chain.sort_by_key(|e| std::cmp::Reverse(e.version));
                trimmed += trim_history_chain(chain, pin_floor, retain_extra);
                chain.is_empty()
            };
            if empty {
                inner.history.remove(&key);
            }
        }
        if trimmed > 0 {
            self.counters.record_gc_trimmed(trimmed as u64);
        }

        let id = inner.next_file_id;
        inner.next_file_id += 1;
        let name = format!("sst-{id:06}.sst");
        let path = self.dir.join(&name);
        write_sstable(&path, &survivors, &self.cfg.sstable)?;

        let obsolete = inner.tables.iter().map(|t| t.path().to_path_buf()).collect();
        inner.tables = vec![Arc::new(SsTableReader::open(&path)?)];
        Ok(obsolete)
    }

    /// Floor for history trimming: the oldest live pin, clamped by the
    /// already-published watermark (same race argument as the in-memory
    /// engine's `gc_floor`). `None` when no pins are live.
    fn pin_floor(&self) -> Option<BlockNum> {
        self.pins.oldest().map(|p| p.min(self.last_committed_block()))
    }

    /// Resolves `key` at `height` across memtable, history overlay, and
    /// runs (newest-first, stopping at the first run fact old enough to
    /// answer — older runs hold only older facts for a key). Caller holds
    /// the inner lock.
    fn resolve_at_locked(&self, inner: &Inner, key: &Key, height: BlockNum) -> Result<SnapshotGet> {
        let mut acc = ResolveAcc::default();
        if let Some(e) = inner.memtable.get(key) {
            acc.consider(e.version, &e.value, height);
        }
        if let Some(chain) = inner.history.get(key) {
            for e in chain {
                acc.consider(e.version, &e.value, height);
            }
        }
        for table in &inner.tables {
            if let Some(e) = table.get(key)? {
                let old_enough = e.version.block <= height;
                acc.consider(e.version, &e.value, height);
                if old_enough {
                    break;
                }
            }
        }
        Ok(acc.finish())
    }

    /// Length of `key`'s history-overlay chain (diagnostics for GC tests).
    pub fn history_len(&self, key: &Key) -> usize {
        self.inner.read().history.get(key).map_or(0, Vec::len)
    }

    /// Number of live snapshot pins (diagnostics).
    pub fn live_pins(&self) -> usize {
        self.pins.live_pins()
    }

    /// Number of sorted runs currently on disk (diagnostics).
    pub fn run_count(&self) -> usize {
        self.inner.read().tables.len()
    }

    /// Forces a memtable flush (testing/maintenance).
    pub fn force_flush(&self) -> Result<()> {
        let _c = self.commit_lock.lock();
        self.counters.record_commit_ticket();
        let current = self.last_block.load(Ordering::Acquire);
        if current == NO_BLOCK {
            return Ok(());
        }
        self.flush_locked(current)
    }
}

impl StateStore for LsmStateDb {
    fn get(&self, key: &Key) -> Result<Option<VersionedValue>> {
        self.counters.record_point_get();
        let inner = self.inner.read();
        if let Some(e) = inner.memtable.get(key) {
            return Ok(e
                .value
                .clone()
                .map(|v| VersionedValue::new(v, e.version)));
        }
        for table in &inner.tables {
            if let Some(e) = table.get(key)? {
                return Ok(e.value.map(|v| VersionedValue::new(v, e.version)));
            }
        }
        Ok(None)
    }

    fn apply_write_batch(&self, batch: &WriteBatch<'_>) -> Result<()> {
        let _c = self.commit_lock.lock();
        self.counters.record_commit_ticket();
        let last = self.last_block.load(Ordering::Acquire);
        let expected = if last == NO_BLOCK { 0 } else { last + 1 };
        if batch.block != expected {
            return Err(Error::InvalidState(format!(
                "apply_block({}) out of order: expected block {expected}",
                batch.block
            )));
        }

        let entries: Vec<DiskEntry> = batch
            .writes
            .iter()
            .map(|w| DiskEntry {
                key: w.key.clone(),
                value: w.value.cloned(),
                version: Version::new(batch.block, w.tx),
            })
            .collect();

        // 1. Durable intent: the whole block as ONE group-commit WAL record
        //    — a single frame write and a single flush (plus one fsync when
        //    `sync_writes`), regardless of how many writes the block holds.
        let mut record = WalRecord { block: batch.block, entries };
        self.wal.lock().append(&record)?;
        self.counters.record_wal_record(self.cfg.sync_writes);
        if self.sink.is_enabled() {
            self.sink.emit(EventKind::WalRecord {
                block: batch.block,
                fsync: self.cfg.sync_writes,
            });
        }

        // 2. Visible state: the WAL frame was encoded from borrows, so the
        //    entries can move straight into the memtable (no second clone).
        //    Superseded memtable facts migrate to the history overlay so
        //    pinned snapshots keep resolving at their height; the trim floor
        //    is computed *before* publication, which closes the race with a
        //    concurrent `pin_snapshot` (see `MemStateDb::gc_floor`).
        let watermark = self.last_committed_block();
        let floor = self.pins.oldest().map_or(watermark, |p| p.min(watermark));
        let retain_extra = self.cfg.retained_versions.max(1) - 1;
        let needs_flush = {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            let mut trimmed = 0usize;
            for e in record.entries.drain(..) {
                let key = e.key.clone();
                if let Some(old) = inner.memtable.insert(e.key, e.value, e.version) {
                    let chain = inner.history.entry(key).or_default();
                    chain.insert(0, old);
                    trimmed += trim_history_chain(chain, Some(floor), retain_extra);
                }
            }
            if trimmed > 0 {
                self.counters.record_gc_trimmed(trimmed as u64);
            }
            inner.memtable.approx_bytes() >= self.cfg.memtable_max_bytes
        };
        self.counters.record_block_applied(1);

        // 3. Publish.
        self.last_block.store(batch.block, Ordering::Release);

        // 4. Maintenance.
        if needs_flush {
            self.flush_locked(batch.block)?;
        }

        // Telemetry gauges, refreshed once per applied block: memtable
        // occupancy (post-flush), GC floor, live pins.
        self.counters.set_memtable_bytes(self.inner.read().memtable.approx_bytes() as u64);
        self.counters.set_gc_floor(self.pin_floor().unwrap_or(batch.block));
        self.counters.set_live_pins(self.pins.live_pins() as u64);
        Ok(())
    }

    fn multi_get_versions_into(
        &self,
        keys: &[Key],
        out: &mut Vec<Option<Version>>,
    ) -> Result<()> {
        out.clear();
        out.resize(keys.len(), None);
        let scratch = &mut *self.read_scratch.lock();
        scratch.order.clear();
        scratch.order.extend(0..keys.len() as u32);
        scratch
            .order
            .sort_unstable_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));

        let inner = self.inner.read();
        // Memtable pass. A hit resolves the key even when it is a tombstone
        // (the newest fact about the key is "absent"); only true misses fall
        // through to the runs.
        scratch.pending.clear();
        for &i in &scratch.order {
            match inner.memtable.get(&keys[i as usize]) {
                Some(e) => out[i as usize] = e.value.as_ref().map(|_| e.version),
                None => scratch.pending.push(i),
            }
        }
        // Probe the runs newest-first, each seeing the still-unresolved keys
        // in sorted order: one bloom consult per key per run, forward-moving
        // sparse-index walks.
        for table in &inner.tables {
            if scratch.pending.is_empty() {
                break;
            }
            scratch.still_pending.clear();
            for &i in &scratch.pending {
                match table.get(&keys[i as usize])? {
                    Some(e) => out[i as usize] = e.value.as_ref().map(|_| e.version),
                    None => scratch.still_pending.push(i),
                }
            }
            std::mem::swap(&mut scratch.pending, &mut scratch.still_pending);
        }
        self.counters.record_multi_get(keys.len() as u64);
        Ok(())
    }

    fn retained_versions(&self) -> usize {
        self.cfg.retained_versions.max(1)
    }

    fn pin_snapshot(&self) -> StateSnapshot {
        // Register-then-recheck: if a commit published between reading the
        // watermark and registering the pin, retry — guarantees any trim
        // that could hurt this height starts after the pin is visible.
        loop {
            let h = self.last_committed_block();
            self.pins.pin(h);
            if self.last_committed_block() == h {
                self.counters.record_snapshot_pin();
                return StateSnapshot::registered(h, Arc::clone(&self.pins));
            }
            self.pins.unpin(h);
        }
    }

    fn pin_snapshot_at(&self, height: BlockNum) -> StateSnapshot {
        self.pins.pin(height);
        self.counters.record_snapshot_pin();
        StateSnapshot::registered(height, Arc::clone(&self.pins))
    }

    fn get_at(&self, key: &Key, height: BlockNum) -> Result<SnapshotGet> {
        self.counters.record_snapshot_read(1);
        let inner = self.inner.read();
        self.resolve_at_locked(&inner, key, height)
    }

    fn multi_get_at_into(
        &self,
        keys: &[Key],
        height: BlockNum,
        out: &mut Vec<SnapshotGet>,
    ) -> Result<()> {
        out.clear();
        let inner = self.inner.read();
        for key in keys {
            out.push(self.resolve_at_locked(&inner, key, height)?);
        }
        self.counters.record_snapshot_read(keys.len() as u64);
        Ok(())
    }

    fn scan_range_at(
        &self,
        start: &Key,
        end: &Key,
        height: BlockNum,
    ) -> Result<Vec<(Key, SnapshotGet)>> {
        let inner = self.inner.read();
        let mut acc: BTreeMap<Key, ResolveAcc> = BTreeMap::new();
        for table in &inner.tables {
            for e in table.scan_all()? {
                if &e.key >= start && &e.key < end {
                    acc.entry(e.key).or_default().consider(e.version, &e.value, height);
                }
            }
        }
        for (k, chain) in inner.history.range(start.clone()..end.clone()) {
            let slot = acc.entry(k.clone()).or_default();
            for e in chain {
                slot.consider(e.version, &e.value, height);
            }
        }
        for (k, e) in inner.memtable.iter() {
            if k >= start && k < end {
                acc.entry(k.clone()).or_default().consider(e.version, &e.value, height);
            }
        }
        let out: Vec<(Key, SnapshotGet)> = acc
            .into_iter()
            .filter_map(|(k, a)| {
                let got = a.finish();
                got.at_height.is_some().then_some((k, got))
            })
            .collect();
        self.counters.record_snapshot_read(out.len() as u64);
        Ok(out)
    }

    fn collect_garbage(&self) -> Result<usize> {
        let _c = self.commit_lock.lock();
        self.counters.record_commit_ticket();
        let pin_floor = self.pin_floor();
        let retain_extra = self.cfg.retained_versions.max(1) - 1;
        let mut trimmed = 0usize;
        let mut inner = self.inner.write();
        inner.history.retain(|_, chain| {
            trimmed += trim_history_chain(chain, pin_floor, retain_extra);
            !chain.is_empty()
        });
        if trimmed > 0 {
            self.counters.record_gc_trimmed(trimmed as u64);
        }
        Ok(trimmed)
    }

    fn counters(&self) -> StoreCounters {
        self.counters.clone()
    }

    fn last_committed_block(&self) -> BlockNum {
        let v = self.last_block.load(Ordering::Acquire);
        if v == NO_BLOCK {
            0
        } else {
            v
        }
    }

    fn approximate_len(&self) -> usize {
        let inner = self.inner.read();
        inner.memtable.len()
            + inner.tables.iter().map(|t| t.entry_count() as usize).sum::<usize>()
    }

    fn scan_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, VersionedValue)>> {
        // Merge all runs oldest-first so newer entries (and tombstones)
        // shadow older ones, then overlay the memtable.
        let inner = self.inner.read();
        let mut merged: BTreeMap<Key, Option<VersionedValue>> = BTreeMap::new();
        for table in inner.tables.iter().rev() {
            for e in table.scan_all()? {
                if &e.key >= start && &e.key < end {
                    merged.insert(
                        e.key,
                        e.value.map(|v| VersionedValue::new(v, e.version)),
                    );
                }
            }
        }
        for (k, e) in inner.memtable.iter() {
            if k >= start && k < end {
                merged.insert(
                    k.clone(),
                    e.value.clone().map(|v| VersionedValue::new(v, e.version)),
                );
            }
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, vv)| vv.map(|vv| (k, vv)))
            .collect())
    }

    fn scan_all(&self) -> Result<Vec<(Key, VersionedValue)>> {
        // Unbounded variant of `scan_range`: merge all runs oldest-first so
        // newer entries (and tombstones) shadow older ones, then overlay
        // the memtable.
        let inner = self.inner.read();
        let mut merged: BTreeMap<Key, Option<VersionedValue>> = BTreeMap::new();
        for table in inner.tables.iter().rev() {
            for e in table.scan_all()? {
                merged.insert(e.key, e.value.map(|v| VersionedValue::new(v, e.version)));
            }
        }
        for (k, e) in inner.memtable.iter() {
            merged.insert(
                k.clone(),
                e.value.clone().map(|v| VersionedValue::new(v, e.version)),
            );
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, vv)| vv.map(|vv| (k, vv)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CommitWrite;
    use fabric_common::Value;

    fn k(i: u64) -> Key {
        Key::from(format!("key-{i:06}"))
    }
    fn v(n: i64) -> Value {
        Value::from_i64(n)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fabric-lsm-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg() -> LsmConfig {
        LsmConfig {
            memtable_max_bytes: 2048, // tiny: force frequent flushes
            compaction_threshold: 3,
            ..LsmConfig::default()
        }
    }

    #[test]
    fn basic_put_get() {
        let dir = tmpdir("basic");
        let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
        db.apply_block(0, &[CommitWrite::put(k(1), v(10), 0)]).unwrap();
        let got = db.get(&k(1)).unwrap().unwrap();
        assert_eq!(got.value, v(10));
        assert_eq!(got.version, Version::new(0, 0));
        assert!(db.get(&k(99)).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_blocks_rejected() {
        let dir = tmpdir("order");
        let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
        assert!(db.apply_block(1, &[]).is_err());
        db.apply_block(0, &[]).unwrap();
        assert!(db.apply_block(0, &[]).is_err());
        assert!(db.apply_block(2, &[]).is_err());
        db.apply_block(1, &[]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn survives_reopen_without_flush() {
        let dir = tmpdir("reopen-wal");
        {
            let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
            db.apply_block(0, &[CommitWrite::put(k(1), v(1), 0)]).unwrap();
            db.apply_block(1, &[CommitWrite::put(k(2), v(2), 0)]).unwrap();
        }
        let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
        assert_eq!(db.last_committed_block(), 1);
        assert_eq!(db.get(&k(1)).unwrap().unwrap().value, v(1));
        assert_eq!(db.get(&k(2)).unwrap().unwrap().value, v(2));
        assert_eq!(db.get(&k(2)).unwrap().unwrap().version, Version::new(1, 0));
        // Engine keeps accepting blocks in order after reopen.
        db.apply_block(2, &[CommitWrite::put(k(3), v(3), 0)]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_and_reopen() {
        let dir = tmpdir("reopen-flush");
        {
            let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
            for b in 0..20u64 {
                let writes: Vec<CommitWrite> = (0..10)
                    .map(|i| CommitWrite::put(k(b * 10 + i), v((b * 10 + i) as i64), i as u32))
                    .collect();
                db.apply_block(b, &writes).unwrap();
            }
            assert!(db.run_count() >= 1, "tiny memtable must have flushed");
        }
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        assert_eq!(db.last_committed_block(), 19);
        for i in (0..200u64).step_by(17) {
            let got = db.get(&k(i)).unwrap().unwrap();
            assert_eq!(got.value, v(i as i64), "key {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrites_return_newest_across_runs() {
        let dir = tmpdir("overwrite");
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        // Write key 5 in many blocks, with filler to force flushes between.
        for b in 0..30u64 {
            let mut writes = vec![CommitWrite::put(k(5), v(b as i64), 0)];
            for i in 0..8 {
                writes.push(CommitWrite::put(k(1000 + b * 8 + i), v(0), 1 + i as u32));
            }
            db.apply_block(b, &writes).unwrap();
        }
        let got = db.get(&k(5)).unwrap().unwrap();
        assert_eq!(got.value, v(29));
        assert_eq!(got.version.block, 29);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deletes_survive_flush_and_reopen() {
        let dir = tmpdir("delete");
        {
            let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
            db.apply_block(0, &[CommitWrite::put(k(1), v(1), 0)]).unwrap();
            db.force_flush().unwrap();
            db.apply_block(1, &[CommitWrite::delete(k(1), 0)]).unwrap();
            assert!(db.get(&k(1)).unwrap().is_none(), "tombstone in memtable");
            db.force_flush().unwrap();
            assert!(db.get(&k(1)).unwrap().is_none(), "tombstone in run shadows older run");
        }
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        assert!(db.get(&k(1)).unwrap().is_none(), "tombstone after reopen");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reduces_runs_and_preserves_data() {
        let dir = tmpdir("compact");
        let cfg = LsmConfig { compaction_threshold: 2, ..tiny_cfg() };
        let db = LsmStateDb::open(&dir, cfg.clone()).unwrap();
        for b in 0..40u64 {
            let writes: Vec<CommitWrite> = (0..10)
                .map(|i| CommitWrite::put(k((b * 10 + i) % 100), v(b as i64), i as u32))
                .collect();
            db.apply_block(b, &writes).unwrap();
        }
        assert!(db.run_count() <= cfg.compaction_threshold + 1);
        // Every key in 0..100 was last written by some block; check a few.
        for i in (0..100u64).step_by(11) {
            assert!(db.get(&k(i)).unwrap().is_some(), "key {i} lost in compaction");
        }
        // Reopen and verify again.
        drop(db);
        let db = LsmStateDb::open(&dir, cfg).unwrap();
        for i in (0..100u64).step_by(11) {
            assert!(db.get(&k(i)).unwrap().is_some(), "key {i} lost after reopen");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_tombstones() {
        let dir = tmpdir("compact-tomb");
        let cfg = LsmConfig { compaction_threshold: 1, ..tiny_cfg() };
        let db = LsmStateDb::open(&dir, cfg).unwrap();
        db.apply_block(0, &[CommitWrite::put(k(1), v(1), 0), CommitWrite::put(k(2), v(2), 1)])
            .unwrap();
        db.force_flush().unwrap();
        db.apply_block(1, &[CommitWrite::delete(k(1), 0)]).unwrap();
        db.force_flush().unwrap(); // triggers compaction (threshold 1)
        assert_eq!(db.run_count(), 1);
        assert!(db.get(&k(1)).unwrap().is_none());
        assert_eq!(db.get(&k(2)).unwrap().unwrap().value, v(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_returns_newest_version_across_flushes_and_compaction() {
        // Regression: a key rewritten in many blocks ends up in several
        // SSTable runs (and, past the threshold, in compacted ones); the
        // read path must always surface the newest version, never an older
        // run's copy.
        let dir = tmpdir("newest");
        let cfg = LsmConfig { compaction_threshold: 2, ..tiny_cfg() };
        let db = LsmStateDb::open(&dir, cfg.clone()).unwrap();
        let hot = k(7);
        for b in 0..12u64 {
            // The hot key plus filler so each flush produces a real run.
            let mut writes = vec![CommitWrite::put(hot.clone(), v(1000 + b as i64), 0)];
            writes.extend((0..8).map(|i| CommitWrite::put(k(100 + b * 8 + i), v(b as i64), 1 + i as u32)));
            db.apply_block(b, &writes).unwrap();
            db.force_flush().unwrap();
            let got = db.get(&hot).unwrap().unwrap();
            assert_eq!(got.value, v(1000 + b as i64), "stale read at block {b}");
            assert_eq!(got.version, Version::new(b, 0));
        }
        assert!(db.run_count() <= cfg.compaction_threshold + 1, "compaction ran");
        // Unflushed memtable overwrite beats every on-disk run.
        db.apply_block(12, &[CommitWrite::put(hot.clone(), v(9999), 0)]).unwrap();
        assert_eq!(db.get(&hot).unwrap().unwrap().value, v(9999));
        // And the newest version survives a reopen.
        drop(db);
        let db = LsmStateDb::open(&dir, cfg).unwrap();
        let got = db.get(&hot).unwrap().unwrap();
        assert_eq!(got.value, v(9999));
        assert_eq!(got.version, Version::new(12, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_engine_reopen() {
        let dir = tmpdir("empty");
        {
            let _db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
        }
        let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
        assert_eq!(db.last_committed_block(), 0);
        assert_eq!(db.approximate_len(), 0);
        db.apply_block(0, &[]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn works_behind_state_store_trait_object() {
        let dir = tmpdir("dyn");
        let db: Arc<dyn StateStore> =
            Arc::new(LsmStateDb::open(&dir, LsmConfig::default()).unwrap());
        db.apply_block(0, &[CommitWrite::put(k(1), v(1), 0)]).unwrap();
        assert_eq!(db.get(&k(1)).unwrap().unwrap().value, v(1));
        assert_eq!(db.last_committed_block(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_range_merges_runs_and_memtable() {
        let dir = tmpdir("scan");
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        // Older run: keys 0..10.
        let writes: Vec<CommitWrite> =
            (0..10).map(|i| CommitWrite::put(k(i), v(i as i64), i as u32)).collect();
        db.apply_block(0, &writes).unwrap();
        db.force_flush().unwrap();
        // Newer run: overwrite key 3, delete key 4.
        db.apply_block(
            1,
            &[CommitWrite::put(k(3), v(333), 0), CommitWrite::delete(k(4), 1)],
        )
        .unwrap();
        db.force_flush().unwrap();
        // Memtable: overwrite key 5, add key 100.
        db.apply_block(2, &[CommitWrite::put(k(5), v(555), 0), CommitWrite::put(k(100), v(1), 1)])
            .unwrap();

        let got = db.scan_range(&k(0), &k(999_999)).unwrap();
        let by_key: std::collections::HashMap<String, i64> = got
            .iter()
            .map(|(key, vv)| (key.to_string(), vv.value.as_i64().unwrap()))
            .collect();
        assert_eq!(by_key.len(), 10, "10 original - 1 deleted + 1 new");
        assert_eq!(by_key[&k(3).to_string()], 333, "newer run shadows older");
        assert!(!by_key.contains_key(&k(4).to_string()), "tombstone hides entry");
        assert_eq!(by_key[&k(5).to_string()], 555, "memtable shadows runs");
        assert_eq!(by_key[&k(100).to_string()], 1);
        // Sorted ascending.
        let keys: Vec<&String> = {
            let mut ks: Vec<&String> = by_key.keys().collect();
            ks.sort();
            ks
        };
        let got_keys: Vec<String> = got.iter().map(|(key, _)| key.to_string()).collect();
        assert_eq!(got_keys, keys.into_iter().cloned().collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_recovers_prefix() {
        let dir = tmpdir("torn");
        {
            let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
            db.apply_block(0, &[CommitWrite::put(k(1), v(1), 0)]).unwrap();
            db.apply_block(1, &[CommitWrite::put(k(2), v(2), 0)]).unwrap();
        }
        // Tear the WAL tail.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 4]).unwrap();

        let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
        assert_eq!(db.last_committed_block(), 0);
        assert_eq!(db.get(&k(1)).unwrap().unwrap().value, v(1));
        assert!(db.get(&k(2)).unwrap().is_none());
        // The engine continues from block 1.
        db.apply_block(1, &[CommitWrite::put(k(2), v(22), 0)]).unwrap();
        assert_eq!(db.get(&k(2)).unwrap().unwrap().value, v(22));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_then_reopen_recovers() {
        use super::super::wal::{WalFaultPolicy, WalIoFault};

        /// Tears the append of one block part-way through its frame.
        struct TearBlock(BlockNum);
        impl WalFaultPolicy for TearBlock {
            fn on_append(&self, block: BlockNum) -> WalIoFault {
                if block == self.0 {
                    WalIoFault::TornWrite { keep: 11 }
                } else {
                    WalIoFault::None
                }
            }
        }

        let dir = tmpdir("inject-torn");
        {
            let cfg = LsmConfig { wal_faults: Some(Arc::new(TearBlock(2))), ..tiny_cfg() };
            let db = LsmStateDb::open(&dir, cfg).unwrap();
            db.apply_block(0, &[CommitWrite::put(k(1), v(1), 0)]).unwrap();
            db.apply_block(1, &[CommitWrite::put(k(2), v(2), 0)]).unwrap();
            // Block 2's WAL append tears mid-frame: the commit fails and
            // the process is modelled as crashed (db dropped below).
            let err = db.apply_block(2, &[CommitWrite::put(k(3), v(3), 0)]).unwrap_err();
            assert!(matches!(err, Error::Io(_)), "unexpected error: {err}");
        }
        // Recovery without the fault policy: the torn frame is discarded,
        // blocks 0–1 survive, and block 2 can be recommitted.
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        assert_eq!(db.last_committed_block(), 1);
        assert_eq!(db.get(&k(1)).unwrap().unwrap().value, v(1));
        assert_eq!(db.get(&k(2)).unwrap().unwrap().value, v(2));
        assert!(db.get(&k(3)).unwrap().is_none(), "torn block must not surface");
        db.apply_block(2, &[CommitWrite::put(k(3), v(33), 0)]).unwrap();
        assert_eq!(db.get(&k(3)).unwrap().unwrap().value, v(33));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_at_resolves_heights_across_memtable_and_history() {
        let dir = tmpdir("at-mem");
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        db.apply_block(0, &[CommitWrite::put(k(1), v(10), 0)]).unwrap();
        db.apply_block(1, &[CommitWrite::put(k(1), v(11), 0)]).unwrap();
        db.apply_block(2, &[CommitWrite::delete(k(1), 0)]).unwrap();

        let at0 = db.get_at(&k(1), 0).unwrap();
        assert_eq!(at0.at_height.as_ref().unwrap().value, v(10));
        assert!(at0.is_stale_at(0), "newer committed fact exists");
        let at1 = db.get_at(&k(1), 1).unwrap();
        assert_eq!(at1.at_height.as_ref().unwrap().value, v(11));
        let at2 = db.get_at(&k(1), 2).unwrap();
        assert!(at2.at_height.is_none(), "deleted as of height 2");
        assert_eq!(at2.newest, Some((Version::new(2, 0), None)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_height_survives_flush_and_compaction() {
        let dir = tmpdir("at-pin");
        let cfg =
            LsmConfig { compaction_threshold: 1, retained_versions: 1, ..tiny_cfg() };
        let db = LsmStateDb::open(&dir, cfg).unwrap();
        db.apply_block(
            0,
            &[CommitWrite::put(k(1), v(10), 0), CommitWrite::put(k(2), v(20), 1)],
        )
        .unwrap();
        let snap = db.pin_snapshot();
        assert_eq!(snap.height(), 0);

        // Overwrite key 1 and delete key 2, forcing flushes (and, with
        // threshold 1, a compaction) in between.
        db.apply_block(
            1,
            &[CommitWrite::put(k(1), v(11), 0), CommitWrite::delete(k(2), 1)],
        )
        .unwrap();
        db.force_flush().unwrap();
        db.apply_block(2, &[CommitWrite::put(k(1), v(12), 0)]).unwrap();
        db.force_flush().unwrap();
        assert_eq!(db.run_count(), 1, "compaction ran");

        let at0 = db.get_at(&k(1), 0).unwrap();
        assert_eq!(
            at0.at_height.unwrap(),
            VersionedValue::new(v(10), Version::new(0, 0)),
            "pinned height resolves through history despite compaction"
        );
        let k2 = db.get_at(&k(2), 0).unwrap();
        assert_eq!(
            k2.at_height.unwrap().value,
            v(20),
            "key deleted after the pin is still visible at the pinned height"
        );

        // Dropping the pin and collecting garbage reclaims the history
        // (retained_versions = 1 keeps no extras).
        drop(snap);
        assert_eq!(db.live_pins(), 0);
        let trimmed = db.collect_garbage().unwrap();
        assert!(trimmed > 0, "quiescent sweep reclaims history");
        assert_eq!(db.history_len(&k(1)), 0);
        assert_eq!(db.history_len(&k(2)), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rebuilds_history_from_wal_replay() {
        let dir = tmpdir("at-reopen");
        {
            let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
            db.apply_block(0, &[CommitWrite::put(k(1), v(10), 0)]).unwrap();
            db.apply_block(1, &[CommitWrite::put(k(1), v(11), 0)]).unwrap();
        }
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        let snap = db.pin_snapshot_at(0);
        let at0 = db.get_at(&k(1), snap.height()).unwrap();
        assert_eq!(at0.at_height.unwrap().value, v(10), "history rebuilt from WAL");
        assert_eq!(db.history_len(&k(1)), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_range_at_reflects_pinned_height() {
        let dir = tmpdir("at-scan");
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        let writes: Vec<CommitWrite> =
            (0..5).map(|i| CommitWrite::put(k(i), v(i as i64), i as u32)).collect();
        db.apply_block(0, &writes).unwrap();
        db.force_flush().unwrap();
        let snap = db.pin_snapshot();

        // After the pin: delete key 1, rewrite key 2, create key 7.
        db.apply_block(
            1,
            &[
                CommitWrite::delete(k(1), 0),
                CommitWrite::put(k(2), v(222), 1),
                CommitWrite::put(k(7), v(7), 2),
            ],
        )
        .unwrap();

        let got = db.scan_range_at(&k(0), &k(999_999), snap.height()).unwrap();
        let pairs: Vec<(String, i64)> = got
            .iter()
            .map(|(key, g)| {
                (key.to_string(), g.at_height.as_ref().unwrap().value.as_i64().unwrap())
            })
            .collect();
        let want: Vec<(String, i64)> =
            (0..5).map(|i| (k(i).to_string(), i as i64)).collect();
        assert_eq!(pairs, want, "scan at pinned height sees only pre-pin state");
        assert!(
            got.iter().all(|(_, g)| g.at_height.as_ref().unwrap().version.block == 0),
            "no post-pin version leaks into the scan"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_reads_take_no_commit_ticket() {
        let dir = tmpdir("at-lockless");
        let db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        db.apply_block(0, &[CommitWrite::put(k(1), v(10), 0)]).unwrap();
        let before = db.counters().snapshot();
        let snap = db.pin_snapshot();
        db.get_at(&k(1), snap.height()).unwrap();
        let mut out = Vec::new();
        db.multi_get_at_into(&[k(1)], snap.height(), &mut out).unwrap();
        db.scan_range_at(&k(0), &k(999_999), snap.height()).unwrap();
        let after = db.counters().snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.commit_ticket_acquisitions, 0, "reads are lockless");
        assert_eq!(delta.snapshot_pins, 1);
        assert_eq!(delta.snapshot_read_batches, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
