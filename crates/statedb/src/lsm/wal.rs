//! Write-ahead log: one crc-framed record per committed block.
//!
//! Frame layout: `[u32 payload_len][u32 crc32(payload)][payload]` where the
//! payload is `u64 block_num, u32 entry_count, entries…` using the shared
//! [`DiskEntry`] encoding. Recovery reads frames until EOF; a torn or
//! corrupt tail frame ends replay cleanly (the block it belonged to was
//! never acknowledged), while corruption *before* the tail is reported as
//! [`fabric_common::Error::Corruption`].

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fabric_common::codec::{Decode, Decoder, Encode, Encoder};
use fabric_common::{BlockNum, Error, Result};

use super::crc::crc32;
use super::record::DiskEntry;

/// Injected outcome for one WAL append — the chaos subsystem's seam for
/// exercising torn-write recovery without killing the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalIoFault {
    /// Perform the append normally.
    None,
    /// Persist only the first `keep` bytes of the frame, then report an
    /// I/O error: the on-disk effect of a crash mid-append.
    TornWrite {
        /// Bytes of the frame that reach the disk (clamped to frame size).
        keep: usize,
    },
    /// Report an I/O error before anything is written.
    ErrorBeforeWrite,
}

/// Source of per-append fault verdicts.
///
/// Implementations must be deterministic functions of their own state so
/// fault schedules replay exactly from a seed.
pub trait WalFaultPolicy: Send + Sync {
    /// Verdict for the next append of `block`.
    fn on_append(&self, block: BlockNum) -> WalIoFault;
}

/// A block's worth of writes as recorded in the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The committed block number.
    pub block: BlockNum,
    /// The block's state writes.
    pub entries: Vec<DiskEntry>,
}

/// Appender for the write-ahead log.
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    sync_writes: bool,
    faults: Option<Arc<dyn WalFaultPolicy>>,
}

impl WalWriter {
    /// Opens (creating or appending to) the WAL at `path`.
    pub fn open(path: impl Into<PathBuf>, sync_writes: bool) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(WalWriter { file: BufWriter::new(file), path, sync_writes, faults: None })
    }

    /// Installs (or clears) the fault policy consulted on every append.
    pub fn set_fault_policy(&mut self, faults: Option<Arc<dyn WalFaultPolicy>>) {
        self.faults = faults;
    }

    /// Appends one block record, flushing (and optionally fsyncing) so the
    /// record is durable before the commit is acknowledged.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let mut enc = Encoder::with_capacity(64 * record.entries.len() + 16);
        enc.put_u64(record.block);
        enc.put_u32(record.entries.len() as u32);
        for e in &record.entries {
            e.encode(&mut enc);
        }
        let payload = enc.into_bytes();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        match self.faults.as_ref().map_or(WalIoFault::None, |f| f.on_append(record.block)) {
            WalIoFault::None => {}
            WalIoFault::TornWrite { keep } => {
                let keep = keep.min(frame.len());
                self.file.write_all(&frame[..keep])?;
                self.file.flush()?;
                if self.sync_writes {
                    self.file.get_ref().sync_data()?;
                }
                return Err(Error::Io(std::io::Error::other(format!(
                    "injected torn write: {keep}/{} bytes of block {} frame persisted",
                    frame.len(),
                    record.block
                ))));
            }
            WalIoFault::ErrorBeforeWrite => {
                return Err(Error::Io(std::io::Error::other(format!(
                    "injected wal error before writing block {}",
                    record.block
                ))));
            }
        }

        self.file.write_all(&frame)?;
        self.file.flush()?;
        if self.sync_writes {
            self.file.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads all complete records from the WAL at `path`.
///
/// Returns the records in append order. A torn tail (truncated or
/// crc-mismatching final frame) is tolerated; corruption in the middle of
/// the log is an error.
pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }

    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        if pos + 8 > buf.len() {
            // Torn frame header at the tail.
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let expect_crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + 8;
        if body_start + len > buf.len() {
            // Torn payload at the tail.
            break;
        }
        let payload = &buf[body_start..body_start + len];
        if crc32(payload) != expect_crc {
            if body_start + len == buf.len() {
                // Corrupt final frame: treat as torn tail.
                break;
            }
            return Err(Error::Corruption(format!(
                "wal crc mismatch at offset {pos} (not the tail frame)"
            )));
        }
        let mut dec = Decoder::new(payload);
        let block = dec.get_u64()?;
        let count = dec.get_u32()? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(DiskEntry::decode(&mut dec)?);
        }
        dec.finish()?;
        records.push(WalRecord { block, entries });
        pos = body_start + len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::{Key, Value, Version};

    fn entry(i: u64) -> DiskEntry {
        DiskEntry {
            key: Key::composite("k", i),
            value: Some(Value::from_i64(i as i64)),
            version: Version::new(i, 0),
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fabric-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay() {
        let dir = tmpdir("basic");
        let path = dir.join("wal");
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord { block: 0, entries: vec![entry(1), entry(2)] }).unwrap();
            w.append(&WalRecord { block: 1, entries: vec![entry(3)] }).unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].block, 0);
        assert_eq!(records[0].entries.len(), 2);
        assert_eq!(records[1].block, 1);
        assert_eq!(records[1].entries[0], entry(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_replays_empty() {
        let dir = tmpdir("missing");
        assert!(replay(&dir.join("nope")).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord { block: 0, entries: vec![entry(1)] }).unwrap();
            w.append(&WalRecord { block: 1, entries: vec![entry(2)] }).unwrap();
        }
        // Truncate mid-way through the second frame.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].block, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_frame_is_tolerated() {
        let dir = tmpdir("corrupt-tail");
        let path = dir.join("wal");
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord { block: 0, entries: vec![entry(1)] }).unwrap();
            w.append(&WalRecord { block: 1, entries: vec![entry(2)] }).unwrap();
        }
        let mut full = std::fs::read(&path).unwrap();
        let n = full.len();
        full[n - 1] ^= 0xFF; // flip a payload byte of the final frame
        std::fs::write(&path, &full).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_before_tail_is_an_error() {
        let dir = tmpdir("corrupt-mid");
        let path = dir.join("wal");
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord { block: 0, entries: vec![entry(1)] }).unwrap();
            w.append(&WalRecord { block: 1, entries: vec![entry(2)] }).unwrap();
        }
        let mut full = std::fs::read(&path).unwrap();
        full[10] ^= 0xFF; // corrupt the first frame's payload
        std::fs::write(&path, &full).unwrap();
        assert!(matches!(replay(&path), Err(Error::Corruption(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal");
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord { block: 0, entries: vec![] }).unwrap();
        }
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord { block: 1, entries: vec![entry(9)] }).unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].block, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Policy tearing the append of one specific block.
    struct TearBlock {
        block: BlockNum,
        keep: usize,
    }

    impl WalFaultPolicy for TearBlock {
        fn on_append(&self, block: BlockNum) -> WalIoFault {
            if block == self.block {
                WalIoFault::TornWrite { keep: self.keep }
            } else {
                WalIoFault::None
            }
        }
    }

    #[test]
    fn injected_torn_write_recovers_prefix() {
        let dir = tmpdir("inject-torn");
        let path = dir.join("wal");
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.set_fault_policy(Some(Arc::new(TearBlock { block: 1, keep: 7 })));
            w.append(&WalRecord { block: 0, entries: vec![entry(1)] }).unwrap();
            let err = w.append(&WalRecord { block: 1, entries: vec![entry(2)] }).unwrap_err();
            assert!(matches!(err, Error::Io(_)), "torn write surfaces as I/O error: {err}");
        }
        // The partial frame is on disk but replay stops cleanly before it.
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].block, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_error_before_write_leaves_log_clean() {
        let dir = tmpdir("inject-err");
        let path = dir.join("wal");
        struct FailAll;
        impl WalFaultPolicy for FailAll {
            fn on_append(&self, _block: BlockNum) -> WalIoFault {
                WalIoFault::ErrorBeforeWrite
            }
        }
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord { block: 0, entries: vec![entry(1)] }).unwrap();
            w.set_fault_policy(Some(Arc::new(FailAll)));
            assert!(w.append(&WalRecord { block: 1, entries: vec![entry(2)] }).is_err());
            w.set_fault_policy(None);
            w.append(&WalRecord { block: 1, entries: vec![entry(2)] }).unwrap();
        }
        // Nothing was written for the failed attempt: the log is two clean
        // frames.
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].block, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_record_round_trips() {
        let dir = tmpdir("empty-rec");
        let path = dir.join("wal");
        {
            let mut w = WalWriter::open(&path, true).unwrap();
            w.append(&WalRecord { block: 0, entries: vec![] }).unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(records, vec![WalRecord { block: 0, entries: vec![] }]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
