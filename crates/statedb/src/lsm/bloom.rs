//! Bloom filters for SSTable point-read short-circuiting.
//!
//! Classic double-hashing construction: two independent 64-bit FNV-1a
//! variants generate `k` probe positions `h1 + i·h2`. A negative answer is
//! definitive, so a point read can skip a sorted run without touching disk.

use fabric_common::codec::{Decode, Decoder, Encode, Encoder};
use fabric_common::{Error, Result};

/// A serializable bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl BloomFilter {
    /// Builds a filter sized for `expected_keys` at `bits_per_key`
    /// (10 bits/key ≈ 1% false-positive rate).
    pub fn new(expected_keys: usize, bits_per_key: usize) -> Self {
        let nbits = (expected_keys.max(1) * bits_per_key.max(1)).max(64) as u64;
        // Optimal k = ln2 * bits/key, clamped to a sane range.
        let k = ((bits_per_key as f64) * 0.69).round().clamp(1.0, 16.0) as u32;
        BloomFilter { bits: vec![0u64; nbits.div_ceil(64) as usize], nbits, k }
    }

    fn probes(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9E3779B97F4A7C15) | 1; // odd → full cycle
        let nbits = self.nbits;
        (0..self.k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % nbits)
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<u64> = self.probes(key).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// Whether `key` *may* be present (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.probes(key).all(|p| self.bits[(p / 64) as usize] >> (p % 64) & 1 == 1)
    }

    /// Size of the filter's bit array in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }
}

impl Encode for BloomFilter {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.nbits);
        enc.put_u32(self.k);
        enc.put_u32(self.bits.len() as u32);
        for w in &self.bits {
            enc.put_u64(*w);
        }
    }
}

impl Decode for BloomFilter {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let nbits = dec.get_u64()?;
        let k = dec.get_u32()?;
        let nwords = dec.get_u32()? as usize;
        if nwords != (nbits.div_ceil(64)) as usize || k == 0 || k > 64 {
            return Err(Error::Codec(format!(
                "inconsistent bloom header: nbits={nbits} k={k} words={nwords}"
            )));
        }
        let mut bits = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            bits.push(dec.get_u64()?);
        }
        Ok(BloomFilter { bits, nbits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| format!("key-{i}").into_bytes()).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..10_000u32)
            .filter(|i| f.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        // 10 bits/key targets ~1%; allow generous slack.
        assert!(fp < 400, "false-positive count too high: {fp}/10000");
    }

    #[test]
    fn empty_filter_contains_nothing_surely() {
        let f = BloomFilter::new(100, 10);
        let hits = (0..1000u32)
            .filter(|i| f.may_contain(format!("k{i}").as_bytes()))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut f = BloomFilter::new(50, 8);
        for i in 0..50u32 {
            f.insert(&i.to_le_bytes());
        }
        let bytes = f.encode_to_vec();
        let back = BloomFilter::decode_exact(&bytes).unwrap();
        assert_eq!(back, f);
        for i in 0..50u32 {
            assert!(back.may_contain(&i.to_le_bytes()));
        }
    }

    #[test]
    fn decode_rejects_inconsistent_header() {
        let mut enc = Encoder::new();
        enc.put_u64(128).put_u32(4).put_u32(99); // wrong word count
        assert!(BloomFilter::decode_exact(enc.as_slice()).is_err());
    }

    #[test]
    fn tiny_filter_still_works() {
        let mut f = BloomFilter::new(1, 1);
        f.insert(b"a");
        assert!(f.may_contain(b"a"));
    }
}
