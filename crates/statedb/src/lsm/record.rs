//! Shared on-disk entry encoding for the WAL and SSTables.
//!
//! One entry is a key plus either a tombstone or a value, always carrying
//! the writing transaction's `(block, tx)` version — the state database must
//! serve `(value, version)` pairs, so versions are durable.

use fabric_common::codec::{Decode, Decoder, Encode, Encoder};
use fabric_common::{Error, Key, Result, Value, Version};

/// One durable state entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskEntry {
    /// The key.
    pub key: Key,
    /// The value, or `None` for a tombstone (delete marker).
    pub value: Option<Value>,
    /// Version of the writing transaction.
    pub version: Version,
}

const TAG_TOMBSTONE: u8 = 0;
const TAG_PUT: u8 = 1;

impl Encode for DiskEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self.key.as_bytes());
        match &self.value {
            Some(v) => {
                enc.put_u8(TAG_PUT);
                enc.put_bytes(v.as_bytes());
            }
            None => {
                enc.put_u8(TAG_TOMBSTONE);
            }
        }
        enc.put_u64(self.version.block);
        enc.put_u32(self.version.tx);
    }
}

impl Decode for DiskEntry {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let key = Key::new(dec.get_bytes()?.to_vec());
        let value = match dec.get_u8()? {
            TAG_TOMBSTONE => None,
            TAG_PUT => Some(Value::new(dec.get_bytes()?.to_vec())),
            t => return Err(Error::Codec(format!("bad entry tag {t}"))),
        };
        let block = dec.get_u64()?;
        let tx = dec.get_u32()?;
        Ok(DiskEntry { key, value, version: Version::new(block, tx) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_put() {
        let e = DiskEntry {
            key: Key::from("acct:7"),
            value: Some(Value::from_i64(42)),
            version: Version::new(9, 3),
        };
        let bytes = e.encode_to_vec();
        assert_eq!(DiskEntry::decode_exact(&bytes).unwrap(), e);
    }

    #[test]
    fn round_trip_tombstone() {
        let e = DiskEntry { key: Key::from("dead"), value: None, version: Version::new(1, 0) };
        let bytes = e.encode_to_vec();
        let back = DiskEntry::decode_exact(&bytes).unwrap();
        assert_eq!(back.value, None);
        assert_eq!(back, e);
    }

    #[test]
    fn rejects_bad_tag() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"k").put_u8(9).put_u64(0).put_u32(0);
        assert!(DiskEntry::decode_exact(enc.as_slice()).is_err());
    }

    #[test]
    fn multiple_entries_stream() {
        let entries: Vec<DiskEntry> = (0..10)
            .map(|i| DiskEntry {
                key: Key::composite("k", i),
                value: if i % 3 == 0 { None } else { Some(Value::from_i64(i as i64)) },
                version: Version::new(i, (i * 2) as u32),
            })
            .collect();
        let mut enc = Encoder::new();
        for e in &entries {
            e.encode(&mut enc);
        }
        let buf = enc.into_bytes();
        let mut dec = Decoder::new(&buf);
        for e in &entries {
            assert_eq!(&DiskEntry::decode(&mut dec).unwrap(), e);
        }
        assert!(dec.finish().is_ok());
    }
}
