//! The in-memory sorted write buffer of the LSM engine.

use std::collections::BTreeMap;

use fabric_common::{Key, Value, Version};

use super::record::DiskEntry;

/// The newest state of a key inside the memtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEntry {
    /// `None` is a tombstone (pending delete).
    pub value: Option<Value>,
    /// Version of the writing transaction.
    pub version: Version,
}

/// Sorted in-memory buffer; newest write per key wins.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Key, MemEntry>,
    approx_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the entry for `key`, returning the superseded
    /// entry (if any) so the engine can move it to its version-history
    /// overlay instead of losing the fact.
    pub fn insert(&mut self, key: Key, value: Option<Value>, version: Version) -> Option<MemEntry> {
        let added = key.len() + value.as_ref().map_or(0, Value::len) + 24;
        let old = self.map.insert(key, MemEntry { value, version });
        if let Some(old) = &old {
            let removed = old.value.as_ref().map_or(0, Value::len) + 24;
            self.approx_bytes = self.approx_bytes.saturating_sub(removed);
        }
        self.approx_bytes += added;
        old
    }

    /// Looks up the buffered entry for `key` (a tombstone is `Some` with
    /// `value: None` — distinct from "not buffered").
    pub fn get(&self, key: &Key) -> Option<&MemEntry> {
        self.map.get(key)
    }

    /// Number of buffered keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate heap footprint in bytes, used to trigger flushes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Drains the memtable into sorted [`DiskEntry`]s for an SSTable flush.
    pub fn drain_sorted(&mut self) -> Vec<DiskEntry> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.map)
            .into_iter()
            .map(|(key, e)| DiskEntry { key, value: e.value, version: e.version })
            .collect()
    }

    /// Iterates entries in key order without draining.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &MemEntry)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: i64) -> Value {
        Value::from_i64(n)
    }

    #[test]
    fn insert_and_get() {
        let mut m = Memtable::new();
        m.insert(k("a"), Some(v(1)), Version::new(0, 0));
        assert_eq!(m.get(&k("a")).unwrap().value, Some(v(1)));
        assert!(m.get(&k("b")).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn newest_write_wins() {
        let mut m = Memtable::new();
        m.insert(k("a"), Some(v(1)), Version::new(0, 0));
        m.insert(k("a"), Some(v(2)), Version::new(1, 0));
        let e = m.get(&k("a")).unwrap();
        assert_eq!(e.value, Some(v(2)));
        assert_eq!(e.version, Version::new(1, 0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstone_is_distinct_from_absent() {
        let mut m = Memtable::new();
        m.insert(k("a"), None, Version::new(1, 0));
        let e = m.get(&k("a")).unwrap();
        assert_eq!(e.value, None);
        assert!(m.get(&k("never")).is_none());
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut m = Memtable::new();
        for key in ["z", "a", "m", "b"] {
            m.insert(k(key), Some(v(1)), Version::GENESIS);
        }
        let drained = m.drain_sorted();
        let keys: Vec<String> = drained.iter().map(|e| e.key.to_string()).collect();
        assert_eq!(keys, ["a", "b", "m", "z"]);
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn approx_bytes_tracks_replacements() {
        let mut m = Memtable::new();
        m.insert(k("a"), Some(Value::new(vec![0u8; 100])), Version::GENESIS);
        let after_big = m.approx_bytes();
        m.insert(k("a"), Some(Value::new(vec![0u8; 10])), Version::GENESIS);
        assert!(m.approx_bytes() < after_big);
        assert!(m.approx_bytes() > 0);
    }
}
