//! Immutable sorted-run files ("SSTables") with sparse index and bloom
//! filter.
//!
//! File layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────┐
//! │ entries region: DiskEntry stream, sorted by key          │
//! │ index region:  u32 count, {u32 klen, key, u64 offset}*   │
//! │ bloom region:  BloomFilter encoding                      │
//! │ footer (32B):  u64 index_off, u64 bloom_off,             │
//! │                u32 entry_count, u32 crc, u64 MAGIC       │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! The sparse index records every `interval`-th entry's key and byte
//! offset; a point read binary-searches it for the greatest indexed key ≤
//! the target, then scans at most one interval of entries. The footer crc
//! covers the footer fields so a truncated or damaged file is rejected at
//! open time.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use fabric_common::codec::{Decode, Decoder, Encode, Encoder};
use fabric_common::{Error, Key, Result};

use super::bloom::BloomFilter;
use super::crc::crc32;
use super::record::DiskEntry;

#[allow(clippy::unusual_byte_groupings)] // grouped to read "fabric code sstable"
const MAGIC: u64 = 0xFAB_0C0DE_55_7AB1E;
const FOOTER_LEN: usize = 8 + 8 + 4 + 4 + 8;

/// Build-time knobs for an SSTable.
#[derive(Debug, Clone)]
pub struct SsTableOptions {
    /// Index one entry out of every `index_interval`.
    pub index_interval: usize,
    /// Bloom-filter density.
    pub bloom_bits_per_key: usize,
}

impl Default for SsTableOptions {
    fn default() -> Self {
        SsTableOptions { index_interval: 16, bloom_bits_per_key: 10 }
    }
}

/// Writes a sorted run of entries to `path`.
///
/// `entries` must be strictly ascending by key; this is asserted because a
/// mis-sorted run would corrupt reads silently.
pub fn write_sstable(path: &Path, entries: &[DiskEntry], opts: &SsTableOptions) -> Result<()> {
    for pair in entries.windows(2) {
        if pair[0].key >= pair[1].key {
            return Err(Error::InvalidState(format!(
                "sstable entries not strictly sorted: {:?} then {:?}",
                pair[0].key, pair[1].key
            )));
        }
    }

    let mut bloom = BloomFilter::new(entries.len(), opts.bloom_bits_per_key);
    let mut body = Encoder::with_capacity(entries.len() * 48 + 1024);
    let mut index: Vec<(Key, u64)> = Vec::new();
    let interval = opts.index_interval.max(1);

    for (i, e) in entries.iter().enumerate() {
        if i % interval == 0 {
            index.push((e.key.clone(), body.len() as u64));
        }
        bloom.insert(e.key.as_bytes());
        e.encode(&mut body);
    }

    let index_off = body.len() as u64;
    body.put_u32(index.len() as u32);
    for (key, off) in &index {
        body.put_bytes(key.as_bytes());
        body.put_u64(*off);
    }
    let bloom_off = body.len() as u64;
    bloom.encode(&mut body);

    let mut footer = Encoder::with_capacity(FOOTER_LEN);
    footer.put_u64(index_off);
    footer.put_u64(bloom_off);
    footer.put_u32(entries.len() as u32);
    let crc = crc32(footer.as_slice());
    footer.put_u32(crc);
    footer.put_u64(MAGIC);

    // Write to a temp file and rename for atomicity.
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(body.as_slice())?;
        f.write_all(footer.as_slice())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// An open SSTable: footer, sparse index, and bloom filter in memory;
/// entry data read on demand.
pub struct SsTableReader {
    file: Mutex<File>,
    path: PathBuf,
    index: Vec<(Key, u64)>,
    bloom: BloomFilter,
    index_off: u64,
    entry_count: u32,
}

impl SsTableReader {
    /// Opens and verifies the SSTable at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::Corruption(format!(
                "sstable {} too short ({file_len} bytes)",
                path.display()
            )));
        }
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact(&mut footer)?;

        let mut dec = Decoder::new(&footer);
        let index_off = dec.get_u64()?;
        let bloom_off = dec.get_u64()?;
        let entry_count = dec.get_u32()?;
        let stored_crc = dec.get_u32()?;
        let magic = dec.get_u64()?;
        if magic != MAGIC {
            return Err(Error::Corruption(format!(
                "sstable {}: bad magic {magic:#x}",
                path.display()
            )));
        }
        if crc32(&footer[..20]) != stored_crc {
            return Err(Error::Corruption(format!(
                "sstable {}: footer crc mismatch",
                path.display()
            )));
        }
        let body_len = file_len - FOOTER_LEN as u64;
        if index_off > bloom_off || bloom_off > body_len {
            return Err(Error::Corruption(format!(
                "sstable {}: inconsistent offsets",
                path.display()
            )));
        }

        // Load index + bloom.
        file.seek(SeekFrom::Start(index_off))?;
        let mut meta = vec![0u8; (body_len - index_off) as usize];
        file.read_exact(&mut meta)?;
        let mut dec = Decoder::new(&meta);
        let n = dec.get_u32()? as usize;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let key = Key::new(dec.get_bytes()?.to_vec());
            let off = dec.get_u64()?;
            index.push((key, off));
        }
        let bloom = BloomFilter::decode(&mut dec)?;
        dec.finish()?;

        Ok(SsTableReader {
            file: Mutex::new(file),
            path,
            index,
            bloom,
            index_off,
            entry_count,
        })
    }

    /// Point lookup. `Ok(None)` means "this run has no entry for the key"
    /// (a tombstone is `Some(entry)` with `value: None`).
    pub fn get(&self, key: &Key) -> Result<Option<DiskEntry>> {
        if self.entry_count == 0 || !self.bloom.may_contain(key.as_bytes()) {
            return Ok(None);
        }
        // Greatest indexed key <= target.
        let slot = match self.index.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => i,
            Err(0) => return Ok(None), // target below the smallest key
            Err(i) => i - 1,
        };
        let start = self.index[slot].1;
        let end = self.index.get(slot + 1).map_or(self.index_off, |(_, off)| *off);

        let mut buf = vec![0u8; (end - start) as usize];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(start))?;
            f.read_exact(&mut buf)?;
        }
        let mut dec = Decoder::new(&buf);
        while dec.remaining() > 0 {
            let e = DiskEntry::decode(&mut dec)?;
            match e.key.cmp(key) {
                std::cmp::Ordering::Equal => return Ok(Some(e)),
                std::cmp::Ordering::Greater => return Ok(None),
                std::cmp::Ordering::Less => continue,
            }
        }
        Ok(None)
    }

    /// Reads every entry in key order (compaction input / verification).
    pub fn scan_all(&self) -> Result<Vec<DiskEntry>> {
        let mut buf = vec![0u8; self.index_off as usize];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(0))?;
            f.read_exact(&mut buf)?;
        }
        let mut dec = Decoder::new(&buf);
        let mut out = Vec::with_capacity(self.entry_count as usize);
        while dec.remaining() > 0 {
            out.push(DiskEntry::decode(&mut dec)?);
        }
        Ok(out)
    }

    /// Number of entries in the run.
    pub fn entry_count(&self) -> u32 {
        self.entry_count
    }

    /// File path of the run.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::fmt::Debug for SsTableReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SsTableReader({}, {} entries)",
            self.path.display(),
            self.entry_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::{Value, Version};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fabric-sst-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entries(n: u64) -> Vec<DiskEntry> {
        (0..n)
            .map(|i| DiskEntry {
                // Zero-pad so lexicographic order == numeric order.
                key: Key::from(format!("key-{i:08}")),
                value: if i % 7 == 3 { None } else { Some(Value::from_i64(i as i64)) },
                version: Version::new(i / 10, (i % 10) as u32),
            })
            .collect()
    }

    #[test]
    fn write_and_point_read() {
        let dir = tmpdir("point");
        let path = dir.join("t1.sst");
        let es = entries(500);
        write_sstable(&path, &es, &SsTableOptions::default()).unwrap();
        let r = SsTableReader::open(&path).unwrap();
        assert_eq!(r.entry_count(), 500);
        for e in es.iter().step_by(13) {
            let got = r.get(&e.key).unwrap().unwrap();
            assert_eq!(&got, e);
        }
        // Absent keys.
        assert!(r.get(&Key::from("zzzz")).unwrap().is_none());
        assert!(r.get(&Key::from("aaaa")).unwrap().is_none());
        assert!(r.get(&Key::from("key-00000500")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tombstones_are_returned() {
        let dir = tmpdir("tomb");
        let path = dir.join("t.sst");
        let es = entries(50);
        write_sstable(&path, &es, &SsTableOptions::default()).unwrap();
        let r = SsTableReader::open(&path).unwrap();
        // i=3 is a tombstone by construction.
        let got = r.get(&Key::from("key-00000003")).unwrap().unwrap();
        assert_eq!(got.value, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_all_round_trips() {
        let dir = tmpdir("scan");
        let path = dir.join("t.sst");
        let es = entries(257); // not a multiple of the index interval
        write_sstable(&path, &es, &SsTableOptions::default()).unwrap();
        let r = SsTableReader::open(&path).unwrap();
        assert_eq!(r.scan_all().unwrap(), es);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_table() {
        let dir = tmpdir("empty");
        let path = dir.join("t.sst");
        write_sstable(&path, &[], &SsTableOptions::default()).unwrap();
        let r = SsTableReader::open(&path).unwrap();
        assert_eq!(r.entry_count(), 0);
        assert!(r.get(&Key::from("any")).unwrap().is_none());
        assert!(r.scan_all().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsorted_input_rejected() {
        let dir = tmpdir("unsorted");
        let path = dir.join("t.sst");
        let mut es = entries(10);
        es.swap(2, 7);
        assert!(write_sstable(&path, &es, &SsTableOptions::default()).is_err());
        // Duplicate keys also rejected.
        let mut es = entries(5);
        es[1].key = es[0].key.clone();
        assert!(write_sstable(&path, &es, &SsTableOptions::default()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_footer_rejected_at_open() {
        let dir = tmpdir("corrupt");
        let path = dir.join("t.sst");
        write_sstable(&path, &entries(20), &SsTableOptions::default()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // smash the magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(SsTableReader::open(&path), Err(Error::Corruption(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_rejected_at_open() {
        let dir = tmpdir("trunc");
        let path = dir.join("t.sst");
        write_sstable(&path, &entries(20), &SsTableOptions::default()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(SsTableReader::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dense_index_interval_one() {
        let dir = tmpdir("dense");
        let path = dir.join("t.sst");
        let es = entries(64);
        let opts = SsTableOptions { index_interval: 1, bloom_bits_per_key: 10 };
        write_sstable(&path, &es, &opts).unwrap();
        let r = SsTableReader::open(&path).unwrap();
        for e in &es {
            assert_eq!(r.get(&e.key).unwrap().unwrap(), *e);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers() {
        let dir = tmpdir("conc");
        let path = dir.join("t.sst");
        let es = entries(300);
        write_sstable(&path, &es, &SsTableOptions::default()).unwrap();
        let r = std::sync::Arc::new(SsTableReader::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                let es = es.clone();
                std::thread::spawn(move || {
                    for e in es.iter().skip(t).step_by(4) {
                        assert_eq!(r.get(&e.key).unwrap().unwrap(), *e);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
