//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Used to frame WAL records and SSTable footers so that torn writes and
//! bit rot are detected on recovery rather than silently corrupting state.

/// Computes the CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental form: feed `state` from a previous call (start with
/// `0xFFFF_FFFF`, finish by XOR-ing with `0xFFFF_FFFF`).
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        let idx = ((state ^ u32::from(b)) & 0xFF) as usize;
        state = (state >> 8) ^ TABLE[idx];
    }
    state
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC-32 check: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello world, this is a longer message";
        let oneshot = crc32(data);
        let mut st = 0xFFFF_FFFF;
        for chunk in data.chunks(5) {
            st = crc32_update(st, chunk);
        }
        assert_eq!(st ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"payload bytes".to_vec();
        let before = crc32(&data);
        data[4] ^= 0x01;
        assert_ne!(crc32(&data), before);
    }
}
