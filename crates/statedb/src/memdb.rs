//! Sharded in-memory state database.
//!
//! The default engine for benchmarks: per-shard `RwLock`s keep point reads
//! and the per-key atomic updates of a block commit cheap and concurrent,
//! and an `AtomicU64` publishes the last committed block *after* all of a
//! block's writes are installed — the ordering the Fabric++ lock-free
//! early-abort check relies on (see the [`StateStore`] commit protocol).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use fabric_common::{BlockNum, Error, Key, Result, Value, Version};

use crate::store::{CommitWrite, StateStore, VersionedValue};

const DEFAULT_SHARDS: usize = 64;

/// Sharded in-memory versioned key-value store.
pub struct MemStateDb {
    shards: Vec<RwLock<HashMap<Key, VersionedValue>>>,
    /// Highest fully-visible block; `u64::MAX` encodes "nothing committed".
    last_block: AtomicU64,
    /// Serializes committers (one block at a time), independent of readers.
    commit_lock: parking_lot::Mutex<()>,
}

const NO_BLOCK: u64 = u64::MAX;

impl Default for MemStateDb {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStateDb {
    /// Creates an empty store with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store with `shards` shards (power of two enforced).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.next_power_of_two().max(1);
        MemStateDb {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            last_block: AtomicU64::new(NO_BLOCK),
            commit_lock: parking_lot::Mutex::new(()),
        }
    }

    /// Convenience: creates a store and commits `initial` as genesis
    /// (block 0), with all values at [`Version::GENESIS`].
    pub fn with_genesis(initial: impl IntoIterator<Item = (Key, Value)>) -> Self {
        let db = Self::new();
        let writes: Vec<CommitWrite> = initial
            .into_iter()
            .map(|(key, value)| CommitWrite::put(key, value, 0))
            .collect();
        db.apply_block(0, &writes).expect("genesis commit cannot fail on a fresh store");
        db
    }

    fn shard_of(&self, key: &Key) -> &RwLock<HashMap<Key, VersionedValue>> {
        // FNV-1a over the key bytes; shard count is a power of two.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in key.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }
}

impl StateStore for MemStateDb {
    fn get(&self, key: &Key) -> Result<Option<VersionedValue>> {
        Ok(self.shard_of(key).read().get(key).cloned())
    }

    fn apply_block(&self, block: BlockNum, writes: &[CommitWrite]) -> Result<()> {
        let _commit = self.commit_lock.lock();
        let last = self.last_block.load(Ordering::Acquire);
        let expected = if last == NO_BLOCK { 0 } else { last + 1 };
        if block != expected {
            return Err(Error::InvalidState(format!(
                "apply_block({block}) out of order: expected block {expected}"
            )));
        }
        for w in writes {
            let mut shard = self.shard_of(&w.key).write();
            match &w.value {
                Some(v) => {
                    shard.insert(
                        w.key.clone(),
                        VersionedValue::new(v.clone(), Version::new(block, w.tx)),
                    );
                }
                None => {
                    shard.remove(&w.key);
                }
            }
        }
        // Publish only after every write is visible (release pairs with the
        // acquire in last_committed_block / snapshot pinning).
        self.last_block.store(block, Ordering::Release);
        Ok(())
    }

    fn last_committed_block(&self) -> BlockNum {
        let v = self.last_block.load(Ordering::Acquire);
        if v == NO_BLOCK {
            0
        } else {
            v
        }
    }

    fn approximate_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn scan_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, VersionedValue)>> {
        // Hash sharding has no key order; collect matches then sort.
        let mut out: Vec<(Key, VersionedValue)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            for (k, vv) in guard.iter() {
                if k >= start && k < end {
                    out.push((k.clone(), vv.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: i64) -> Value {
        Value::from_i64(n)
    }

    #[test]
    fn genesis_and_get() {
        let db = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
        let got = db.get(&k("a")).unwrap().unwrap();
        assert_eq!(got.value, v(1));
        assert_eq!(got.version, Version::GENESIS);
        assert!(db.get(&k("zzz")).unwrap().is_none());
        assert_eq!(db.approximate_len(), 2);
        assert_eq!(db.last_committed_block(), 0);
    }

    #[test]
    fn apply_block_updates_versions() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        db.apply_block(1, &[CommitWrite::put(k("a"), v(10), 3)]).unwrap();
        let got = db.get(&k("a")).unwrap().unwrap();
        assert_eq!(got.value, v(10));
        assert_eq!(got.version, Version::new(1, 3));
        assert_eq!(db.last_committed_block(), 1);
    }

    #[test]
    fn deletes_remove_keys() {
        let db = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
        db.apply_block(1, &[CommitWrite::delete(k("a"), 0)]).unwrap();
        assert!(db.get(&k("a")).unwrap().is_none());
        assert!(db.get(&k("b")).unwrap().is_some());
        assert_eq!(db.approximate_len(), 1);
    }

    #[test]
    fn out_of_order_blocks_rejected() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        assert!(db.apply_block(2, &[]).is_err()); // gap
        assert!(db.apply_block(0, &[]).is_err()); // replay
        db.apply_block(1, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 1);
    }

    #[test]
    fn first_block_must_be_zero() {
        let db = MemStateDb::new();
        assert!(db.apply_block(1, &[]).is_err());
        db.apply_block(0, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 0);
    }

    #[test]
    fn empty_block_advances_watermark() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        db.apply_block(1, &[]).unwrap();
        db.apply_block(2, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 2);
        // Value still at genesis version.
        assert_eq!(db.get(&k("a")).unwrap().unwrap().version, Version::GENESIS);
    }

    #[test]
    fn concurrent_readers_never_see_future_watermark() {
        // The publication invariant: if a reader observes
        // last_committed_block == n, every write of block n is visible.
        let db = Arc::new(MemStateDb::with_genesis([(k("x"), v(0)), (k("y"), v(0))]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let pinned = db.last_committed_block();
                        let x = db.get(&k("x")).unwrap().unwrap();
                        let y = db.get(&k("y")).unwrap().unwrap();
                        // Writes of blocks <= pinned must be visible: the
                        // versions can never lag behind the pinned block
                        // because each block rewrites both keys.
                        assert!(x.version.block >= pinned || pinned == 0);
                        assert!(y.version.block >= pinned || pinned == 0);
                    }
                })
            })
            .collect();

        for b in 1..200u64 {
            db.apply_block(
                b,
                &[
                    CommitWrite::put(k("x"), v(b as i64), 0),
                    CommitWrite::put(k("y"), v(b as i64), 1),
                ],
            )
            .unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(db.last_committed_block(), 199);
    }

    #[test]
    fn many_keys_across_shards() {
        let db = MemStateDb::with_shards(8);
        let writes: Vec<CommitWrite> = (0..1000)
            .map(|i| CommitWrite::put(Key::composite("acct", i), v(i as i64), i as u32))
            .collect();
        db.apply_block(0, &writes).unwrap();
        assert_eq!(db.approximate_len(), 1000);
        for i in (0..1000).step_by(97) {
            let got = db.get(&Key::composite("acct", i)).unwrap().unwrap();
            assert_eq!(got.value, v(i as i64));
            assert_eq!(got.version, Version::new(0, i as u32));
        }
    }

    #[test]
    fn scan_range_returns_sorted_slice() {
        let db = MemStateDb::with_genesis([
            (k("acct:a"), v(1)),
            (k("acct:c"), v(3)),
            (k("acct:b"), v(2)),
            (k("other:z"), v(9)),
        ]);
        let got = db.scan_range(&k("acct:"), &k("acct:~")).unwrap();
        let names: Vec<String> = got.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["acct:a", "acct:b", "acct:c"]);
        assert_eq!(got[1].1.value, v(2));
        // Empty range.
        assert!(db.scan_range(&k("zzz"), &k("zzzz")).unwrap().is_empty());
        // End exclusive.
        let got = db.scan_range(&k("acct:a"), &k("acct:c")).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scan_range_reflects_deletes() {
        let db = MemStateDb::with_genesis([(k("r:1"), v(1)), (k("r:2"), v(2))]);
        db.apply_block(1, &[CommitWrite::delete(k("r:1"), 0)]).unwrap();
        let got = db.scan_range(&k("r:"), &k("r:~")).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, k("r:2"));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let db = MemStateDb::with_shards(5);
        assert_eq!(db.shards.len(), 8);
        let db = MemStateDb::with_shards(0);
        assert_eq!(db.shards.len(), 1);
    }
}
