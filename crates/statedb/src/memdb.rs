//! Sharded in-memory multi-version state database.
//!
//! The default engine for benchmarks: per-shard `RwLock`s keep point reads
//! and the per-key atomic updates of a block commit cheap and concurrent,
//! and an `AtomicU64` publishes the last committed block *after* all of a
//! block's writes are installed — the ordering the Fabric++ lock-free
//! early-abort check relies on (see the [`StateStore`] commit protocol).
//!
//! Each shard entry holds a small inline **version chain** (newest-first)
//! rather than a single versioned value: up to `retained_versions` recent
//! versions per key stay resolvable, so snapshot reads-at-height
//! ([`StateStore::get_at`] and friends) serve a consistent point-in-time
//! view without touching the commit ticket. An epoch GC — driven by the
//! commit watermark and the [`PinRegistry`] of live snapshot pins — trims
//! chains on every commit so memory stays bounded under sustained load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use std::sync::OnceLock;

use fabric_common::{
    BlockNum, Error, Key, LaneJob, LanePool, Result, StoreCounters, Value, Version,
};

use crate::pin::{PinRegistry, StateSnapshot};
use crate::store::{CommitWrite, SnapshotGet, StateStore, VersionedValue, WriteBatch};

const DEFAULT_SHARDS: usize = 64;

/// Default number of recent versions retained per key. Enough that a
/// simulation pinned a few blocks behind a fast committer still resolves
/// without relying on its pin having been registered before the trims;
/// small enough that chain scans stay in one cache line's worth of
/// entries.
const DEFAULT_RETAINED: usize = 4;

/// Blocks with at least this many writes fan their shard groups out over
/// scoped threads; smaller blocks install sequentially — thread spawn would
/// dominate, and the sequential path is allocation-free in the steady state
/// (asserted by `tests/batched_alloc.rs` and `tests/snapshot_alloc.rs`).
const PARALLEL_APPLY_MIN_WRITES: usize = 4096;

/// One committed fact in a key's version chain: the value written (or
/// `None` for a tombstone) and the version that wrote it.
#[derive(Debug, Clone)]
struct ChainEntry {
    value: Option<Value>,
    version: Version,
}

/// Newest-first chain of committed facts for one key. Invariant: never
/// empty (a chain with nothing left to say is removed from the shard map),
/// strictly decreasing versions.
type Chain = Vec<ChainEntry>;

/// Sharded in-memory versioned key-value store with per-key version chains.
pub struct MemStateDb {
    shards: Arc<Vec<RwLock<HashMap<Key, Chain>>>>,
    /// Highest fully-visible block; `u64::MAX` encodes "nothing committed".
    last_block: AtomicU64,
    /// Serializes committers (one block at a time), independent of readers.
    /// Doubles as the batched commit path's reusable shard-grouping
    /// scratch: holding it *is* the commit ticket.
    commit_lock: parking_lot::Mutex<ShardGroups>,
    /// Reusable shard-grouping scratch for batched version reads.
    read_scratch: parking_lot::Mutex<ShardGroups>,
    /// Live snapshot pins: the epoch GC never trims below the oldest.
    pins: Arc<PinRegistry>,
    /// Versions retained per key beyond what live pins require (≥ 1).
    retained: usize,
    counters: StoreCounters,
    /// Lazily-built shared state for [`StateStore::apply_write_batch_lanes`]:
    /// one persistent job reused block after block so a warm lane commit
    /// does not allocate.
    lane_apply: OnceLock<LaneApplyShared>,
}

/// The lane-apply job plus its one-time `dyn` coercion (so dispatch never
/// re-allocates the fat-pointer `Arc`).
struct LaneApplyShared {
    job: Arc<ApplyLaneJob>,
    shared: Arc<dyn LaneJob>,
}

/// Shared state the commit lanes operate on: an owned copy of the batch
/// (key/value clones are reference-count bumps, not byte copies) grouped
/// by shard. Lane `i` installs shards `i, i+lanes, …` — distinct lanes
/// touch disjoint shards, so the only cross-lane cell is the trim tally.
struct ApplyLaneJob {
    shards: Arc<Vec<RwLock<HashMap<Key, Chain>>>>,
    retained: usize,
    state: RwLock<ApplyLaneState>,
}

#[derive(Default)]
struct ApplyLaneState {
    /// Owned writes in batch order (chain entries carry the final version).
    writes: Vec<(Key, ChainEntry)>,
    /// Per-shard index lists into `writes`.
    groups: Vec<Vec<u32>>,
    floor: BlockNum,
    lanes: usize,
    trimmed: AtomicU64,
}

impl LaneJob for ApplyLaneJob {
    fn run(&self, lane: usize) {
        let st = self.state.read();
        let mut trimmed = 0u64;
        for si in (lane..self.shards.len()).step_by(st.lanes.max(1)) {
            let group = &st.groups[si];
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].write();
            for &i in group {
                let (key, entry) = &st.writes[i as usize];
                trimmed += install_entry(&mut shard, key, entry.clone(), st.floor, self.retained);
            }
        }
        if trimmed > 0 {
            st.trimmed.fetch_add(trimmed, Ordering::Relaxed);
        }
    }
}

/// Installs one write into a shard map: push the entry at the head of the
/// key's chain, trim what the floor and retention budget no longer need,
/// drop chains with nothing left to say. Returns the entries trimmed.
fn install_entry(
    shard: &mut HashMap<Key, Chain>,
    key: &Key,
    entry: ChainEntry,
    floor: BlockNum,
    retain: usize,
) -> u64 {
    let (trimmed, remove) = if let Some(chain) = shard.get_mut(key) {
        chain.insert(0, entry);
        let (dropped, dead) = trim_chain(chain, floor, retain);
        (dropped as u64, dead)
    } else {
        // A delete of a key with no retained facts has nothing to say: no
        // chain is created for it.
        if entry.value.is_some() {
            shard.insert(key.clone(), vec![entry]);
        }
        (0, false)
    };
    if remove {
        shard.remove(key);
    }
    trimmed
}

/// Per-shard index lists, reused across batches so a warm store groups
/// without allocating.
#[derive(Default)]
struct ShardGroups {
    groups: Vec<Vec<u32>>,
}

impl ShardGroups {
    /// Clears every group (keeping capacity) and ensures one group per
    /// shard exists.
    fn reset(&mut self, shards: usize) {
        if self.groups.len() < shards {
            self.groups.resize_with(shards, Vec::new);
        }
        for g in &mut self.groups {
            g.clear();
        }
    }
}

const NO_BLOCK: u64 = u64::MAX;

/// Trims `chain` (newest-first) to what the retention floor and the
/// per-key retention budget require: every entry down to the first one at
/// or below `floor` must stay (some live pin may resolve through it), and
/// up to `retain` recent entries stay regardless. Returns
/// `(entries dropped, whole chain dead)` — the chain is dead when its
/// newest fact is a tombstone no pin can still see, at which point the key
/// leaves the map entirely.
fn trim_chain(chain: &mut Chain, floor: BlockNum, retain: usize) -> (usize, bool) {
    let newest = &chain[0];
    if newest.value.is_none() && newest.version.block <= floor {
        return (chain.len(), true);
    }
    let keep = match chain.iter().position(|e| e.version.block <= floor) {
        Some(i) => retain.min(chain.len()).max(i + 1),
        // Every retained fact postdates the floor: all of them are the
        // first-at-or-below answer for some pinnable height.
        None => chain.len(),
    };
    let dropped = chain.len() - keep;
    chain.truncate(keep);
    (dropped, false)
}

/// Resolves a chain into a [`SnapshotGet`] at `height`: the newest
/// committed fact plus the value live as of `height` (first entry at or
/// below the height; tombstones resolve to "absent").
fn resolve_chain(chain: &Chain, height: BlockNum) -> SnapshotGet {
    let newest = chain.first().map(|e| (e.version, e.value.clone()));
    let at_height = chain
        .iter()
        .find(|e| e.version.block <= height)
        .and_then(|e| e.value.clone().map(|v| VersionedValue::new(v, e.version)));
    SnapshotGet { at_height, newest }
}

impl Default for MemStateDb {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStateDb {
    /// Creates an empty store with the default shard count and retention.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_SHARDS, DEFAULT_RETAINED)
    }

    /// Creates an empty store with `shards` shards (power of two enforced).
    pub fn with_shards(shards: usize) -> Self {
        Self::with_config(shards, DEFAULT_RETAINED)
    }

    /// Creates an empty store retaining up to `retained` versions per key
    /// (clamped to ≥ 1; live pins extend retention past this regardless).
    pub fn with_retained_versions(retained: usize) -> Self {
        Self::with_config(DEFAULT_SHARDS, retained)
    }

    /// Creates an empty store with explicit shard count and per-key
    /// version retention.
    pub fn with_config(shards: usize, retained: usize) -> Self {
        let shards = shards.next_power_of_two().max(1);
        MemStateDb {
            shards: Arc::new((0..shards).map(|_| RwLock::new(HashMap::new())).collect()),
            last_block: AtomicU64::new(NO_BLOCK),
            commit_lock: parking_lot::Mutex::new(ShardGroups::default()),
            read_scratch: parking_lot::Mutex::new(ShardGroups::default()),
            pins: Arc::new(PinRegistry::new()),
            retained: retained.max(1),
            counters: StoreCounters::new(),
            lane_apply: OnceLock::new(),
        }
    }

    /// Convenience: creates a store and commits `initial` as genesis
    /// (block 0), with all values at [`Version::GENESIS`].
    pub fn with_genesis(initial: impl IntoIterator<Item = (Key, Value)>) -> Self {
        Self::with_genesis_retained(initial, DEFAULT_RETAINED)
    }

    /// [`MemStateDb::with_genesis`] with an explicit per-key version
    /// retention budget.
    pub fn with_genesis_retained(
        initial: impl IntoIterator<Item = (Key, Value)>,
        retained: usize,
    ) -> Self {
        let db = Self::with_config(DEFAULT_SHARDS, retained);
        let writes: Vec<CommitWrite> = initial
            .into_iter()
            .map(|(key, value)| CommitWrite::put(key, value, 0))
            .collect();
        db.apply_block(0, &writes).expect("genesis commit cannot fail on a fresh store");
        db
    }

    /// Length of `key`'s version chain (diagnostics for GC tests; 0 when
    /// the key holds no retained facts).
    pub fn version_chain_len(&self, key: &Key) -> usize {
        self.shard_of(key).read().get(key).map_or(0, Vec::len)
    }

    /// Number of live snapshot pins (diagnostics).
    pub fn live_pins(&self) -> usize {
        self.pins.live_pins()
    }

    fn shard_index(&self, key: &Key) -> usize {
        // FNV-1a over the key bytes; shard count is a power of two.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in key.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        (h as usize) & (self.shards.len() - 1)
    }

    fn shard_of(&self, key: &Key) -> &RwLock<HashMap<Key, Chain>> {
        &self.shards[self.shard_index(key)]
    }

    /// The epoch-GC trim floor: the oldest height any live snapshot pins,
    /// clamped by the already-published watermark. Heights at or above the
    /// floor stay exactly resolvable; history below it may be trimmed.
    ///
    /// Clamping by the *pre-publication* watermark (not the committing
    /// block) closes the pin race: a reader that loads the watermark,
    /// registers its pin, and re-checks the watermark either sees it
    /// unchanged — in which case every commit that trims with a higher
    /// floor starts after the pin is visible — or retries at the new
    /// height.
    fn gc_floor(&self) -> BlockNum {
        let watermark = self.last_committed_block();
        self.pins.oldest().map_or(watermark, |p| p.min(watermark))
    }

    /// Refreshes the telemetry gauge cells (GC floor, live pins) after a
    /// block apply. Block granularity is all the windowed time-series
    /// layer samples at, so per-pin refreshes would be wasted stores.
    fn refresh_gauges(&self) {
        self.counters.set_gc_floor(self.gc_floor());
        self.counters.set_live_pins(self.pins.live_pins() as u64);
    }

    /// Installs the shard groups `start, start+stride, …` of `batch`. Each
    /// non-empty shard's write lock is taken exactly once, and distinct
    /// `(start, stride)` lanes touch disjoint shards, so lanes may run on
    /// separate threads under the commit lock's publication ordering.
    /// Newly superseded chain entries beyond what `floor` and the
    /// retention budget need are trimmed in the same pass; returns the
    /// number trimmed.
    fn install_shard_lane(
        &self,
        groups: &[Vec<u32>],
        batch: &WriteBatch<'_>,
        start: usize,
        stride: usize,
        floor: BlockNum,
    ) -> u64 {
        let mut trimmed = 0u64;
        for si in (start..groups.len()).step_by(stride) {
            let group = &groups[si];
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].write();
            for &i in group {
                let w = &batch.writes[i as usize];
                let entry = ChainEntry {
                    value: w.value.cloned(),
                    version: Version::new(batch.block, w.tx),
                };
                trimmed += install_entry(&mut shard, w.key, entry, floor, self.retained);
            }
        }
        trimmed
    }
}

impl StateStore for MemStateDb {
    fn get(&self, key: &Key) -> Result<Option<VersionedValue>> {
        self.counters.record_point_get();
        Ok(self.shard_of(key).read().get(key).and_then(|chain| {
            let e = chain.first()?;
            Some(VersionedValue::new(e.value.clone()?, e.version))
        }))
    }

    fn apply_write_batch(&self, batch: &WriteBatch<'_>) -> Result<()> {
        let mut scratch = self.commit_lock.lock();
        self.counters.record_commit_ticket();
        let last = self.last_block.load(Ordering::Acquire);
        let expected = if last == NO_BLOCK { 0 } else { last + 1 };
        if batch.block != expected {
            return Err(Error::InvalidState(format!(
                "apply_block({}) out of order: expected block {expected}",
                batch.block
            )));
        }
        // The trim floor is computed before publication, so heights up to
        // the previous watermark that a racing reader may still pin stay
        // resolvable through this commit (see `gc_floor`).
        let floor = self.gc_floor();

        let nshards = self.shards.len();
        scratch.reset(nshards);
        for (i, w) in batch.writes.iter().enumerate() {
            scratch.groups[self.shard_index(w.key)].push(i as u32);
        }
        let groups = &scratch.groups[..nshards];
        let nonempty = groups.iter().filter(|g| !g.is_empty()).count();

        // Install each shard's group under a single write-lock acquisition;
        // large blocks spread independent shards over scoped threads.
        let threads = if batch.writes.len() >= PARALLEL_APPLY_MIN_WRITES {
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(nonempty).min(8)
        } else {
            1
        };
        let trimmed = if threads > 1 {
            let total = AtomicU64::new(0);
            std::thread::scope(|s| {
                for t in 1..threads {
                    let total = &total;
                    s.spawn(move || {
                        let n = self.install_shard_lane(groups, batch, t, threads, floor);
                        total.fetch_add(n, Ordering::Relaxed);
                    });
                }
                let n = self.install_shard_lane(groups, batch, 0, threads, floor);
                total.fetch_add(n, Ordering::Relaxed);
            });
            total.into_inner()
        } else {
            self.install_shard_lane(groups, batch, 0, 1, floor)
        };
        self.counters.record_block_applied(nonempty as u64);
        if trimmed > 0 {
            self.counters.record_gc_trimmed(trimmed);
        }

        // Publish only after every write is visible (release pairs with the
        // acquire in last_committed_block / snapshot pinning).
        self.last_block.store(batch.block, Ordering::Release);
        self.refresh_gauges();
        Ok(())
    }

    fn apply_write_batch_lanes(&self, batch: &WriteBatch<'_>, pool: &LanePool) -> Result<()> {
        if pool.lanes() <= 1 {
            return self.apply_write_batch(batch);
        }
        // Same commit protocol as `apply_write_batch` — ticket, order
        // check, pre-publication trim floor — but the shard installs run
        // on the caller's persistent lanes instead of ad-hoc scoped
        // threads, and the owned batch copy lives in a reusable job so the
        // warm path does not allocate.
        let _ticket = self.commit_lock.lock();
        self.counters.record_commit_ticket();
        let last = self.last_block.load(Ordering::Acquire);
        let expected = if last == NO_BLOCK { 0 } else { last + 1 };
        if batch.block != expected {
            return Err(Error::InvalidState(format!(
                "apply_block({}) out of order: expected block {expected}",
                batch.block
            )));
        }
        let floor = self.gc_floor();

        let entry = self.lane_apply.get_or_init(|| {
            let job = Arc::new(ApplyLaneJob {
                shards: Arc::clone(&self.shards),
                retained: self.retained,
                state: RwLock::new(ApplyLaneState::default()),
            });
            let shared: Arc<dyn LaneJob> = Arc::clone(&job) as Arc<dyn LaneJob>;
            LaneApplyShared { job, shared }
        });

        let nshards = self.shards.len();
        let nonempty;
        {
            let mut st = entry.job.state.write();
            st.floor = floor;
            st.lanes = pool.lanes();
            st.trimmed.store(0, Ordering::Relaxed);
            st.writes.clear();
            if st.groups.len() < nshards {
                st.groups.resize_with(nshards, Vec::new);
            }
            for g in &mut st.groups {
                g.clear();
            }
            for (i, w) in batch.writes.iter().enumerate() {
                st.groups[self.shard_index(w.key)].push(i as u32);
                st.writes.push((
                    w.key.clone(),
                    ChainEntry {
                        value: w.value.cloned(),
                        version: Version::new(batch.block, w.tx),
                    },
                ));
            }
            nonempty = st.groups.iter().filter(|g| !g.is_empty()).count();
        }
        pool.run(&entry.shared);
        let trimmed = entry.job.state.read().trimmed.load(Ordering::Relaxed);
        self.counters.record_block_applied(nonempty as u64);
        if trimmed > 0 {
            self.counters.record_gc_trimmed(trimmed);
        }
        self.last_block.store(batch.block, Ordering::Release);
        self.refresh_gauges();
        Ok(())
    }

    fn multi_get_versions_into(
        &self,
        keys: &[Key],
        out: &mut Vec<Option<Version>>,
    ) -> Result<()> {
        out.clear();
        out.resize(keys.len(), None);
        let nshards = self.shards.len();
        let mut scratch = self.read_scratch.lock();
        scratch.reset(nshards);
        for (i, key) in keys.iter().enumerate() {
            scratch.groups[self.shard_index(key)].push(i as u32);
        }
        // One read-lock acquisition per touched shard, results in input
        // order.
        for (si, group) in scratch.groups[..nshards].iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = self.shards[si].read();
            for &i in group {
                out[i as usize] = shard
                    .get(&keys[i as usize])
                    .and_then(|chain| chain.first())
                    .and_then(|e| e.value.is_some().then_some(e.version));
            }
        }
        self.counters.record_multi_get(keys.len() as u64);
        Ok(())
    }

    fn counters(&self) -> StoreCounters {
        self.counters.clone()
    }

    fn retained_versions(&self) -> usize {
        self.retained
    }

    fn pin_snapshot(&self) -> StateSnapshot {
        loop {
            let h = self.last_committed_block();
            self.pins.pin(h);
            // Re-check after the pin is visible to committers: if the
            // watermark moved, a commit may already have trimmed with a
            // floor above `h` — retry at the new height.
            if self.last_committed_block() == h {
                self.counters.record_snapshot_pin();
                return StateSnapshot::registered(h, Arc::clone(&self.pins));
            }
            self.pins.unpin(h);
        }
    }

    fn pin_snapshot_at(&self, height: BlockNum) -> StateSnapshot {
        self.pins.pin(height);
        self.counters.record_snapshot_pin();
        StateSnapshot::registered(height, Arc::clone(&self.pins))
    }

    fn get_at(&self, key: &Key, height: BlockNum) -> Result<SnapshotGet> {
        self.counters.record_snapshot_read(1);
        Ok(self
            .shard_of(key)
            .read()
            .get(key)
            .map_or_else(SnapshotGet::default, |chain| resolve_chain(chain, height)))
    }

    fn multi_get_at_into(
        &self,
        keys: &[Key],
        height: BlockNum,
        out: &mut Vec<SnapshotGet>,
    ) -> Result<()> {
        out.clear();
        out.resize(keys.len(), SnapshotGet::default());
        let nshards = self.shards.len();
        let mut scratch = self.read_scratch.lock();
        scratch.reset(nshards);
        for (i, key) in keys.iter().enumerate() {
            scratch.groups[self.shard_index(key)].push(i as u32);
        }
        for (si, group) in scratch.groups[..nshards].iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = self.shards[si].read();
            for &i in group {
                if let Some(chain) = shard.get(&keys[i as usize]) {
                    out[i as usize] = resolve_chain(chain, height);
                }
            }
        }
        self.counters.record_snapshot_read(keys.len() as u64);
        Ok(())
    }

    fn scan_range_at(
        &self,
        start: &Key,
        end: &Key,
        height: BlockNum,
    ) -> Result<Vec<(Key, SnapshotGet)>> {
        let mut out: Vec<(Key, SnapshotGet)> = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard.read();
            for (k, chain) in guard.iter() {
                if k >= start && k < end {
                    let got = resolve_chain(chain, height);
                    // Keys with no value at the height are invisible to the
                    // snapshot (created later, or dead by then).
                    if got.at_height.is_some() {
                        out.push((k.clone(), got));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.counters.record_snapshot_read(out.len() as u64);
        Ok(out)
    }

    fn collect_garbage(&self) -> Result<usize> {
        // Full sweep: takes the commit ticket so the floor cannot move
        // mid-sweep (this is commit-side maintenance, not a read).
        let _ticket = self.commit_lock.lock();
        self.counters.record_commit_ticket();
        let floor = self.gc_floor();
        let mut trimmed = 0usize;
        for shard in self.shards.iter() {
            let mut guard = shard.write();
            guard.retain(|_, chain| {
                let (dropped, dead) = trim_chain(chain, floor, self.retained);
                trimmed += dropped;
                !dead
            });
        }
        if trimmed > 0 {
            self.counters.record_gc_trimmed(trimmed as u64);
        }
        Ok(trimmed)
    }

    fn last_committed_block(&self) -> BlockNum {
        let v = self.last_block.load(Ordering::Acquire);
        if v == NO_BLOCK {
            0
        } else {
            v
        }
    }

    fn approximate_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|c| c.first().is_some_and(|e| e.value.is_some()))
                    .count()
            })
            .sum()
    }

    fn scan_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, VersionedValue)>> {
        // Hash sharding has no key order; collect matches then sort.
        let mut out: Vec<(Key, VersionedValue)> = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard.read();
            for (k, chain) in guard.iter() {
                if k >= start && k < end {
                    if let Some(e) = chain.first() {
                        if let Some(v) = &e.value {
                            out.push((k.clone(), VersionedValue::new(v.clone(), e.version)));
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn scan_all(&self) -> Result<Vec<(Key, VersionedValue)>> {
        let mut out: Vec<(Key, VersionedValue)> = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard.read();
            out.extend(guard.iter().filter_map(|(k, chain)| {
                let e = chain.first()?;
                let v = e.value.as_ref()?;
                Some((k.clone(), VersionedValue::new(v.clone(), e.version)))
            }));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: i64) -> Value {
        Value::from_i64(n)
    }

    #[test]
    fn genesis_and_get() {
        let db = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
        let got = db.get(&k("a")).unwrap().unwrap();
        assert_eq!(got.value, v(1));
        assert_eq!(got.version, Version::GENESIS);
        assert!(db.get(&k("zzz")).unwrap().is_none());
        assert_eq!(db.approximate_len(), 2);
        assert_eq!(db.last_committed_block(), 0);
    }

    #[test]
    fn apply_block_updates_versions() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        db.apply_block(1, &[CommitWrite::put(k("a"), v(10), 3)]).unwrap();
        let got = db.get(&k("a")).unwrap().unwrap();
        assert_eq!(got.value, v(10));
        assert_eq!(got.version, Version::new(1, 3));
        assert_eq!(db.last_committed_block(), 1);
    }

    #[test]
    fn deletes_remove_keys() {
        let db = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
        db.apply_block(1, &[CommitWrite::delete(k("a"), 0)]).unwrap();
        assert!(db.get(&k("a")).unwrap().is_none());
        assert!(db.get(&k("b")).unwrap().is_some());
        assert_eq!(db.approximate_len(), 1);
    }

    #[test]
    fn out_of_order_blocks_rejected() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        assert!(db.apply_block(2, &[]).is_err()); // gap
        assert!(db.apply_block(0, &[]).is_err()); // replay
        db.apply_block(1, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 1);
    }

    #[test]
    fn first_block_must_be_zero() {
        let db = MemStateDb::new();
        assert!(db.apply_block(1, &[]).is_err());
        db.apply_block(0, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 0);
    }

    #[test]
    fn empty_block_advances_watermark() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        db.apply_block(1, &[]).unwrap();
        db.apply_block(2, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 2);
        // Value still at genesis version.
        assert_eq!(db.get(&k("a")).unwrap().unwrap().version, Version::GENESIS);
    }

    #[test]
    fn concurrent_readers_never_see_future_watermark() {
        // The publication invariant: if a reader observes
        // last_committed_block == n, every write of block n is visible.
        let db = Arc::new(MemStateDb::with_genesis([(k("x"), v(0)), (k("y"), v(0))]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let pinned = db.last_committed_block();
                        let x = db.get(&k("x")).unwrap().unwrap();
                        let y = db.get(&k("y")).unwrap().unwrap();
                        // Writes of blocks <= pinned must be visible: the
                        // versions can never lag behind the pinned block
                        // because each block rewrites both keys.
                        assert!(x.version.block >= pinned || pinned == 0);
                        assert!(y.version.block >= pinned || pinned == 0);
                    }
                })
            })
            .collect();

        for b in 1..200u64 {
            db.apply_block(
                b,
                &[
                    CommitWrite::put(k("x"), v(b as i64), 0),
                    CommitWrite::put(k("y"), v(b as i64), 1),
                ],
            )
            .unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(db.last_committed_block(), 199);
    }

    #[test]
    fn many_keys_across_shards() {
        let db = MemStateDb::with_shards(8);
        let writes: Vec<CommitWrite> = (0..1000)
            .map(|i| CommitWrite::put(Key::composite("acct", i), v(i as i64), i as u32))
            .collect();
        db.apply_block(0, &writes).unwrap();
        assert_eq!(db.approximate_len(), 1000);
        for i in (0..1000).step_by(97) {
            let got = db.get(&Key::composite("acct", i)).unwrap().unwrap();
            assert_eq!(got.value, v(i as i64));
            assert_eq!(got.version, Version::new(0, i as u32));
        }
    }

    #[test]
    fn scan_range_returns_sorted_slice() {
        let db = MemStateDb::with_genesis([
            (k("acct:a"), v(1)),
            (k("acct:c"), v(3)),
            (k("acct:b"), v(2)),
            (k("other:z"), v(9)),
        ]);
        let got = db.scan_range(&k("acct:"), &k("acct:~")).unwrap();
        let names: Vec<String> = got.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["acct:a", "acct:b", "acct:c"]);
        assert_eq!(got[1].1.value, v(2));
        // Empty range.
        assert!(db.scan_range(&k("zzz"), &k("zzzz")).unwrap().is_empty());
        // End exclusive.
        let got = db.scan_range(&k("acct:a"), &k("acct:c")).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scan_range_reflects_deletes() {
        let db = MemStateDb::with_genesis([(k("r:1"), v(1)), (k("r:2"), v(2))]);
        db.apply_block(1, &[CommitWrite::delete(k("r:1"), 0)]).unwrap();
        let got = db.scan_range(&k("r:"), &k("r:~")).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, k("r:2"));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let db = MemStateDb::with_shards(5);
        assert_eq!(db.shards.len(), 8);
        let db = MemStateDb::with_shards(0);
        assert_eq!(db.shards.len(), 1);
    }

    #[test]
    fn get_at_resolves_historical_versions() {
        let db = MemStateDb::with_genesis_retained([(k("a"), v(10))], 8);
        db.apply_block(1, &[CommitWrite::put(k("a"), v(20), 0)]).unwrap();
        db.apply_block(2, &[CommitWrite::put(k("a"), v(30), 1)]).unwrap();

        let g0 = db.get_at(&k("a"), 0).unwrap();
        assert_eq!(g0.at_height.as_ref().unwrap().value, v(10));
        assert_eq!(g0.newest.as_ref().unwrap().0, Version::new(2, 1));
        assert!(g0.is_stale_at(0));

        let g1 = db.get_at(&k("a"), 1).unwrap();
        assert_eq!(g1.at_height.as_ref().unwrap().value, v(20));
        assert_eq!(g1.at_height.as_ref().unwrap().version, Version::new(1, 0));

        let g2 = db.get_at(&k("a"), 2).unwrap();
        assert_eq!(g2.at_height.as_ref().unwrap().value, v(30));
        assert!(!g2.is_stale_at(2));
    }

    #[test]
    fn get_at_sees_through_later_deletes_and_creates() {
        let db = MemStateDb::with_genesis_retained([(k("a"), v(1))], 8);
        db.apply_block(1, &[CommitWrite::delete(k("a"), 0), CommitWrite::put(k("b"), v(2), 1)])
            .unwrap();

        // Deleted after height 0: still visible at 0, newest is a tombstone.
        let ga = db.get_at(&k("a"), 0).unwrap();
        assert_eq!(ga.at_height.as_ref().unwrap().value, v(1));
        assert_eq!(ga.newest, Some((Version::new(1, 0), None)));
        // Created after height 0: invisible at 0, newest names the create.
        let gb = db.get_at(&k("b"), 0).unwrap();
        assert!(gb.at_height.is_none());
        assert_eq!(gb.newest.as_ref().unwrap().0, Version::new(1, 1));
        // At height 1 the delete and create are both visible.
        assert!(db.get_at(&k("a"), 1).unwrap().at_height.is_none());
        assert_eq!(db.get_at(&k("b"), 1).unwrap().at_height.as_ref().unwrap().value, v(2));
    }

    #[test]
    fn unpinned_chains_trim_to_retention_budget() {
        let db = MemStateDb::with_genesis_retained([(k("a"), v(0))], 2);
        for b in 1..10u64 {
            db.apply_block(b, &[CommitWrite::put(k("a"), v(b as i64), 0)]).unwrap();
        }
        assert!(db.version_chain_len(&k("a")) <= 2);
        assert!(db.counters().snapshot().gc_trimmed_versions > 0);
    }

    #[test]
    fn pinned_height_survives_gc_and_trim_resumes_after_drop() {
        let db = MemStateDb::with_genesis_retained([(k("a"), v(0))], 1);
        let snap = db.pin_snapshot();
        assert_eq!(snap.height(), 0);
        for b in 1..20u64 {
            db.apply_block(b, &[CommitWrite::put(k("a"), v(b as i64), 0)]).unwrap();
        }
        // The pinned genesis value is still exactly resolvable...
        let g = db.get_at(&k("a"), snap.height()).unwrap();
        assert_eq!(g.at_height.as_ref().unwrap().value, v(0));
        // ...which forces the chain to span back to the pin.
        assert!(db.version_chain_len(&k("a")) > 1);
        drop(snap);
        let trimmed = db.collect_garbage().unwrap();
        assert!(trimmed > 0);
        assert_eq!(db.version_chain_len(&k("a")), 1);
        assert_eq!(db.get(&k("a")).unwrap().unwrap().value, v(19));
    }

    #[test]
    fn dead_tombstone_chains_leave_the_map() {
        let db = MemStateDb::with_genesis_retained([(k("a"), v(1))], 4);
        db.apply_block(1, &[CommitWrite::delete(k("a"), 0)]).unwrap();
        // The tombstone is retained while the watermark floor allows pins
        // at height 0...
        assert_eq!(db.version_chain_len(&k("a")), 2);
        db.apply_block(2, &[]).unwrap();
        db.collect_garbage().unwrap();
        // ...and the whole chain disappears once no pin can see it.
        assert_eq!(db.version_chain_len(&k("a")), 0);
        assert_eq!(db.approximate_len(), 0);
    }

    #[test]
    fn lane_apply_matches_sequential_byte_for_byte() {
        // Same block stream through the sequential and the lane-parallel
        // commit path: identical digests, watermarks, and chain shapes at
        // every lane count (lane count must never be semantic).
        for lanes in [1, 2, 4, 8] {
            let pool = LanePool::new(lanes);
            let seq = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
            let lan = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
            for block in 1..=6u64 {
                let writes: Vec<CommitWrite> = (0..16)
                    .map(|i| {
                        let key = Key::composite("k", (block * 7 + i) % 11);
                        if (block + i) % 5 == 0 {
                            CommitWrite::delete(key, i as u32)
                        } else {
                            CommitWrite::put(key, v((block * 100 + i) as i64), i as u32)
                        }
                    })
                    .collect();
                seq.apply_write_batch(&WriteBatch::from_writes(block, &writes)).unwrap();
                lan.apply_write_batch_lanes(&WriteBatch::from_writes(block, &writes), &pool)
                    .unwrap();
            }
            assert_eq!(seq.state_digest().unwrap(), lan.state_digest().unwrap());
            assert_eq!(seq.last_committed_block(), lan.last_committed_block());
            assert_eq!(seq.approximate_len(), lan.approximate_len());
            for i in 0..11 {
                let key = Key::composite("k", i);
                assert_eq!(seq.version_chain_len(&key), lan.version_chain_len(&key));
            }
        }
    }

    #[test]
    fn lane_apply_rejects_out_of_order_blocks() {
        let pool = LanePool::new(4);
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        let writes = [CommitWrite::put(k("a"), v(9), 0)];
        assert!(db.apply_write_batch_lanes(&WriteBatch::from_writes(3, &writes), &pool).is_err());
        db.apply_write_batch_lanes(&WriteBatch::from_writes(1, &writes), &pool).unwrap();
        assert_eq!(db.get(&k("a")).unwrap().unwrap().value, v(9));
    }

    #[test]
    fn snapshot_reads_take_no_commit_ticket() {
        let db = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
        let before = db.counters().snapshot();
        let snap = db.pin_snapshot();
        let keys = [k("a"), k("b")];
        let mut out = Vec::new();
        db.multi_get_at_into(&keys, snap.height(), &mut out).unwrap();
        db.get_at(&k("a"), snap.height()).unwrap();
        db.scan_range_at(&k("a"), &k("c"), snap.height()).unwrap();
        let after = db.counters().snapshot().since(&before);
        assert_eq!(after.commit_ticket_acquisitions, 0);
        assert_eq!(after.snapshot_pins, 1);
        assert_eq!(after.snapshot_read_batches, 3);
    }
}
