//! Sharded in-memory state database.
//!
//! The default engine for benchmarks: per-shard `RwLock`s keep point reads
//! and the per-key atomic updates of a block commit cheap and concurrent,
//! and an `AtomicU64` publishes the last committed block *after* all of a
//! block's writes are installed — the ordering the Fabric++ lock-free
//! early-abort check relies on (see the [`StateStore`] commit protocol).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use fabric_common::{BlockNum, Error, Key, Result, StoreCounters, Value, Version};

use crate::store::{CommitWrite, StateStore, VersionedValue, WriteBatch};

const DEFAULT_SHARDS: usize = 64;

/// Blocks with at least this many writes fan their shard groups out over
/// scoped threads; smaller blocks install sequentially — thread spawn would
/// dominate, and the sequential path is allocation-free in the steady state
/// (asserted by `tests/batched_alloc.rs`).
const PARALLEL_APPLY_MIN_WRITES: usize = 4096;

/// Sharded in-memory versioned key-value store.
pub struct MemStateDb {
    shards: Vec<RwLock<HashMap<Key, VersionedValue>>>,
    /// Highest fully-visible block; `u64::MAX` encodes "nothing committed".
    last_block: AtomicU64,
    /// Serializes committers (one block at a time), independent of readers.
    /// Doubles as the batched commit path's reusable shard-grouping
    /// scratch: holding it *is* the commit ticket.
    commit_lock: parking_lot::Mutex<ShardGroups>,
    /// Reusable shard-grouping scratch for batched version reads.
    read_scratch: parking_lot::Mutex<ShardGroups>,
    counters: StoreCounters,
}

/// Per-shard index lists, reused across batches so a warm store groups
/// without allocating.
#[derive(Default)]
struct ShardGroups {
    groups: Vec<Vec<u32>>,
}

impl ShardGroups {
    /// Clears every group (keeping capacity) and ensures one group per
    /// shard exists.
    fn reset(&mut self, shards: usize) {
        if self.groups.len() < shards {
            self.groups.resize_with(shards, Vec::new);
        }
        for g in &mut self.groups {
            g.clear();
        }
    }
}

const NO_BLOCK: u64 = u64::MAX;

impl Default for MemStateDb {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStateDb {
    /// Creates an empty store with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store with `shards` shards (power of two enforced).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.next_power_of_two().max(1);
        MemStateDb {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            last_block: AtomicU64::new(NO_BLOCK),
            commit_lock: parking_lot::Mutex::new(ShardGroups::default()),
            read_scratch: parking_lot::Mutex::new(ShardGroups::default()),
            counters: StoreCounters::new(),
        }
    }

    /// Convenience: creates a store and commits `initial` as genesis
    /// (block 0), with all values at [`Version::GENESIS`].
    pub fn with_genesis(initial: impl IntoIterator<Item = (Key, Value)>) -> Self {
        let db = Self::new();
        let writes: Vec<CommitWrite> = initial
            .into_iter()
            .map(|(key, value)| CommitWrite::put(key, value, 0))
            .collect();
        db.apply_block(0, &writes).expect("genesis commit cannot fail on a fresh store");
        db
    }

    fn shard_index(&self, key: &Key) -> usize {
        // FNV-1a over the key bytes; shard count is a power of two.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in key.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        (h as usize) & (self.shards.len() - 1)
    }

    fn shard_of(&self, key: &Key) -> &RwLock<HashMap<Key, VersionedValue>> {
        &self.shards[self.shard_index(key)]
    }

    /// Installs the shard groups `start, start+stride, …` of `batch`. Each
    /// non-empty shard's write lock is taken exactly once, and distinct
    /// `(start, stride)` lanes touch disjoint shards, so lanes may run on
    /// separate threads under the commit lock's publication ordering.
    fn install_shard_lane(
        &self,
        groups: &[Vec<u32>],
        batch: &WriteBatch<'_>,
        start: usize,
        stride: usize,
    ) {
        for si in (start..groups.len()).step_by(stride) {
            let group = &groups[si];
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].write();
            for &i in group {
                let w = &batch.writes[i as usize];
                match w.value {
                    Some(v) => {
                        shard.insert(
                            w.key.clone(),
                            VersionedValue::new(v.clone(), Version::new(batch.block, w.tx)),
                        );
                    }
                    None => {
                        shard.remove(w.key);
                    }
                }
            }
        }
    }
}

impl StateStore for MemStateDb {
    fn get(&self, key: &Key) -> Result<Option<VersionedValue>> {
        self.counters.record_point_get();
        Ok(self.shard_of(key).read().get(key).cloned())
    }

    fn apply_write_batch(&self, batch: &WriteBatch<'_>) -> Result<()> {
        let mut scratch = self.commit_lock.lock();
        let last = self.last_block.load(Ordering::Acquire);
        let expected = if last == NO_BLOCK { 0 } else { last + 1 };
        if batch.block != expected {
            return Err(Error::InvalidState(format!(
                "apply_block({}) out of order: expected block {expected}",
                batch.block
            )));
        }

        let nshards = self.shards.len();
        scratch.reset(nshards);
        for (i, w) in batch.writes.iter().enumerate() {
            scratch.groups[self.shard_index(w.key)].push(i as u32);
        }
        let groups = &scratch.groups[..nshards];
        let nonempty = groups.iter().filter(|g| !g.is_empty()).count();

        // Install each shard's group under a single write-lock acquisition;
        // large blocks spread independent shards over scoped threads.
        let threads = if batch.writes.len() >= PARALLEL_APPLY_MIN_WRITES {
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(nonempty).min(8)
        } else {
            1
        };
        if threads > 1 {
            std::thread::scope(|s| {
                for t in 1..threads {
                    s.spawn(move || self.install_shard_lane(groups, batch, t, threads));
                }
                self.install_shard_lane(groups, batch, 0, threads);
            });
        } else {
            self.install_shard_lane(groups, batch, 0, 1);
        }
        self.counters.record_block_applied(nonempty as u64);

        // Publish only after every write is visible (release pairs with the
        // acquire in last_committed_block / snapshot pinning).
        self.last_block.store(batch.block, Ordering::Release);
        Ok(())
    }

    fn multi_get_versions_into(
        &self,
        keys: &[Key],
        out: &mut Vec<Option<Version>>,
    ) -> Result<()> {
        out.clear();
        out.resize(keys.len(), None);
        let nshards = self.shards.len();
        let mut scratch = self.read_scratch.lock();
        scratch.reset(nshards);
        for (i, key) in keys.iter().enumerate() {
            scratch.groups[self.shard_index(key)].push(i as u32);
        }
        // One read-lock acquisition per touched shard, results in input
        // order.
        for (si, group) in scratch.groups[..nshards].iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = self.shards[si].read();
            for &i in group {
                out[i as usize] = shard.get(&keys[i as usize]).map(|vv| vv.version);
            }
        }
        self.counters.record_multi_get(keys.len() as u64);
        Ok(())
    }

    fn counters(&self) -> StoreCounters {
        self.counters.clone()
    }

    fn last_committed_block(&self) -> BlockNum {
        let v = self.last_block.load(Ordering::Acquire);
        if v == NO_BLOCK {
            0
        } else {
            v
        }
    }

    fn approximate_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn scan_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, VersionedValue)>> {
        // Hash sharding has no key order; collect matches then sort.
        let mut out: Vec<(Key, VersionedValue)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            for (k, vv) in guard.iter() {
                if k >= start && k < end {
                    out.push((k.clone(), vv.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn scan_all(&self) -> Result<Vec<(Key, VersionedValue)>> {
        let mut out: Vec<(Key, VersionedValue)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            out.extend(guard.iter().map(|(k, vv)| (k.clone(), vv.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: i64) -> Value {
        Value::from_i64(n)
    }

    #[test]
    fn genesis_and_get() {
        let db = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
        let got = db.get(&k("a")).unwrap().unwrap();
        assert_eq!(got.value, v(1));
        assert_eq!(got.version, Version::GENESIS);
        assert!(db.get(&k("zzz")).unwrap().is_none());
        assert_eq!(db.approximate_len(), 2);
        assert_eq!(db.last_committed_block(), 0);
    }

    #[test]
    fn apply_block_updates_versions() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        db.apply_block(1, &[CommitWrite::put(k("a"), v(10), 3)]).unwrap();
        let got = db.get(&k("a")).unwrap().unwrap();
        assert_eq!(got.value, v(10));
        assert_eq!(got.version, Version::new(1, 3));
        assert_eq!(db.last_committed_block(), 1);
    }

    #[test]
    fn deletes_remove_keys() {
        let db = MemStateDb::with_genesis([(k("a"), v(1)), (k("b"), v(2))]);
        db.apply_block(1, &[CommitWrite::delete(k("a"), 0)]).unwrap();
        assert!(db.get(&k("a")).unwrap().is_none());
        assert!(db.get(&k("b")).unwrap().is_some());
        assert_eq!(db.approximate_len(), 1);
    }

    #[test]
    fn out_of_order_blocks_rejected() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        assert!(db.apply_block(2, &[]).is_err()); // gap
        assert!(db.apply_block(0, &[]).is_err()); // replay
        db.apply_block(1, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 1);
    }

    #[test]
    fn first_block_must_be_zero() {
        let db = MemStateDb::new();
        assert!(db.apply_block(1, &[]).is_err());
        db.apply_block(0, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 0);
    }

    #[test]
    fn empty_block_advances_watermark() {
        let db = MemStateDb::with_genesis([(k("a"), v(1))]);
        db.apply_block(1, &[]).unwrap();
        db.apply_block(2, &[]).unwrap();
        assert_eq!(db.last_committed_block(), 2);
        // Value still at genesis version.
        assert_eq!(db.get(&k("a")).unwrap().unwrap().version, Version::GENESIS);
    }

    #[test]
    fn concurrent_readers_never_see_future_watermark() {
        // The publication invariant: if a reader observes
        // last_committed_block == n, every write of block n is visible.
        let db = Arc::new(MemStateDb::with_genesis([(k("x"), v(0)), (k("y"), v(0))]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let pinned = db.last_committed_block();
                        let x = db.get(&k("x")).unwrap().unwrap();
                        let y = db.get(&k("y")).unwrap().unwrap();
                        // Writes of blocks <= pinned must be visible: the
                        // versions can never lag behind the pinned block
                        // because each block rewrites both keys.
                        assert!(x.version.block >= pinned || pinned == 0);
                        assert!(y.version.block >= pinned || pinned == 0);
                    }
                })
            })
            .collect();

        for b in 1..200u64 {
            db.apply_block(
                b,
                &[
                    CommitWrite::put(k("x"), v(b as i64), 0),
                    CommitWrite::put(k("y"), v(b as i64), 1),
                ],
            )
            .unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(db.last_committed_block(), 199);
    }

    #[test]
    fn many_keys_across_shards() {
        let db = MemStateDb::with_shards(8);
        let writes: Vec<CommitWrite> = (0..1000)
            .map(|i| CommitWrite::put(Key::composite("acct", i), v(i as i64), i as u32))
            .collect();
        db.apply_block(0, &writes).unwrap();
        assert_eq!(db.approximate_len(), 1000);
        for i in (0..1000).step_by(97) {
            let got = db.get(&Key::composite("acct", i)).unwrap().unwrap();
            assert_eq!(got.value, v(i as i64));
            assert_eq!(got.version, Version::new(0, i as u32));
        }
    }

    #[test]
    fn scan_range_returns_sorted_slice() {
        let db = MemStateDb::with_genesis([
            (k("acct:a"), v(1)),
            (k("acct:c"), v(3)),
            (k("acct:b"), v(2)),
            (k("other:z"), v(9)),
        ]);
        let got = db.scan_range(&k("acct:"), &k("acct:~")).unwrap();
        let names: Vec<String> = got.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["acct:a", "acct:b", "acct:c"]);
        assert_eq!(got[1].1.value, v(2));
        // Empty range.
        assert!(db.scan_range(&k("zzz"), &k("zzzz")).unwrap().is_empty());
        // End exclusive.
        let got = db.scan_range(&k("acct:a"), &k("acct:c")).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scan_range_reflects_deletes() {
        let db = MemStateDb::with_genesis([(k("r:1"), v(1)), (k("r:2"), v(2))]);
        db.apply_block(1, &[CommitWrite::delete(k("r:1"), 0)]).unwrap();
        let got = db.scan_range(&k("r:"), &k("r:~")).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, k("r:2"));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let db = MemStateDb::with_shards(5);
        assert_eq!(db.shards.len(), 8);
        let db = MemStateDb::with_shards(0);
        assert_eq!(db.shards.len(), 1);
    }
}
