//! Simulation snapshots and the Fabric++ stale-read check.
//!
//! "At the start of the simulation phase, we first identify the block-ID of
//! the last block that made it into the ledger. [...] During the simulation
//! [...] no read must encounter a version-number containing a block-ID
//! higher than the last-block-ID" (paper §5.2.1, Figure 6).
//!
//! [`SnapshotView`] pins that last-block-ID at construction and classifies
//! every read: a version from a later block means a concurrent validation
//! phase already overwrote the value, the read set is doomed, and the
//! simulation can abort immediately instead of discovering the conflict at
//! validation time.

use std::sync::Arc;

use fabric_common::{BlockNum, Key, Result, Version};

use crate::store::{StateStore, VersionedValue};

/// Outcome of a snapshot read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotRead {
    /// The key is absent and no concurrent commit interfered.
    Absent,
    /// The value is visible and consistent with the snapshot.
    Fresh(VersionedValue),
    /// The value carries a version from a block newer than the snapshot:
    /// the simulation is operating on stale data (Fabric++ early abort).
    Stale(VersionedValue),
}

impl SnapshotRead {
    /// Whether this read invalidates the snapshot.
    pub fn is_stale(&self) -> bool {
        matches!(self, SnapshotRead::Stale(_))
    }
}

/// A read view over a [`StateStore`] pinned to the last committed block at
/// construction time.
#[derive(Clone)]
pub struct SnapshotView {
    store: Arc<dyn StateStore>,
    last_block: BlockNum,
}

impl SnapshotView {
    /// Pins a snapshot at the store's current last committed block.
    pub fn pin(store: Arc<dyn StateStore>) -> Self {
        let last_block = store.last_committed_block();
        SnapshotView { store, last_block }
    }

    /// Pins a snapshot at an explicit block (used by tests and by the
    /// synchronous pipeline driver).
    pub fn pin_at(store: Arc<dyn StateStore>, last_block: BlockNum) -> Self {
        SnapshotView { store, last_block }
    }

    /// The pinned last-block-ID.
    pub fn last_block(&self) -> BlockNum {
        self.last_block
    }

    /// Reads `key`, classifying the result against the pinned block.
    pub fn read(&self, key: &Key) -> Result<SnapshotRead> {
        match self.store.get(key)? {
            None => Ok(SnapshotRead::Absent),
            Some(vv) => {
                if vv.version.block > self.last_block {
                    Ok(SnapshotRead::Stale(vv))
                } else {
                    Ok(SnapshotRead::Fresh(vv))
                }
            }
        }
    }

    /// Batched version read: the current version of every key in `keys`,
    /// in input order (`None` = absent) — one
    /// [`StateStore::multi_get_versions`] round trip.
    pub fn read_versions(&self, keys: &[Key]) -> Result<Vec<Option<Version>>> {
        self.store.multi_get_versions(keys)
    }

    /// Whether any of `keys` currently carries a version from a block newer
    /// than the snapshot — the batched form of the Fabric++ early-abort
    /// check, resolved in a single multi-get.
    pub fn any_stale(&self, keys: &[Key]) -> Result<bool> {
        Ok(self
            .store
            .multi_get_versions(keys)?
            .iter()
            .any(|v| v.is_some_and(|v| v.block > self.last_block)))
    }

    /// Range scan over `[start, end)`, classifying every returned entry
    /// against the pinned block (Fabric's `GetStateByRange`).
    pub fn read_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, SnapshotRead)>> {
        Ok(self
            .store
            .scan_range(start, end)?
            .into_iter()
            .map(|(k, vv)| {
                let read = if vv.version.block > self.last_block {
                    SnapshotRead::Stale(vv)
                } else {
                    SnapshotRead::Fresh(vv)
                };
                (k, read)
            })
            .collect())
    }
}

impl std::fmt::Debug for SnapshotView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SnapshotView(last_block={})", self.last_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdb::MemStateDb;
    use crate::store::CommitWrite;
    use fabric_common::{Value, Version};

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: i64) -> Value {
        Value::from_i64(n)
    }

    fn setup() -> Arc<MemStateDb> {
        Arc::new(MemStateDb::with_genesis([(k("balA"), v(70)), (k("balB"), v(80))]))
    }

    #[test]
    fn fresh_read_within_snapshot() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        assert_eq!(snap.last_block(), 0);
        match snap.read(&k("balA")).unwrap() {
            SnapshotRead::Fresh(vv) => {
                assert_eq!(vv.value, v(70));
                assert_eq!(vv.version, Version::GENESIS);
            }
            other => panic!("expected Fresh, got {other:?}"),
        }
    }

    #[test]
    fn absent_key() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        assert_eq!(snap.read(&k("ghost")).unwrap(), SnapshotRead::Absent);
    }

    #[test]
    fn paper_figure_6_scenario() {
        // Simulation pins last-block-ID = 4 (here: 0). A validation phase
        // commits block 1 updating balB. The simulation's later read of
        // balB must classify as stale; its earlier-read balA (untouched)
        // stays fresh.
        let db = setup();
        let snap = SnapshotView::pin(db.clone());

        // read balA=70, version block 0 → fresh
        assert!(!snap.read(&k("balA")).unwrap().is_stale());

        // Concurrent commit of block 1 updates balB to 100.
        db.apply_block(1, &[CommitWrite::put(k("balB"), v(100), 0)]).unwrap();

        // read balB → version block 1 > pinned 0 → stale → early abort.
        let r = snap.read(&k("balB")).unwrap();
        assert!(r.is_stale());
        match r {
            SnapshotRead::Stale(vv) => assert_eq!(vv.value, v(100)),
            _ => unreachable!(),
        }

        // balA was not touched by block 1 → still fresh under the snapshot.
        assert!(!snap.read(&k("balA")).unwrap().is_stale());
    }

    #[test]
    fn snapshot_pinned_after_commit_sees_new_state_as_fresh() {
        let db = setup();
        db.apply_block(1, &[CommitWrite::put(k("balA"), v(50), 0)]).unwrap();
        let snap = SnapshotView::pin(db.clone());
        assert_eq!(snap.last_block(), 1);
        match snap.read(&k("balA")).unwrap() {
            SnapshotRead::Fresh(vv) => assert_eq!(vv.value, v(50)),
            other => panic!("expected Fresh, got {other:?}"),
        }
    }

    #[test]
    fn pin_at_explicit_block() {
        let db = setup();
        db.apply_block(1, &[CommitWrite::put(k("balA"), v(50), 0)]).unwrap();
        // A snapshot artificially pinned *before* block 1 sees the new
        // value as stale.
        let snap = SnapshotView::pin_at(db.clone(), 0);
        assert!(snap.read(&k("balA")).unwrap().is_stale());
    }

    #[test]
    fn key_created_after_snapshot_is_stale_not_fresh() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        db.apply_block(1, &[CommitWrite::put(k("new"), v(1), 0)]).unwrap();
        // A newly created key carries block 1 > pinned 0: stale.
        assert!(snap.read(&k("new")).unwrap().is_stale());
    }

    #[test]
    fn read_versions_returns_input_order_with_absent_as_none() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        let keys = [k("balB"), k("ghost"), k("balA")];
        let versions = snap.read_versions(&keys).unwrap();
        assert_eq!(versions, vec![Some(Version::GENESIS), None, Some(Version::GENESIS)]);
    }

    #[test]
    fn any_stale_detects_concurrent_commit_in_one_batch() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        let keys = [k("balA"), k("balB"), k("ghost")];
        assert!(!snap.any_stale(&keys).unwrap());

        db.apply_block(1, &[CommitWrite::put(k("balB"), v(100), 0)]).unwrap();
        assert!(snap.any_stale(&keys).unwrap(), "balB now carries block 1 > pinned 0");
        // A batch avoiding the overwritten key stays clean.
        assert!(!snap.any_stale(&[k("balA"), k("ghost")]).unwrap());
    }
}
