//! Simulation snapshots and the Fabric++ stale-read check.
//!
//! "At the start of the simulation phase, we first identify the block-ID of
//! the last block that made it into the ledger. [...] During the simulation
//! [...] no read must encounter a version-number containing a block-ID
//! higher than the last-block-ID" (paper §5.2.1, Figure 6).
//!
//! [`SnapshotView`] pins that last-block-ID at construction — through
//! [`StateStore::pin_snapshot`], so the engine's epoch GC keeps the height
//! resolvable — and serves every read *at* that height from the engine's
//! version chains: a simulation sees one consistent point-in-time state no
//! matter how many blocks commit underneath it, and never takes the commit
//! ticket to do so (Meir et al., "Lockless Transaction Isolation in
//! Hyperledger Fabric"). Each read still classifies against the newest
//! committed version: a version from a later block means a concurrent
//! validation phase already overwrote the value, the read set is doomed,
//! and the simulation can abort immediately instead of discovering the
//! conflict at validation time.

use std::sync::Arc;

use fabric_common::{BlockNum, Key, Result, Value, Version};

use crate::pin::StateSnapshot;
use crate::store::{SnapshotGet, StateStore, VersionedValue};

/// A stale snapshot read: the key's newest committed version postdates the
/// pinned block. Carries both the consistent at-height view (what the
/// snapshot serves) and the newest fact (what invalidated it), so callers
/// choose their poison: Fabric++ mode aborts on `newest_version`, vanilla
/// mode reads `at_height` and lets MVCC validation kill the transaction
/// later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleInfo {
    /// The value as of the pinned height (`None`: the key did not exist
    /// at the snapshot — it was created by a later block).
    pub at_height: Option<VersionedValue>,
    /// The newest committed value (`None`: the newest write is a delete).
    pub newest_value: Option<Value>,
    /// The version of the newest committed write — the observation the
    /// Fabric++ early abort reports.
    pub newest_version: Version,
}

/// Outcome of a snapshot read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotRead {
    /// The key is absent at the snapshot and no concurrent commit
    /// interfered (a key created *and* deleted after the snapshot also
    /// classifies absent: validation would compare absent to absent).
    Absent,
    /// The value is visible and consistent with the snapshot: no commit
    /// past the pinned block has touched the key.
    Fresh(VersionedValue),
    /// A commit past the pinned block overwrote, created, or deleted the
    /// key: the simulation is operating on stale data (Fabric++ early
    /// abort), though the at-height view inside stays consistent.
    Stale(StaleInfo),
}

impl SnapshotRead {
    /// Whether this read invalidates the snapshot.
    pub fn is_stale(&self) -> bool {
        matches!(self, SnapshotRead::Stale(_))
    }
}

/// A read view over a [`StateStore`] pinned to the last committed block at
/// construction time. Dropping the view releases the pin.
#[derive(Clone)]
pub struct SnapshotView {
    store: Arc<dyn StateStore>,
    snapshot: StateSnapshot,
}

impl SnapshotView {
    /// Pins a snapshot at the store's current last committed block; the
    /// engine registers the pin so GC retains the height.
    pub fn pin(store: Arc<dyn StateStore>) -> Self {
        let snapshot = store.pin_snapshot();
        SnapshotView { store, snapshot }
    }

    /// Pins a snapshot at an explicit block (used by tests and by the
    /// synchronous pipeline driver).
    pub fn pin_at(store: Arc<dyn StateStore>, last_block: BlockNum) -> Self {
        let snapshot = store.pin_snapshot_at(last_block);
        SnapshotView { store, snapshot }
    }

    /// The pinned last-block-ID.
    pub fn last_block(&self) -> BlockNum {
        self.snapshot.height()
    }

    /// Classifies one engine read against the pinned block (see
    /// [`SnapshotRead`]). Pure bookkeeping on an already-resolved
    /// [`SnapshotGet`] — no store round trip.
    pub fn classify(&self, got: SnapshotGet) -> SnapshotRead {
        let h = self.snapshot.height();
        match got.newest {
            None => SnapshotRead::Absent,
            Some((ver, _)) if ver.block <= h => match got.at_height {
                Some(vv) => SnapshotRead::Fresh(vv),
                // Newest visible fact is a tombstone: absent at the height.
                None => SnapshotRead::Absent,
            },
            Some((ver, newest_value)) => {
                if got.at_height.is_none() && newest_value.is_none() {
                    // Created and deleted entirely after the snapshot: the
                    // snapshot and a validation-time read agree on absent.
                    SnapshotRead::Absent
                } else {
                    SnapshotRead::Stale(StaleInfo {
                        at_height: got.at_height,
                        newest_value,
                        newest_version: ver,
                    })
                }
            }
        }
    }

    /// Reads `key` at the pinned height, classifying the result.
    pub fn read(&self, key: &Key) -> Result<SnapshotRead> {
        let got = self.store.get_at(key, self.snapshot.height())?;
        Ok(self.classify(got))
    }

    /// Batched point reads: resolves every key of a declared read set at
    /// the pinned height in one engine round trip (one lock per touched
    /// shard / one probe pass per run — mirroring
    /// [`StateStore::multi_get_versions`]), classified in input order.
    pub fn read_many(&self, keys: &[Key]) -> Result<Vec<SnapshotRead>> {
        let mut scratch = Vec::with_capacity(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        self.read_many_into(keys, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`SnapshotView::read_many`]: `scratch`
    /// holds the raw engine results, `out` the classified reads; both are
    /// cleared and refilled, reusing their capacity.
    pub fn read_many_into(
        &self,
        keys: &[Key],
        scratch: &mut Vec<SnapshotGet>,
        out: &mut Vec<SnapshotRead>,
    ) -> Result<()> {
        self.store.multi_get_at_into(keys, self.snapshot.height(), scratch)?;
        out.clear();
        out.extend(scratch.drain(..).map(|got| self.classify(got)));
        Ok(())
    }

    /// Batched version read: the current version of every key in `keys`,
    /// in input order (`None` = absent) — one
    /// [`StateStore::multi_get_versions`] round trip.
    pub fn read_versions(&self, keys: &[Key]) -> Result<Vec<Option<Version>>> {
        self.store.multi_get_versions(keys)
    }

    /// Whether any of `keys` currently carries a version from a block newer
    /// than the snapshot — the batched form of the Fabric++ early-abort
    /// check, resolved in a single multi-get.
    pub fn any_stale(&self, keys: &[Key]) -> Result<bool> {
        Ok(self
            .store
            .multi_get_versions(keys)?
            .iter()
            .any(|v| v.is_some_and(|v| v.block > self.snapshot.height())))
    }

    /// Range scan over `[start, end)` **at the pinned height** (Fabric's
    /// `GetStateByRange`): returns exactly the keys live at the snapshot,
    /// so a scan racing a commit never mixes pre- and post-block entries.
    /// Every entry arrives with its newest version from the same engine
    /// pass, so staleness classification is a single batched sweep over
    /// the results — no per-entry store round trips.
    pub fn read_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, SnapshotRead)>> {
        Ok(self
            .store
            .scan_range_at(start, end, self.snapshot.height())?
            .into_iter()
            .map(|(k, got)| (k, self.classify(got)))
            .collect())
    }
}

impl std::fmt::Debug for SnapshotView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SnapshotView(last_block={})", self.snapshot.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdb::MemStateDb;
    use crate::store::CommitWrite;
    use fabric_common::{Value, Version};

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: i64) -> Value {
        Value::from_i64(n)
    }

    fn setup() -> Arc<MemStateDb> {
        Arc::new(MemStateDb::with_genesis([(k("balA"), v(70)), (k("balB"), v(80))]))
    }

    #[test]
    fn fresh_read_within_snapshot() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        assert_eq!(snap.last_block(), 0);
        match snap.read(&k("balA")).unwrap() {
            SnapshotRead::Fresh(vv) => {
                assert_eq!(vv.value, v(70));
                assert_eq!(vv.version, Version::GENESIS);
            }
            other => panic!("expected Fresh, got {other:?}"),
        }
    }

    #[test]
    fn absent_key() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        assert_eq!(snap.read(&k("ghost")).unwrap(), SnapshotRead::Absent);
    }

    #[test]
    fn paper_figure_6_scenario() {
        // Simulation pins last-block-ID = 4 (here: 0). A validation phase
        // commits block 1 updating balB. The simulation's later read of
        // balB must classify as stale; its earlier-read balA (untouched)
        // stays fresh.
        let db = setup();
        let snap = SnapshotView::pin(db.clone());

        // read balA=70, version block 0 → fresh
        assert!(!snap.read(&k("balA")).unwrap().is_stale());

        // Concurrent commit of block 1 updates balB to 100.
        db.apply_block(1, &[CommitWrite::put(k("balB"), v(100), 0)]).unwrap();

        // read balB → newest version block 1 > pinned 0 → stale → early
        // abort; the snapshot's own consistent view (80 at height 0) rides
        // along for vanilla-mode consumers.
        let r = snap.read(&k("balB")).unwrap();
        assert!(r.is_stale());
        match r {
            SnapshotRead::Stale(info) => {
                assert_eq!(info.newest_value, Some(v(100)));
                assert_eq!(info.newest_version, Version::new(1, 0));
                assert_eq!(info.at_height.unwrap().value, v(80));
            }
            _ => unreachable!(),
        }

        // balA was not touched by block 1 → still fresh under the snapshot.
        assert!(!snap.read(&k("balA")).unwrap().is_stale());
    }

    #[test]
    fn snapshot_pinned_after_commit_sees_new_state_as_fresh() {
        let db = setup();
        db.apply_block(1, &[CommitWrite::put(k("balA"), v(50), 0)]).unwrap();
        let snap = SnapshotView::pin(db.clone());
        assert_eq!(snap.last_block(), 1);
        match snap.read(&k("balA")).unwrap() {
            SnapshotRead::Fresh(vv) => assert_eq!(vv.value, v(50)),
            other => panic!("expected Fresh, got {other:?}"),
        }
    }

    #[test]
    fn pin_at_explicit_block() {
        let db = setup();
        db.apply_block(1, &[CommitWrite::put(k("balA"), v(50), 0)]).unwrap();
        // A snapshot artificially pinned *before* block 1 sees the new
        // value as stale — and still serves the height-0 value.
        let snap = SnapshotView::pin_at(db.clone(), 0);
        match snap.read(&k("balA")).unwrap() {
            SnapshotRead::Stale(info) => assert_eq!(info.at_height.unwrap().value, v(70)),
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn key_created_after_snapshot_is_stale_not_fresh() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        db.apply_block(1, &[CommitWrite::put(k("new"), v(1), 0)]).unwrap();
        // A newly created key carries block 1 > pinned 0: stale, with no
        // at-height value (it did not exist at the snapshot).
        match snap.read(&k("new")).unwrap() {
            SnapshotRead::Stale(info) => {
                assert_eq!(info.at_height, None);
                assert_eq!(info.newest_value, Some(v(1)));
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn key_deleted_after_snapshot_is_stale_with_at_height_value() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        db.apply_block(1, &[CommitWrite::delete(k("balB"), 0)]).unwrap();
        match snap.read(&k("balB")).unwrap() {
            SnapshotRead::Stale(info) => {
                assert_eq!(info.at_height.unwrap().value, v(80));
                assert_eq!(info.newest_value, None);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_serves_consistent_values_under_commits() {
        // The lockless-endorsement property: the pinned view keeps serving
        // height-0 state no matter how many blocks land after it.
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        for b in 1..6u64 {
            db.apply_block(b, &[CommitWrite::put(k("balA"), v(b as i64), 0)]).unwrap();
        }
        match snap.read(&k("balA")).unwrap() {
            SnapshotRead::Stale(info) => {
                assert_eq!(info.at_height.unwrap().value, v(70));
                assert_eq!(info.newest_value, Some(v(5)));
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn read_many_matches_point_reads_in_input_order() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        db.apply_block(1, &[CommitWrite::put(k("balB"), v(100), 0)]).unwrap();
        let keys = [k("balB"), k("ghost"), k("balA")];
        let batched = snap.read_many(&keys).unwrap();
        assert_eq!(batched.len(), 3);
        for (key, got) in keys.iter().zip(&batched) {
            assert_eq!(got, &snap.read(key).unwrap());
        }
        assert!(batched[0].is_stale());
        assert_eq!(batched[1], SnapshotRead::Absent);
        assert!(matches!(&batched[2], SnapshotRead::Fresh(vv) if vv.value == v(70)));
    }

    #[test]
    fn read_versions_returns_input_order_with_absent_as_none() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        let keys = [k("balB"), k("ghost"), k("balA")];
        let versions = snap.read_versions(&keys).unwrap();
        assert_eq!(versions, vec![Some(Version::GENESIS), None, Some(Version::GENESIS)]);
    }

    #[test]
    fn any_stale_detects_concurrent_commit_in_one_batch() {
        let db = setup();
        let snap = SnapshotView::pin(db.clone());
        let keys = [k("balA"), k("balB"), k("ghost")];
        assert!(!snap.any_stale(&keys).unwrap());

        db.apply_block(1, &[CommitWrite::put(k("balB"), v(100), 0)]).unwrap();
        assert!(snap.any_stale(&keys).unwrap(), "balB now carries block 1 > pinned 0");
        // A batch avoiding the overwritten key stays clean.
        assert!(!snap.any_stale(&[k("balA"), k("ghost")]).unwrap());
    }

    #[test]
    fn read_range_scans_at_height() {
        let db = Arc::new(MemStateDb::with_genesis([(k("r:1"), v(1)), (k("r:2"), v(2))]));
        let snap = SnapshotView::pin(db.clone());
        // Concurrent block: deletes r:1, rewrites r:2, creates r:3.
        db.apply_block(
            1,
            &[
                CommitWrite::delete(k("r:1"), 0),
                CommitWrite::put(k("r:2"), v(20), 1),
                CommitWrite::put(k("r:3"), v(3), 2),
            ],
        )
        .unwrap();
        let got = snap.read_range(&k("r:"), &k("r:~")).unwrap();
        // Exactly the height-0 keys, every post-block touch flagged stale.
        let names: Vec<String> = got.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["r:1", "r:2"]);
        for (_, read) in &got {
            assert!(read.is_stale());
        }
        match &got[0].1 {
            SnapshotRead::Stale(info) => {
                assert_eq!(info.at_height.as_ref().unwrap().value, v(1));
                assert_eq!(info.newest_value, None);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }
}
