//! The [`StateStore`] trait: what every state-database engine must provide
//! to the peer pipeline.

use fabric_common::codec::Encoder;
use fabric_common::hash::Sha256;
use fabric_common::{
    BlockNum, Digest, Key, LanePool, Result, StoreCounters, TxNum, Value, Version,
};

use crate::pin::StateSnapshot;

/// A value in the current state together with the version of the transaction
/// that wrote it — exactly Fabric's `(value, version-number)` pair
/// (paper §5.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The stored value.
    pub value: Value,
    /// Version of the writing transaction.
    pub version: Version,
}

impl VersionedValue {
    /// Creates a versioned value.
    pub fn new(value: Value, version: Version) -> Self {
        VersionedValue { value, version }
    }
}

/// One write to install during a block commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitWrite {
    /// Key to write.
    pub key: Key,
    /// New value; `None` deletes the key.
    pub value: Option<Value>,
    /// Position of the writing transaction within the committing block;
    /// together with the block number this forms the new [`Version`].
    pub tx: TxNum,
}

impl CommitWrite {
    /// Creates a put.
    pub fn put(key: Key, value: Value, tx: TxNum) -> Self {
        CommitWrite { key, value: Some(value), tx }
    }

    /// Creates a delete.
    pub fn delete(key: Key, tx: TxNum) -> Self {
        CommitWrite { key, value: None, tx }
    }

    /// This write as a borrowed [`WriteRef`].
    pub fn as_write_ref(&self) -> WriteRef<'_> {
        WriteRef { key: &self.key, value: self.value.as_ref(), tx: self.tx }
    }
}

/// One write of a block commit, borrowing key and value from the block —
/// the zero-copy counterpart of [`CommitWrite`]. The committer assembles a
/// [`WriteBatch`] of these straight from the block's write sets without
/// cloning a single key or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRef<'a> {
    /// Key to write.
    pub key: &'a Key,
    /// New value; `None` deletes the key.
    pub value: Option<&'a Value>,
    /// Position of the writing transaction within the committing block.
    pub tx: TxNum,
}

/// A whole block's writes, assembled once and handed to
/// [`StateStore::apply_write_batch`] — the block-grained unit of the
/// batched commit path. Engines see every write of the block at once, so
/// they can group by shard (in-memory engine) or emit one group-commit WAL
/// record (LSM engine) instead of paying per-write synchronization.
#[derive(Debug, Clone)]
pub struct WriteBatch<'a> {
    /// The committing block number.
    pub block: BlockNum,
    /// All writes of the block's valid transactions, in block order.
    pub writes: Vec<WriteRef<'a>>,
}

impl<'a> WriteBatch<'a> {
    /// Creates an empty batch for `block`.
    pub fn new(block: BlockNum) -> Self {
        WriteBatch { block, writes: Vec::new() }
    }

    /// Creates an empty batch with room for `capacity` writes.
    pub fn with_capacity(block: BlockNum, capacity: usize) -> Self {
        WriteBatch { block, writes: Vec::with_capacity(capacity) }
    }

    /// Borrows a legacy owned write slice as a batch (the
    /// [`StateStore::apply_block`] compatibility path).
    pub fn from_writes(block: BlockNum, writes: &'a [CommitWrite]) -> Self {
        WriteBatch { block, writes: writes.iter().map(CommitWrite::as_write_ref).collect() }
    }

    /// Appends one write.
    pub fn push(&mut self, write: WriteRef<'a>) {
        self.writes.push(write);
    }

    /// Number of writes in the batch.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the batch holds no writes.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

/// The result of one versioned read-at-height: everything a snapshot
/// reader needs to both *serve* a consistent value and *classify* its
/// freshness, resolved in a single walk of the key's version chain.
///
/// `at_height` is the live value as of the pinned block (`None` when the
/// key did not exist — or was deleted — at that height). `newest` is the
/// most recent committed fact about the key: its version and its value,
/// where a `None` value is a tombstone. Comparing `newest`'s block against
/// the pinned height is the Fabric++ staleness check; serving `at_height`
/// is the lockless-endorsement snapshot read. One chain resolution yields
/// both.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotGet {
    /// The value live at the pinned height, with the version that wrote it.
    pub at_height: Option<VersionedValue>,
    /// The newest committed fact: `(version, value)`, value `None` when
    /// the newest write is a delete. `None` when the key has never been
    /// written (within retained history).
    pub newest: Option<(Version, Option<Value>)>,
}

impl SnapshotGet {
    /// Whether the newest committed write postdates `height` — i.e. a
    /// commit has invalidated a snapshot pinned at `height` for this key.
    pub fn is_stale_at(&self, height: BlockNum) -> bool {
        matches!(self.newest, Some((v, _)) if v.block > height)
    }
}

/// A versioned key-value state database.
///
/// # Commit protocol
///
/// [`StateStore::apply_write_batch`] (and the [`StateStore::apply_block`]
/// compatibility wrapper over it) must:
///
/// 1. install every write with version `(block, write.tx)`, each key update
///    individually atomic (readers see either the old or the new versioned
///    value, never a torn pair), and
/// 2. only after *all* writes are installed, publish `block` as the new
///    [`StateStore::last_committed_block`].
///
/// This ordering is what makes the Fabric++ lock-free early-abort check
/// sound: a reader that pinned `last_committed_block = n` and then observes
/// a version with `block > n` knows a concurrent commit invalidated its
/// snapshot (paper §5.2.1); conversely a reader that pins `n` *after* the
/// publication is guaranteed to see all of block `n`'s writes.
///
/// Engines are free to install the writes of one batch concurrently (the
/// in-memory engine applies disjoint shards in parallel): the contract
/// constrains only per-key atomicity and the watermark publication, which
/// happens after every installer has finished.
///
/// Blocks must be applied in strictly increasing order starting from the
/// genesis block 0; engines reject gaps and replays with
/// [`fabric_common::Error::InvalidState`].
pub trait StateStore: Send + Sync {
    /// Point lookup: the current versioned value of `key`.
    fn get(&self, key: &Key) -> Result<Option<VersionedValue>>;

    /// Atomically commits a whole block's writes and publishes the block as
    /// the last committed one (see the trait-level commit protocol). The
    /// block-grained form lets engines batch their synchronization: one
    /// lock acquisition per shard, one WAL record per block.
    fn apply_write_batch(&self, batch: &WriteBatch<'_>) -> Result<()>;

    /// Compatibility wrapper: commits `writes` as a [`WriteBatch`]. Same
    /// contract as [`StateStore::apply_write_batch`].
    fn apply_block(&self, block: BlockNum, writes: &[CommitWrite]) -> Result<()> {
        self.apply_write_batch(&WriteBatch::from_writes(block, writes))
    }

    /// Lane-parallel form of [`StateStore::apply_write_batch`]: engines
    /// that shard their state may install the batch concurrently on the
    /// caller-owned [`LanePool`]'s lanes. Same commit contract, same
    /// observable result — the lane count must never be semantic. The
    /// default falls back to the sequential path; engines whose durability
    /// pipeline is inherently serial (e.g. a group-commit WAL) keep it.
    fn apply_write_batch_lanes(&self, batch: &WriteBatch<'_>, pool: &LanePool) -> Result<()> {
        let _ = pool;
        self.apply_write_batch(batch)
    }

    /// Batched version lookup: the current [`Version`] of every key in
    /// `keys`, in input order (`None` = key absent). One call per block is
    /// the validation path's whole read traffic — engines override the
    /// default per-key loop with real batching (one lock per shard, one
    /// bloom consult per key per run).
    fn multi_get_versions(&self, keys: &[Key]) -> Result<Vec<Option<Version>>> {
        let mut out = Vec::with_capacity(keys.len());
        self.multi_get_versions_into(keys, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`StateStore::multi_get_versions`]: clears
    /// `out` and fills it with one entry per key, reusing its capacity.
    ///
    /// Like point reads, the batch is not atomic with respect to a
    /// concurrent block commit; each returned version speaks for itself and
    /// the MVCC machinery decides what a mismatch means.
    fn multi_get_versions_into(
        &self,
        keys: &[Key],
        out: &mut Vec<Option<Version>>,
    ) -> Result<()> {
        out.clear();
        for key in keys {
            out.push(self.get(key)?.map(|vv| vv.version));
        }
        Ok(())
    }

    /// The engine's access counters (shared handles; see [`StoreCounters`]).
    /// The default returns fresh zeroed counters for engines that do not
    /// track access statistics.
    fn counters(&self) -> StoreCounters {
        StoreCounters::new()
    }

    /// How many recent versions per key the engine retains for snapshot
    /// reads (the `N` of the multi-version contract). `1` means
    /// current-state only: reads-at-height degrade to the single-version
    /// defaults below, except at heights kept live by a pin.
    fn retained_versions(&self) -> usize {
        1
    }

    /// Pins a snapshot at the current commit watermark and returns the
    /// RAII guard. While the guard lives, reads at its height are exact:
    /// the epoch GC will not trim any chain entry the height resolves
    /// through, regardless of [`StateStore::retained_versions`].
    ///
    /// This is the lockless-endorsement entry point: pinning takes no
    /// commit ticket and never blocks a committer (Meir et al.,
    /// "Lockless Transaction Isolation in Hyperledger Fabric").
    fn pin_snapshot(&self) -> StateSnapshot {
        StateSnapshot::unregistered(self.last_committed_block())
    }

    /// Pins a snapshot at an explicit `height` (which must not exceed the
    /// current watermark). Reads at heights below the retention floor and
    /// not covered by this pin at registration time are best-effort.
    fn pin_snapshot_at(&self, height: BlockNum) -> StateSnapshot {
        StateSnapshot::unregistered(height)
    }

    /// Versioned point read: the key's value as of `height` plus its
    /// newest committed fact, in one chain resolution (see
    /// [`SnapshotGet`]). `height` should come from a live
    /// [`StateSnapshot`]; unpinned historical heights below the retention
    /// floor resolve best-effort.
    ///
    /// The single-version default serves the current value: exact whenever
    /// the newest write predates `height` (the common quiescent case), and
    /// correctly flagged stale otherwise.
    fn get_at(&self, key: &Key, height: BlockNum) -> Result<SnapshotGet> {
        Ok(match self.get(key)? {
            None => SnapshotGet::default(),
            Some(vv) => {
                let newest = Some((vv.version, Some(vv.value.clone())));
                let at_height = (vv.version.block <= height).then_some(vv);
                SnapshotGet { at_height, newest }
            }
        })
    }

    /// Batched form of [`StateStore::get_at`]: clears `out` and fills it
    /// with one [`SnapshotGet`] per key, in input order, reusing its
    /// capacity. One call resolves a whole declared read set in a single
    /// engine round trip (one lock per touched shard, one probe pass per
    /// run), mirroring [`StateStore::multi_get_versions_into`].
    fn multi_get_at_into(
        &self,
        keys: &[Key],
        height: BlockNum,
        out: &mut Vec<SnapshotGet>,
    ) -> Result<()> {
        out.clear();
        for key in keys {
            out.push(self.get_at(key, height)?);
        }
        Ok(())
    }

    /// Range scan at a height: every key in `[start, end)` live at
    /// `height`, in ascending key order, each with its full
    /// [`SnapshotGet`] so the caller can classify staleness without a
    /// second pass. Keys created after `height` are not returned (they
    /// are phantoms to the snapshot); keys deleted after `height` are
    /// returned with their at-height value and a newer tombstone in
    /// `newest`.
    ///
    /// The single-version default scans current state and filters to
    /// entries whose version predates `height` — exact on quiescent
    /// stores, best-effort under concurrent commits.
    fn scan_range_at(
        &self,
        start: &Key,
        end: &Key,
        height: BlockNum,
    ) -> Result<Vec<(Key, SnapshotGet)>> {
        Ok(self
            .scan_range(start, end)?
            .into_iter()
            .filter(|(_, vv)| vv.version.block <= height)
            .map(|(k, vv)| {
                let newest = Some((vv.version, Some(vv.value.clone())));
                (k, SnapshotGet { at_height: Some(vv), newest })
            })
            .collect())
    }

    /// Epoch-GC sweep: trims every version chain down to what the current
    /// retention floor (oldest live pin, else the commit watermark) and
    /// [`StateStore::retained_versions`] require, returning the number of
    /// superseded versions dropped. Engines also trim incrementally on
    /// every commit (touched chains only); this full sweep exists for
    /// tests and for reclaiming after a burst of pins is released.
    fn collect_garbage(&self) -> Result<usize> {
        Ok(0)
    }

    /// The highest block whose writes are fully visible.
    fn last_committed_block(&self) -> BlockNum;

    /// Approximate number of live keys (diagnostics only).
    fn approximate_len(&self) -> usize;

    /// Range scan: all live keys in `[start, end)` with their versioned
    /// values, in ascending key order — Fabric's `GetStateByRange`.
    ///
    /// The scan is not atomic with respect to concurrent block commits;
    /// like point reads, each returned entry carries its version and the
    /// MVCC machinery (validation-phase checks, Fabric++ snapshot checks)
    /// decides whether the reading transaction survives.
    fn scan_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, VersionedValue)>>;

    /// Every live entry, in ascending key order: the unbounded form of
    /// [`StateStore::scan_range`] (keys are arbitrary byte strings, so no
    /// `[start, end)` pair can express "everything"). Diagnostics and
    /// digesting only — not a hot-path API.
    fn scan_all(&self) -> Result<Vec<(Key, VersionedValue)>>;

    /// Content digest of the full current state: SHA-256 over every live
    /// `(key, value, version)` entry in ascending key order, each field
    /// length-prefixed.
    ///
    /// The digest is **engine-independent** — a [`crate::MemStateDb`], a
    /// [`crate::LsmStateDb`], and a store rebuilt from the ledger by
    /// recovery all hash to the same value when they hold the same state —
    /// which is exactly what lets determinism-conformance harnesses compare
    /// replicas that differ only in their storage engine. Quiescent states
    /// only: the scan underneath is not atomic against concurrent commits.
    fn state_digest(&self) -> Result<Digest> {
        let mut h = Sha256::new();
        let mut enc = Encoder::with_capacity(128);
        for (key, vv) in self.scan_all()? {
            enc.put_bytes(key.as_bytes());
            enc.put_bytes(vv.value.as_bytes());
            enc.put_u64(vv.version.block);
            enc.put_u32(vv.version.tx);
            h.update(enc.as_slice());
            enc = Encoder::with_capacity(128);
        }
        Ok(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_write_constructors() {
        let p = CommitWrite::put(Key::from("k"), Value::from_i64(1), 3);
        assert_eq!(p.value, Some(Value::from_i64(1)));
        assert_eq!(p.tx, 3);
        let d = CommitWrite::delete(Key::from("k"), 4);
        assert_eq!(d.value, None);
        assert_eq!(d.tx, 4);
    }

    #[test]
    fn versioned_value_holds_pair() {
        let vv = VersionedValue::new(Value::from_i64(7), Version::new(2, 1));
        assert_eq!(vv.value.as_i64(), Some(7));
        assert_eq!(vv.version, Version::new(2, 1));
    }

    #[test]
    fn write_batch_from_writes_borrows_all_entries() {
        let writes = vec![
            CommitWrite::put(Key::from("a"), Value::from_i64(1), 0),
            CommitWrite::delete(Key::from("b"), 2),
        ];
        let batch = WriteBatch::from_writes(7, &writes);
        assert_eq!(batch.block, 7);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.writes[0].key, &Key::from("a"));
        assert_eq!(batch.writes[0].value, Some(&Value::from_i64(1)));
        assert_eq!(batch.writes[0].tx, 0);
        assert_eq!(batch.writes[1].value, None);
        assert_eq!(batch.writes[1].tx, 2);
    }

    #[test]
    fn write_batch_push_builds_incrementally() {
        let key = Key::from("k");
        let value = Value::from_i64(9);
        let mut batch = WriteBatch::with_capacity(3, 4);
        assert!(batch.is_empty());
        batch.push(WriteRef { key: &key, value: Some(&value), tx: 1 });
        batch.push(WriteRef { key: &key, value: None, tx: 2 });
        assert_eq!(batch.len(), 2);
        let owned = CommitWrite::delete(key.clone(), 2);
        assert_eq!(batch.writes[1], owned.as_write_ref());
    }
}
