//! The [`StateStore`] trait: what every state-database engine must provide
//! to the peer pipeline.

use fabric_common::{BlockNum, Key, Result, TxNum, Value, Version};

/// A value in the current state together with the version of the transaction
/// that wrote it — exactly Fabric's `(value, version-number)` pair
/// (paper §5.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The stored value.
    pub value: Value,
    /// Version of the writing transaction.
    pub version: Version,
}

impl VersionedValue {
    /// Creates a versioned value.
    pub fn new(value: Value, version: Version) -> Self {
        VersionedValue { value, version }
    }
}

/// One write to install during a block commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitWrite {
    /// Key to write.
    pub key: Key,
    /// New value; `None` deletes the key.
    pub value: Option<Value>,
    /// Position of the writing transaction within the committing block;
    /// together with the block number this forms the new [`Version`].
    pub tx: TxNum,
}

impl CommitWrite {
    /// Creates a put.
    pub fn put(key: Key, value: Value, tx: TxNum) -> Self {
        CommitWrite { key, value: Some(value), tx }
    }

    /// Creates a delete.
    pub fn delete(key: Key, tx: TxNum) -> Self {
        CommitWrite { key, value: None, tx }
    }
}

/// A versioned key-value state database.
///
/// # Commit protocol
///
/// [`StateStore::apply_block`] must:
///
/// 1. install every write with version `(block, write.tx)`, each key update
///    individually atomic (readers see either the old or the new versioned
///    value, never a torn pair), and
/// 2. only after *all* writes are installed, publish `block` as the new
///    [`StateStore::last_committed_block`].
///
/// This ordering is what makes the Fabric++ lock-free early-abort check
/// sound: a reader that pinned `last_committed_block = n` and then observes
/// a version with `block > n` knows a concurrent commit invalidated its
/// snapshot (paper §5.2.1); conversely a reader that pins `n` *after* the
/// publication is guaranteed to see all of block `n`'s writes.
///
/// Blocks must be applied in strictly increasing order starting from the
/// genesis block 0; engines reject gaps and replays with
/// [`fabric_common::Error::InvalidState`].
pub trait StateStore: Send + Sync {
    /// Point lookup: the current versioned value of `key`.
    fn get(&self, key: &Key) -> Result<Option<VersionedValue>>;

    /// Atomically commits all writes of `block` and publishes it as the last
    /// committed block (see the trait-level commit protocol).
    fn apply_block(&self, block: BlockNum, writes: &[CommitWrite]) -> Result<()>;

    /// The highest block whose writes are fully visible.
    fn last_committed_block(&self) -> BlockNum;

    /// Approximate number of live keys (diagnostics only).
    fn approximate_len(&self) -> usize;

    /// Range scan: all live keys in `[start, end)` with their versioned
    /// values, in ascending key order — Fabric's `GetStateByRange`.
    ///
    /// The scan is not atomic with respect to concurrent block commits;
    /// like point reads, each returned entry carries its version and the
    /// MVCC machinery (validation-phase checks, Fabric++ snapshot checks)
    /// decides whether the reading transaction survives.
    fn scan_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, VersionedValue)>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_write_constructors() {
        let p = CommitWrite::put(Key::from("k"), Value::from_i64(1), 3);
        assert_eq!(p.value, Some(Value::from_i64(1)));
        assert_eq!(p.tx, 3);
        let d = CommitWrite::delete(Key::from("k"), 4);
        assert_eq!(d.value, None);
        assert_eq!(d.tx, 4);
    }

    #[test]
    fn versioned_value_holds_pair() {
        let vv = VersionedValue::new(Value::from_i64(7), Version::new(2, 1));
        assert_eq!(vv.value.as_i64(), Some(7));
        assert_eq!(vv.version, Version::new(2, 1));
    }
}
