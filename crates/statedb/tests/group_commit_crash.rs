//! Crash-consistency of the group-commit WAL record: a block's writes form
//! ONE frame, so a crash mid-append can only tear the *whole block* — on
//! recovery either every write of the block is replayed or none is, never
//! half a block.
//!
//! Extends the engine's single-entry torn-write test to wide blocks whose
//! frames are torn at several depths, including far enough in that many
//! complete `DiskEntry` encodings sit before the tear.

use std::path::PathBuf;
use std::sync::Arc;

use fabric_common::{BlockNum, Error, Key, Value, Version};
use fabric_statedb::{
    CommitWrite, LsmConfig, LsmStateDb, StateStore, WalFaultPolicy, WalIoFault,
};

fn k(i: u64) -> Key {
    Key::composite("gc", i)
}

fn wide_block(block: u64, count: u64) -> Vec<CommitWrite> {
    (0..count)
        .map(|i| CommitWrite::put(k(i), Value::from_i64((block * 1000 + i) as i64), i as u32))
        .collect()
}

/// Tears the append of one block `keep` bytes into its frame.
struct TearBlockAt {
    block: BlockNum,
    keep: usize,
}

impl WalFaultPolicy for TearBlockAt {
    fn on_append(&self, block: BlockNum) -> WalIoFault {
        if block == self.block {
            WalIoFault::TornWrite { keep: self.keep }
        } else {
            WalIoFault::None
        }
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fabric-group-commit-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Commits two healthy wide blocks, tears block 2's group-commit frame at
/// `keep` bytes, and verifies recovery drops block 2 atomically.
fn torn_group_commit_roundtrip(name: &str, keep: usize) {
    let dir = tmpdir(name);
    {
        let cfg = LsmConfig {
            wal_faults: Some(Arc::new(TearBlockAt { block: 2, keep })),
            ..LsmConfig::default()
        };
        let db = LsmStateDb::open(&dir, cfg).unwrap();
        db.apply_block(0, &wide_block(0, 100)).unwrap();
        db.apply_block(1, &wide_block(1, 100)).unwrap();
        let err = db.apply_block(2, &wide_block(2, 100)).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "unexpected error: {err}");
        // Process modelled as crashed here (db dropped).
    }

    let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
    assert_eq!(db.last_committed_block(), 1, "torn block must not be acknowledged");
    // Blocks 0 and 1 survive in full...
    for i in (0..100).step_by(13) {
        let got = db.get(&k(i)).unwrap().unwrap();
        assert_eq!(got.value, Value::from_i64((1000 + i) as i64), "key {i}");
        assert_eq!(got.version, Version::new(1, i as u32));
    }
    // ...and NO write of block 2 surfaces, even ones whose encodings were
    // fully persisted before the tear point.
    let probes: Vec<Key> = (0..100).map(k).collect();
    let versions = db.multi_get_versions(&probes).unwrap();
    assert!(
        versions.iter().all(|v| v.map(|v| v.block) == Some(1)),
        "a torn group-commit record must vanish atomically: {versions:?}"
    );

    // The block can be recommitted and then everything is visible.
    db.apply_block(2, &wide_block(2, 100)).unwrap();
    let got = db.get(&k(99)).unwrap().unwrap();
    assert_eq!(got.value, Value::from_i64(2099));
    assert_eq!(got.version, Version::new(2, 99));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_in_frame_header() {
    // Tear inside the 8-byte length+crc header.
    torn_group_commit_roundtrip("header", 5);
}

#[test]
fn torn_just_after_header() {
    // Header fully persisted, payload empty: length promises more bytes
    // than exist.
    torn_group_commit_roundtrip("after-header", 8);
}

#[test]
fn torn_mid_payload_after_many_whole_entries() {
    // Deep tear: dozens of complete DiskEntry encodings precede the tear,
    // which is exactly the half-a-block a per-write WAL would leak.
    torn_group_commit_roundtrip("mid-payload", 2048);
}

#[test]
fn torn_one_byte_short_of_complete() {
    // Worst case: the entire frame except its last byte is on disk; the
    // crc must reject it.
    let dir = tmpdir("one-short");
    let frame_len = {
        // Measure the frame by committing the same block without faults.
        let probe_dir = tmpdir("one-short-probe");
        let db = LsmStateDb::open(&probe_dir, LsmConfig::default()).unwrap();
        db.apply_block(0, &wide_block(2, 100)).unwrap();
        let len = std::fs::metadata(probe_dir.join("wal.log")).unwrap().len() as usize;
        std::fs::remove_dir_all(&probe_dir).unwrap();
        len
    };
    {
        let cfg = LsmConfig {
            wal_faults: Some(Arc::new(TearBlockAt { block: 2, keep: frame_len - 1 })),
            ..LsmConfig::default()
        };
        let db = LsmStateDb::open(&dir, cfg).unwrap();
        db.apply_block(0, &wide_block(0, 100)).unwrap();
        db.apply_block(1, &wide_block(1, 100)).unwrap();
        assert!(db.apply_block(2, &wide_block(2, 100)).is_err());
    }
    let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
    assert_eq!(db.last_committed_block(), 1);
    assert!(db.multi_get_versions(&[k(0)]).unwrap()[0].is_some_and(|v| v.block == 1));
    std::fs::remove_dir_all(&dir).unwrap();
}
