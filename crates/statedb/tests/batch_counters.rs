//! Enforces the batched state-access contract through the engines' own
//! access counters:
//!
//! * `MemStateDb::apply_write_batch` acquires each shard lock **at most
//!   once per block**, however many writes the block carries;
//! * one `multi_get_versions` call is one batch, probing each input key
//!   exactly once;
//! * the LSM engine writes **one WAL record per committed block** (and one
//!   fsync per block when `sync_writes` is on, zero otherwise).

use std::path::PathBuf;

use fabric_common::{Key, Value, Version};
use fabric_statedb::{CommitWrite, LsmConfig, LsmStateDb, MemStateDb, StateStore};

fn k(i: u64) -> Key {
    Key::composite("K", i)
}

fn block_writes(block: u64, count: u64) -> Vec<CommitWrite> {
    (0..count)
        .map(|i| CommitWrite::put(k(i), Value::from_i64((block * count + i) as i64), i as u32))
        .collect()
}

#[test]
fn memdb_takes_each_shard_lock_at_most_once_per_block() {
    let db = MemStateDb::with_shards(8);
    db.apply_block(0, &block_writes(0, 1000)).unwrap();
    let base = db.counters().snapshot();

    // 1000 writes over 8 shards: without batching this would be 1000 lock
    // acquisitions; the contract caps it at the shard count.
    db.apply_block(1, &block_writes(1, 1000)).unwrap();
    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.blocks_applied, 1);
    assert!(
        stats.shard_lock_acquisitions <= 8,
        "1000 writes took {} shard locks (shard count 8)",
        stats.shard_lock_acquisitions
    );
    assert!(stats.shard_lock_acquisitions >= 1);

    // An empty block takes no shard lock at all.
    let base = db.counters().snapshot();
    db.apply_block(2, &[]).unwrap();
    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.blocks_applied, 1);
    assert_eq!(stats.shard_lock_acquisitions, 0);
}

#[test]
fn memdb_multi_get_counts_one_batch_and_probes_each_key_once() {
    let db = MemStateDb::with_shards(8);
    db.apply_block(0, &block_writes(0, 100)).unwrap();
    let base = db.counters().snapshot();

    let probes: Vec<Key> = (0..100).map(k).collect();
    let versions = db.multi_get_versions(&probes).unwrap();
    assert_eq!(versions.len(), 100);
    assert!(versions.iter().all(|v| v.is_some()));

    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.multi_get_batches, 1, "one call = one batch");
    assert_eq!(stats.multi_get_keys, 100, "each key probed exactly once");
    assert_eq!(stats.point_gets, 0, "no per-key fallback behind the batch");
}

#[test]
fn memdb_point_gets_are_counted_separately() {
    let db = MemStateDb::with_shards(4);
    db.apply_block(0, &block_writes(0, 10)).unwrap();
    let base = db.counters().snapshot();
    for i in 0..5 {
        db.get(&k(i)).unwrap();
    }
    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.point_gets, 5);
    assert_eq!(stats.multi_get_batches, 0);
}

#[test]
fn memdb_parallel_apply_threshold_commits_correctly() {
    // Above the parallel-apply threshold the shard lanes fan out over
    // scoped threads; the observable result (values, versions, watermark,
    // one lock per shard) must be identical to the sequential path.
    let db = MemStateDb::with_shards(16);
    db.apply_block(0, &[]).unwrap();
    let base = db.counters().snapshot();

    let writes = block_writes(1, 8192); // >= PARALLEL_APPLY_MIN_WRITES
    db.apply_block(1, &writes).unwrap();

    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.blocks_applied, 1);
    assert!(stats.shard_lock_acquisitions <= 16);
    assert_eq!(db.last_committed_block(), 1);
    for i in (0..8192).step_by(997) {
        let got = db.get(&k(i)).unwrap().unwrap();
        assert_eq!(got.value, Value::from_i64((8192 + i) as i64));
        assert_eq!(got.version, Version::new(1, i as u32));
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("fabric-batch-counters-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn lsm_writes_one_wal_record_per_block_no_fsync_by_default() {
    let dir = tmpdir("wal-records");
    let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
    let base = db.counters().snapshot();

    for b in 0..5u64 {
        db.apply_block(b, &block_writes(b, 200)).unwrap();
    }
    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.wal_records, 5, "one group-commit record per block");
    assert_eq!(stats.wal_fsyncs, 0, "sync_writes off: flush only, no fsync");
    assert_eq!(stats.blocks_applied, 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lsm_sync_writes_means_one_fsync_per_block() {
    let dir = tmpdir("wal-fsyncs");
    let cfg = LsmConfig { sync_writes: true, ..LsmConfig::default() };
    let db = LsmStateDb::open(&dir, cfg).unwrap();
    let base = db.counters().snapshot();

    for b in 0..3u64 {
        db.apply_block(b, &block_writes(b, 50)).unwrap();
    }
    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.wal_records, 3);
    assert_eq!(stats.wal_fsyncs, 3, "sync_writes on: exactly one fsync per block");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lsm_multi_get_resolves_across_memtable_runs_and_tombstones() {
    let dir = tmpdir("multi-get");
    let cfg = LsmConfig { memtable_max_bytes: 1024, ..LsmConfig::default() };
    let db = LsmStateDb::open(&dir, cfg).unwrap();

    // Block 0 → flushed run; block 1 overwrites one key and deletes
    // another (also flushed); block 2 stays in the memtable.
    db.apply_block(0, &block_writes(0, 20)).unwrap();
    db.force_flush().unwrap();
    db.apply_block(
        1,
        &[CommitWrite::put(k(3), Value::from_i64(333), 0), CommitWrite::delete(k(4), 1)],
    )
    .unwrap();
    db.force_flush().unwrap();
    db.apply_block(2, &[CommitWrite::put(k(5), Value::from_i64(555), 0)]).unwrap();

    let base = db.counters().snapshot();
    let probes: Vec<Key> = vec![k(3), k(4), k(5), k(6), k(999)];
    let versions = db.multi_get_versions(&probes).unwrap();
    assert_eq!(versions[0], Some(Version::new(1, 0)), "newer run shadows older");
    assert_eq!(versions[1], None, "tombstone resolves as absent, not older version");
    assert_eq!(versions[2], Some(Version::new(2, 0)), "memtable shadows runs");
    assert_eq!(versions[3], Some(Version::new(0, 6)));
    assert_eq!(versions[4], None, "never-written key");

    let stats = db.counters().snapshot().since(&base);
    assert_eq!(stats.multi_get_batches, 1);
    assert_eq!(stats.multi_get_keys, 5);
    assert_eq!(stats.point_gets, 0);

    // Batched answers match the point-get oracle bit for bit.
    for (key, batched) in probes.iter().zip(&versions) {
        let oracle = db.get(key).unwrap().map(|vv| vv.version);
        assert_eq!(&oracle, batched, "mismatch for {key:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
