//! Asserts the snapshot read path's allocation contract: once buffers and
//! version chains have warmed up, repeat pin → versioned-read → unpin
//! cycles on `MemStateDb` perform **zero heap allocations** (release
//! builds; debug builds get a small bound for the standard library's debug
//! machinery) — even with commits interleaved between the reads.
//!
//! This is the property the lockless-endorsement design rests on: an
//! endorser resolving a declared read set at a pinned height touches the
//! pin registry (warm sorted vec), the per-shard grouping scratch (warm),
//! the caller's output buffers (warm), and clones refcounted values — and
//! nothing else. The commit side was already gated by `batched_alloc.rs`;
//! here the same gate covers `pin_snapshot`, `get_at`, `multi_get_at_into`,
//! and the `SnapshotView` classification layer on top.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric_common::{Key, Value};
use fabric_statedb::{
    CommitWrite, MemStateDb, SnapshotGet, SnapshotRead, SnapshotView, StateStore, WriteBatch,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn assert_steady_state(allocated: u64, what: &str) {
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{what}: {allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "{what}: steady-state snapshot reads must not allocate");
    }
}

const KEYS: usize = 256;
const WARM_BLOCKS: usize = 6;
const MEASURED_BLOCKS: usize = 8;

/// Every block rewrites the whole key set, pre-built off the clock.
fn build_blocks(keys: &[Key]) -> Vec<Vec<CommitWrite>> {
    (0..1 + WARM_BLOCKS + MEASURED_BLOCKS)
        .map(|b| {
            keys.iter()
                .enumerate()
                .map(|(i, k)| {
                    CommitWrite::put(k.clone(), Value::from_i64((b * KEYS + i) as i64), i as u32)
                })
                .collect()
        })
        .collect()
}

#[test]
fn steady_state_pinned_reads_under_commits_do_not_allocate() {
    let db = MemStateDb::with_shards(16);
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::composite("K", i as u64)).collect();
    let blocks = build_blocks(&keys);

    // Genesis creates every hash-map slot (allowed to allocate freely).
    db.apply_block(0, &blocks[0]).unwrap();
    let batches: Vec<WriteBatch<'_>> = blocks[1..]
        .iter()
        .enumerate()
        .map(|(j, writes)| WriteBatch::from_writes((j + 1) as u64, writes))
        .collect();

    let mut out: Vec<SnapshotGet> = Vec::new();
    let cycle = |batch: &WriteBatch<'_>, out: &mut Vec<SnapshotGet>| {
        db.apply_write_batch(batch).unwrap();
        let snap = db.pin_snapshot();
        let h = snap.height();
        db.multi_get_at_into(&keys, h, out).unwrap();
        // Point reads on the same pinned height.
        for key in keys.iter().step_by(64) {
            let got = db.get_at(key, h).unwrap();
            assert!(got.at_height.is_some());
        }
        h
        // `snap` drops here: unpin through the warm registry.
    };

    for batch in &batches[..WARM_BLOCKS] {
        cycle(batch, &mut out);
    }

    let before = allocations();
    let mut last = 0;
    for batch in &batches[WARM_BLOCKS..] {
        last = cycle(batch, &mut out);
    }
    let allocated = allocations() - before;

    // Sanity: the loop really pinned the final block and read its values.
    assert_eq!(last, (WARM_BLOCKS + MEASURED_BLOCKS) as u64);
    assert_eq!(out.len(), KEYS);
    assert!(out.iter().all(|g| g.at_height.is_some()), "all keys live at the pinned height");
    let expected0 = ((WARM_BLOCKS + MEASURED_BLOCKS) * KEYS) as i64;
    assert_eq!(out[0].at_height.as_ref().unwrap().value.as_i64(), Some(expected0));
    assert_steady_state(allocated, "pin + versioned multi-get under commits");
}

#[test]
fn steady_state_snapshot_view_classification_does_not_allocate() {
    let db: Arc<MemStateDb> = Arc::new(MemStateDb::with_shards(16));
    let store: Arc<dyn StateStore> = db.clone();
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::composite("K", i as u64)).collect();
    let blocks = build_blocks(&keys);

    db.apply_block(0, &blocks[0]).unwrap();
    let batches: Vec<WriteBatch<'_>> = blocks[1..]
        .iter()
        .enumerate()
        .map(|(j, writes)| WriteBatch::from_writes((j + 1) as u64, writes))
        .collect();

    let mut scratch: Vec<SnapshotGet> = Vec::new();
    let mut reads: Vec<SnapshotRead> = Vec::new();
    // Each cycle pins a view, reads the set fresh, lets a commit land
    // *under* the live view, and reads again — so the classification layer
    // exercises both the `Fresh` and the `Stale` arms every iteration.
    let mut cycle = |batch: &WriteBatch<'_>| -> (usize, usize) {
        let view = SnapshotView::pin(Arc::clone(&store));
        view.read_many_into(&keys, &mut scratch, &mut reads).unwrap();
        let fresh = reads.iter().filter(|r| matches!(r, SnapshotRead::Fresh(_))).count();
        db.apply_write_batch(batch).unwrap();
        view.read_many_into(&keys, &mut scratch, &mut reads).unwrap();
        let stale = reads.iter().filter(|r| r.is_stale()).count();
        (fresh, stale)
        // `view` drops here, releasing the pin before the next commit.
    };

    for batch in &batches[..WARM_BLOCKS] {
        cycle(batch);
    }

    let before = allocations();
    let mut totals = (0, 0);
    for batch in &batches[WARM_BLOCKS..] {
        let (f, s) = cycle(batch);
        totals.0 += f;
        totals.1 += s;
    }
    let allocated = allocations() - before;

    // Sanity: every measured cycle saw the full key set fresh before the
    // commit and stale after it.
    assert_eq!(totals, (MEASURED_BLOCKS * KEYS, MEASURED_BLOCKS * KEYS));
    assert_eq!(db.last_committed_block(), (WARM_BLOCKS + MEASURED_BLOCKS) as u64);
    assert_steady_state(allocated, "snapshot-view classification under commits");
}
