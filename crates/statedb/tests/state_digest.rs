//! Engine-independence of [`StateStore::state_digest`]: the in-memory and
//! LSM engines, fed the same blocks, must hash to the same digest — that is
//! what lets the conformance harness compare replicas that differ only in
//! their storage engine.

use std::path::PathBuf;

use fabric_common::{Key, Value};
use fabric_statedb::{CommitWrite, LsmConfig, LsmStateDb, MemStateDb, StateStore};

fn k(i: u64) -> Key {
    Key::composite("acct", i)
}
fn v(n: i64) -> Value {
    Value::from_i64(n)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fabric-digest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Blocks exercising puts, overwrites, and deletes.
fn blocks() -> Vec<Vec<CommitWrite>> {
    vec![
        (0..16).map(|i| CommitWrite::put(k(i), v(100 + i as i64), i as u32)).collect(),
        vec![CommitWrite::put(k(3), v(333), 0), CommitWrite::delete(k(4), 1)],
        vec![CommitWrite::put(k(100), v(1), 0), CommitWrite::put(k(3), v(334), 1)],
    ]
}

fn apply_all(store: &dyn StateStore, flush: Option<&LsmStateDb>) {
    for (n, writes) in blocks().into_iter().enumerate() {
        store.apply_block(n as u64, &writes).unwrap();
        if let Some(db) = flush {
            // Flushing between blocks forces multi-run merge on read.
            if n == 0 {
                db.force_flush().unwrap();
            }
        }
    }
}

#[test]
fn mem_and_lsm_digests_agree() {
    let mem = MemStateDb::new();
    apply_all(&mem, None);

    let dir = tmpdir("agree");
    let lsm = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
    apply_all(&lsm, Some(&lsm));

    assert_eq!(mem.state_digest().unwrap(), lsm.state_digest().unwrap());
    // scan_all agrees too, entry for entry, in ascending key order.
    let a = mem.scan_all().unwrap();
    let b = lsm.scan_all().unwrap();
    assert_eq!(a, b);
    assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "ascending key order");
    assert!(!a.iter().any(|(key, _)| key == &k(4)), "deleted key absent");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn digest_is_content_sensitive() {
    let a = MemStateDb::new();
    let b = MemStateDb::new();
    apply_all(&a, None);
    apply_all(&b, None);
    assert_eq!(a.state_digest().unwrap(), b.state_digest().unwrap());

    // One diverging value flips the digest.
    b.apply_block(3, &[CommitWrite::put(k(0), v(-1), 0)]).unwrap();
    assert_ne!(a.state_digest().unwrap(), b.state_digest().unwrap());

    // Same value re-written at a different version also flips it (versions
    // are part of the replicated state).
    let c = MemStateDb::new();
    apply_all(&c, None);
    a.apply_block(3, &[CommitWrite::put(k(0), v(100), 0)]).unwrap();
    assert_ne!(a.state_digest().unwrap(), c.state_digest().unwrap());
}

#[test]
fn empty_stores_hash_equal() {
    let mem = MemStateDb::new();
    let dir = tmpdir("empty");
    let lsm = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
    assert_eq!(mem.state_digest().unwrap(), lsm.state_digest().unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}
