//! Asserts the batched hot path's allocation contract: once the store's
//! shard-grouping scratch and the caller's output buffers have warmed up,
//! repeat `apply_write_batch` + `multi_get_versions_into` cycles on
//! `MemStateDb` perform **zero heap allocations** (release builds; debug
//! builds get a small bound for the standard library's debug machinery).
//!
//! The measured blocks rewrite a fixed key set, the way a hot working set
//! looks to a warm store: hash-map slots already exist, keys and values are
//! refcounted buffers, and the per-shard index groups retain their
//! capacity. Blocks stay below the engine's parallel-apply threshold —
//! spawning scoped threads allocates by design, so the sequential path is
//! the one held to zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fabric_common::{Key, Value, Version};
use fabric_statedb::{CommitWrite, MemStateDb, StateStore, WriteBatch};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn assert_steady_state(allocated: u64, what: &str) {
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{what}: {allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "{what}: steady-state batched loop must not allocate");
    }
}

const KEYS: usize = 512;
const WARM_BLOCKS: usize = 4;
const MEASURED_BLOCKS: usize = 8;

#[test]
fn steady_state_batched_commit_and_prefetch_do_not_allocate() {
    let db = MemStateDb::with_shards(16);
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::composite("K", i as u64)).collect();

    // Storage for every block's writes, built before measuring. Each block
    // rewrites the whole key set with fresh values.
    let blocks: Vec<Vec<CommitWrite>> = (0..1 + WARM_BLOCKS + MEASURED_BLOCKS)
        .map(|b| {
            keys.iter()
                .enumerate()
                .map(|(i, k)| {
                    CommitWrite::put(
                        k.clone(),
                        Value::from_i64((b * KEYS + i) as i64),
                        i as u32,
                    )
                })
                .collect()
        })
        .collect();

    // Genesis creates every hash-map slot (allowed to allocate freely).
    db.apply_block(0, &blocks[0]).unwrap();

    // Pre-assemble the batches so batch construction is off the clock too.
    let batches: Vec<WriteBatch<'_>> = blocks[1..]
        .iter()
        .enumerate()
        .map(|(j, writes)| WriteBatch::from_writes((j + 1) as u64, writes))
        .collect();

    let mut fetched: Vec<Option<Version>> = Vec::new();
    for batch in &batches[..WARM_BLOCKS] {
        db.apply_write_batch(batch).unwrap();
        db.multi_get_versions_into(&keys, &mut fetched).unwrap();
    }

    let before = allocations();
    for batch in &batches[WARM_BLOCKS..] {
        db.apply_write_batch(batch).unwrap();
        db.multi_get_versions_into(&keys, &mut fetched).unwrap();
    }
    let allocated = allocations() - before;

    // Sanity: the loop really ran and really committed.
    assert_eq!(db.last_committed_block(), (WARM_BLOCKS + MEASURED_BLOCKS) as u64);
    assert_eq!(fetched.len(), KEYS);
    assert!(fetched.iter().all(|v| v.is_some()), "all keys live after rewrites");
    assert_steady_state(allocated, "batched commit + prefetch");
}

#[test]
fn steady_state_multi_get_with_absent_keys_does_not_allocate() {
    // Absent keys exercise the `None` fill path; they must not cost
    // allocations either.
    let db = MemStateDb::with_shards(8);
    let live: Vec<CommitWrite> = (0..64)
        .map(|i| CommitWrite::put(Key::composite("live", i), Value::from_i64(i as i64), 0))
        .collect();
    db.apply_block(0, &live).unwrap();

    let probes: Vec<Key> = (0..128)
        .map(|i| {
            if i % 2 == 0 {
                Key::composite("live", i / 2)
            } else {
                Key::composite("ghost", i)
            }
        })
        .collect();

    let mut fetched: Vec<Option<Version>> = Vec::new();
    for _ in 0..4 {
        db.multi_get_versions_into(&probes, &mut fetched).unwrap();
    }
    let before = allocations();
    for _ in 0..8 {
        db.multi_get_versions_into(&probes, &mut fetched).unwrap();
    }
    let allocated = allocations() - before;

    assert_eq!(fetched.iter().filter(|v| v.is_some()).count(), 64);
    assert_eq!(fetched.iter().filter(|v| v.is_none()).count(), 64);
    assert_steady_state(allocated, "multi-get with absent keys");
}
