//! Model-based property test: the LSM engine against a trivial in-memory
//! reference model, under random block sequences, forced flushes,
//! compactions, and engine reopens.

use std::collections::HashMap;

use fabric_common::{Key, Value, Version};
use fabric_statedb::lsm::sstable::SsTableOptions;
use fabric_statedb::{CommitWrite, LsmConfig, LsmStateDb, StateStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    /// One block: a list of (key_id, value-or-delete) pairs.
    Block(Vec<(u8, Option<i64>)>),
    Flush,
    Reopen,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => proptest::collection::vec(
            (any::<u8>(), proptest::option::of(any::<i64>())),
            0..8,
        )
        .prop_map(Step::Block),
        1 => Just(Step::Flush),
        1 => Just(Step::Reopen),
    ]
}

fn key(id: u8) -> Key {
    Key::composite("k", id as u64)
}

fn tiny_cfg() -> LsmConfig {
    LsmConfig {
        memtable_max_bytes: 512, // flush constantly
        compaction_threshold: 2, // compact constantly
        sstable: SsTableOptions { index_interval: 4, bloom_bits_per_key: 8 },
        ..LsmConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn lsm_matches_reference_model(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let dir = std::env::temp_dir().join(format!(
            "fabric-lsm-model-{}-{:x}",
            std::process::id(),
            rand_suffix(&steps),
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
        let mut model: HashMap<Key, (i64, Version)> = HashMap::new();
        let mut next_block = 0u64;

        for step in &steps {
            match step {
                Step::Block(ops) => {
                    let writes: Vec<CommitWrite> = ops
                        .iter()
                        .enumerate()
                        .map(|(tx, (id, val))| CommitWrite {
                            key: key(*id),
                            value: val.map(Value::from_i64),
                            tx: tx as u32,
                        })
                        .collect();
                    db.apply_block(next_block, &writes).unwrap();
                    // The model applies writes in order: later ops win.
                    for (tx, (id, val)) in ops.iter().enumerate() {
                        match val {
                            Some(v) => {
                                model.insert(key(*id), (*v, Version::new(next_block, tx as u32)));
                            }
                            None => {
                                model.remove(&key(*id));
                            }
                        }
                    }
                    next_block += 1;
                }
                Step::Flush => db.force_flush().unwrap(),
                Step::Reopen => {
                    drop(db);
                    db = LsmStateDb::open(&dir, tiny_cfg()).unwrap();
                }
            }

            // Full read-back comparison after every step.
            for id in 0u8..=255 {
                let got = db.get(&key(id)).unwrap();
                match (got, model.get(&key(id))) {
                    (None, None) => {}
                    (Some(vv), Some((v, ver))) => {
                        prop_assert_eq!(vv.value.as_i64(), Some(*v), "key {} value", id);
                        prop_assert_eq!(vv.version, *ver, "key {} version", id);
                    }
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "key {id}: engine {got:?} vs model {want:?}"
                        )));
                    }
                }
            }
            if next_block > 0 {
                prop_assert_eq!(db.last_committed_block(), next_block - 1);
            }

            // Range scans agree with the model too.
            let scan = db.scan_range(&key(0), &key(255)).unwrap();
            let mut expect: Vec<(Key, i64)> = model
                .iter()
                .filter(|(k, _)| *k < &key(255))
                .map(|(k, (v, _))| (k.clone(), *v))
                .collect();
            expect.sort_by(|a, b| a.0.cmp(&b.0));
            let got: Vec<(Key, i64)> = scan
                .into_iter()
                .map(|(k, vv)| (k, vv.value.as_i64().unwrap()))
                .collect();
            prop_assert_eq!(got, expect);
        }

        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Derives a stable per-case directory suffix from the steps themselves.
fn rand_suffix(steps: &[Step]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in steps {
        let b = match s {
            Step::Block(ops) => 1 + ops.len() as u64,
            Step::Flush => 1_000_003,
            Step::Reopen => 2_000_003,
        };
        h ^= b;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
