//! Differential property test for multi-version snapshot reads: both
//! engines against a naive full-copy oracle that clones the entire state
//! map after every block. Random interleavings of commits, snapshot pins,
//! reads-at-height, range scans, GC ticks, and (LSM) flushes must agree
//! with the oracle byte-for-byte at every *pinned* height — the trim rule
//! only guarantees exactness where a pin holds the history alive.

use std::collections::HashMap;
use std::sync::Arc;

use fabric_common::{Key, Value, Version};
use fabric_statedb::lsm::sstable::SsTableOptions;
use fabric_statedb::{
    CommitWrite, LsmConfig, LsmStateDb, MemStateDb, SnapshotGet, StateSnapshot, StateStore,
    VersionedValue,
};
use proptest::prelude::*;

const KEYS: u8 = 8;

fn key(id: u8) -> Key {
    Key::composite("k", (id % KEYS) as u64)
}

/// Per-block full copies of the state — the obviously-correct oracle the
/// multi-version read path must match.
#[derive(Default)]
struct Oracle {
    /// `snapshots[h]` is the complete state as of block `h`.
    snapshots: Vec<HashMap<Key, (Value, Version)>>,
    current: HashMap<Key, (Value, Version)>,
    /// Version of the newest fact per key, tombstones included — what
    /// the engines' staleness classification is measured against.
    latest: HashMap<Key, Version>,
}

impl Oracle {
    fn apply(&mut self, block: u64, writes: &[CommitWrite]) {
        for (slot, w) in writes.iter().enumerate() {
            let ver = Version::new(block, slot as u32);
            self.latest.insert(w.key.clone(), ver);
            match &w.value {
                Some(v) => {
                    self.current.insert(w.key.clone(), (v.clone(), ver));
                }
                None => {
                    self.current.remove(&w.key);
                }
            }
        }
        assert_eq!(self.snapshots.len() as u64, block);
        self.snapshots.push(self.current.clone());
    }

    /// What a snapshot read of `key` at height `h` must produce.
    fn expect(&self, key: &Key, h: u64) -> SnapshotGet {
        let at_height = self.snapshots[h as usize]
            .get(key)
            .map(|(v, ver)| VersionedValue::new(v.clone(), *ver));
        // `newest` is checked via classification only (see
        // `expect_stale`): an engine may legitimately forget a tombstone
        // older than every pin, and that never changes classification.
        SnapshotGet { at_height, newest: None }
    }

    /// Whether a read of `key` at height `h` must classify as stale:
    /// some fact newer than `h` exists, *except* the absent→absent case
    /// (created and deleted entirely after the snapshot, or a tombstone
    /// for a key that never lived), which classifies as Absent — exactly
    /// the [`fabric_statedb::SnapshotView`] classification validation
    /// relies on. Raw newest-fact knowledge may differ between engines
    /// here (a no-op delete leaves no chain in memory but a tombstone in
    /// the LSM memtable), so the comparison is at this semantic level.
    fn expect_stale(&self, key: &Key, h: u64) -> bool {
        let newer = self.latest.get(key).is_some_and(|v| v.block > h);
        let absent_both =
            !self.snapshots[h as usize].contains_key(key) && !self.current.contains_key(key);
        newer && !absent_both
    }

    fn expect_scan(&self, h: u64) -> Vec<(Key, VersionedValue)> {
        let mut out: Vec<(Key, VersionedValue)> = self.snapshots[h as usize]
            .iter()
            .map(|(k, (v, ver))| (k.clone(), VersionedValue::new(v.clone(), *ver)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[derive(Debug, Clone)]
enum Step {
    /// Commit one block of (key, value-or-delete) writes.
    Commit(Vec<(u8, Option<i64>)>),
    /// Pin a snapshot at the current watermark.
    Pin,
    /// Drop pin `i % live` (no-op when none are live).
    Unpin(u8),
    /// Point-read every key at pin `i % live` and compare to the oracle.
    ReadAt(u8),
    /// Batched read of the whole key pool at pin `i % live`.
    ReadMany(u8),
    /// Range-scan at pin `i % live`.
    ScanAt(u8),
    /// A garbage-collection tick on both engines.
    Gc,
    /// Force an LSM memtable flush (memory engine: no-op).
    Flush,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => proptest::collection::vec(
            (any::<u8>(), proptest::option::of(-100i64..100)),
            0..6,
        )
        .prop_map(Step::Commit),
        2 => Just(Step::Pin),
        1 => any::<u8>().prop_map(Step::Unpin),
        3 => any::<u8>().prop_map(Step::ReadAt),
        2 => any::<u8>().prop_map(Step::ReadMany),
        2 => any::<u8>().prop_map(Step::ScanAt),
        1 => Just(Step::Gc),
        1 => Just(Step::Flush),
    ]
}

fn check_read(
    engine: &str,
    got: &SnapshotGet,
    oracle: &Oracle,
    k: &Key,
    h: u64,
) -> std::result::Result<(), TestCaseError> {
    let want = oracle.expect(k, h);
    prop_assert_eq!(
        &got.at_height,
        &want.at_height,
        "{} key {} at height {}",
        engine,
        k,
        h
    );
    // Classified staleness, as `SnapshotView::classify` resolves it: a
    // newer fact exists and the read is not absent-both-ways.
    let classified_stale = got
        .newest
        .as_ref()
        .is_some_and(|(v, val)| v.block > h && !(got.at_height.is_none() && val.is_none()));
    prop_assert_eq!(
        classified_stale,
        oracle.expect_stale(k, h),
        "{} key {} staleness at height {}",
        engine,
        k,
        h
    );
    Ok(())
}

fn tiny_cfg(retained: usize) -> LsmConfig {
    LsmConfig {
        memtable_max_bytes: 256, // flush constantly
        compaction_threshold: 2, // compact constantly
        retained_versions: retained,
        sstable: SsTableOptions { index_interval: 4, bloom_bits_per_key: 8 },
        ..LsmConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn snapshot_reads_match_full_copy_oracle(
        steps in proptest::collection::vec(step_strategy(), 1..50),
        retained in 1usize..5,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "fabric-snapdiff-{}-{:x}",
            std::process::id(),
            suffix(&steps, retained),
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mem = MemStateDb::with_retained_versions(retained);
        let lsm = LsmStateDb::open(&dir, tiny_cfg(retained)).unwrap();
        let mut oracle = Oracle::default();
        // Block 0 exists on every path: `last_committed_block` reports 0
        // both before and after it, so pinning is only meaningful once it
        // is in — commit it up front.
        let genesis: Vec<CommitWrite> =
            (0..KEYS).map(|i| CommitWrite::put(key(i), Value::from_i64(i as i64), i as u32)).collect();
        mem.apply_block(0, &genesis).unwrap();
        lsm.apply_block(0, &genesis).unwrap();
        oracle.apply(0, &genesis);
        let mut next_block = 1u64;

        // Live pins, kept pairwise (same height on both engines).
        let mut pins: Vec<(StateSnapshot, StateSnapshot)> = Vec::new();

        for step in &steps {
            match step {
                Step::Commit(ops) => {
                    let writes: Vec<CommitWrite> = ops
                        .iter()
                        .enumerate()
                        .map(|(tx, (id, val))| CommitWrite {
                            key: key(*id),
                            value: val.map(Value::from_i64),
                            tx: tx as u32,
                        })
                        .collect();
                    mem.apply_block(next_block, &writes).unwrap();
                    lsm.apply_block(next_block, &writes).unwrap();
                    oracle.apply(next_block, &writes);
                    next_block += 1;
                }
                Step::Pin => {
                    let pm = mem.pin_snapshot();
                    let pl = lsm.pin_snapshot();
                    prop_assert_eq!(pm.height(), next_block - 1);
                    prop_assert_eq!(pl.height(), next_block - 1);
                    pins.push((pm, pl));
                }
                Step::Unpin(i) => {
                    if !pins.is_empty() {
                        pins.remove(*i as usize % pins.len());
                    }
                }
                Step::ReadAt(i) => {
                    if let Some((pm, pl)) = pick(&pins, *i) {
                        let h = pm.height();
                        for id in 0..KEYS {
                            let k = key(id);
                            check_read("mem", &mem.get_at(&k, h).unwrap(), &oracle, &k, h)?;
                            prop_assert_eq!(pl.height(), h);
                            check_read("lsm", &lsm.get_at(&k, h).unwrap(), &oracle, &k, h)?;
                        }
                    }
                }
                Step::ReadMany(i) => {
                    if let Some((pm, _)) = pick(&pins, *i) {
                        let h = pm.height();
                        let keys: Vec<Key> = (0..KEYS).map(key).collect();
                        let mut mem_out = Vec::new();
                        let mut lsm_out = Vec::new();
                        mem.multi_get_at_into(&keys, h, &mut mem_out).unwrap();
                        lsm.multi_get_at_into(&keys, h, &mut lsm_out).unwrap();
                        for (k, (m, l)) in keys.iter().zip(mem_out.iter().zip(&lsm_out)) {
                            check_read("mem(batch)", m, &oracle, k, h)?;
                            check_read("lsm(batch)", l, &oracle, k, h)?;
                        }
                    }
                }
                Step::ScanAt(i) => {
                    if let Some((pm, _)) = pick(&pins, *i) {
                        let h = pm.height();
                        let lo = key(0);
                        let hi = Key::composite("k", KEYS as u64 + 1);
                        let want = oracle.expect_scan(h);
                        for (engine, got) in [
                            ("mem", mem.scan_range_at(&lo, &hi, h).unwrap()),
                            ("lsm", lsm.scan_range_at(&lo, &hi, h).unwrap()),
                        ] {
                            let got: Vec<(Key, VersionedValue)> = got
                                .into_iter()
                                .map(|(k, g)| (k, g.at_height.expect("scan returns live keys")))
                                .collect();
                            prop_assert_eq!(&got, &want, "{} scan at height {}", engine, h);
                        }
                    }
                }
                Step::Gc => {
                    mem.collect_garbage().unwrap();
                    lsm.collect_garbage().unwrap();
                }
                Step::Flush => lsm.force_flush().unwrap(),
            }
        }

        drop(pins);
        drop(lsm);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn pick(pins: &[(StateSnapshot, StateSnapshot)], i: u8) -> Option<&(StateSnapshot, StateSnapshot)> {
    if pins.is_empty() {
        None
    } else {
        Some(&pins[i as usize % pins.len()])
    }
}

/// Stable per-case directory suffix derived from the inputs.
fn suffix(steps: &[Step], retained: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ retained as u64;
    for s in steps {
        let b = match s {
            Step::Commit(ops) => 1 + ops.len() as u64,
            Step::Pin => 101,
            Step::Unpin(i) => 211 + *i as u64,
            Step::ReadAt(i) => 307 + *i as u64,
            Step::ReadMany(i) => 401 + *i as u64,
            Step::ScanAt(i) => 503 + *i as u64,
            Step::Gc => 601,
            Step::Flush => 701,
        };
        h ^= b;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// GC pressure: a hot key rewritten every block, in three phases.
/// Unpinned, chains stay at the retention budget; with a live pin, facts
/// *below* the oldest pin are trimmed while the pinned height stays
/// exactly readable (facts above the floor are retained — the cost of an
/// old snapshot scales with commits since the pin, as in any MVCC
/// system); after the pin drops, a sweep reclaims the pinned-era history.
#[test]
fn gc_trims_to_oldest_live_pin_and_never_collects_it() {
    let dir = std::env::temp_dir()
        .join(format!("fabric-snapdiff-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let retained = 2;
    let mem = MemStateDb::with_retained_versions(retained);
    let lsm = LsmStateDb::open(&dir, tiny_cfg(retained)).unwrap();
    let hot = key(0);

    // Phase 1 — no pins: blocks 0..=50, chains hold the budget only.
    for b in 0..=50u64 {
        let writes = [CommitWrite::put(hot.clone(), Value::from_i64(b as i64), 0)];
        mem.apply_block(b, &writes).unwrap();
        lsm.apply_block(b, &writes).unwrap();
    }
    assert!(
        mem.version_chain_len(&hot) <= retained + 1,
        "unpinned mem chain blew the budget: {}",
        mem.version_chain_len(&hot)
    );
    assert!(
        lsm.history_len(&hot) <= retained + 1,
        "unpinned lsm history blew the budget: {}",
        lsm.history_len(&hot)
    );

    // Phase 2 — pin at 50, then 50 more commits.
    let pin_mem = mem.pin_snapshot();
    let pin_lsm = lsm.pin_snapshot();
    assert_eq!(pin_mem.height(), 50);
    for b in 51..=100u64 {
        let writes = [CommitWrite::put(hot.clone(), Value::from_i64(b as i64), 0)];
        mem.apply_block(b, &writes).unwrap();
        lsm.apply_block(b, &writes).unwrap();

        // The pinned height stays exact on both engines...
        for (engine, got) in
            [("mem", mem.get_at(&hot, 50).unwrap()), ("lsm", lsm.get_at(&hot, 50).unwrap())]
        {
            let vv = got.at_height.unwrap_or_else(|| panic!("{engine}: pinned read lost"));
            assert_eq!(vv.value.as_i64(), Some(50), "{engine} at block {b}");
            assert_eq!(vv.version, Version::new(50, 0), "{engine} at block {b}");
        }
        // ...and the chain holds the facts the pin can still see plus a
        // trimmed tail below the floor — never the phase-1 history.
        let commits_since_pin = (b - 50) as usize;
        assert!(
            mem.version_chain_len(&hot) <= commits_since_pin + retained,
            "mem chain kept pre-pin history: {} at block {b}",
            mem.version_chain_len(&hot)
        );
        assert!(
            lsm.history_len(&hot) <= commits_since_pin + retained,
            "lsm history kept pre-pin history: {} at block {b}",
            lsm.history_len(&hot)
        );
    }

    // Phase 3 — releasing the pins lets a sweep reclaim the history.
    drop(pin_mem);
    drop(pin_lsm);
    assert_eq!(mem.live_pins(), 0);
    assert_eq!(lsm.live_pins(), 0);
    mem.collect_garbage().unwrap();
    lsm.collect_garbage().unwrap();
    assert!(mem.version_chain_len(&hot) <= retained);
    assert!(lsm.history_len(&hot) < retained, "newest lives outside history");
    // The current value is untouched by GC.
    assert_eq!(mem.get(&hot).unwrap().unwrap().value.as_i64(), Some(100));
    assert_eq!(lsm.get(&hot).unwrap().unwrap().value.as_i64(), Some(100));

    drop(lsm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The commit-concurrency contract, end to end: a committer thread slams
/// blocks while a reader pins snapshots and reads at height. Reads never
/// take the commit ticket, never observe torn mid-block state, and every
/// batch read is internally consistent with its pinned height.
#[test]
fn snapshot_reads_are_lockless_and_untorn_under_concurrent_commits() {
    let db = Arc::new(MemStateDb::with_retained_versions(4));
    // Two keys whose sum is invariant under every block (a transfer).
    let a = key(0);
    let b = key(1);
    db.apply_block(
        0,
        &[
            CommitWrite::put(a.clone(), Value::from_i64(500), 0),
            CommitWrite::put(b.clone(), Value::from_i64(500), 1),
        ],
    )
    .unwrap();

    let before = db.counters().snapshot();
    let committer = {
        let db = Arc::clone(&db);
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            for blk in 1..=400u64 {
                let amt = (blk % 50) as i64;
                db.apply_block(
                    blk,
                    &[
                        CommitWrite::put(a.clone(), Value::from_i64(500 - amt), 0),
                        CommitWrite::put(b.clone(), Value::from_i64(500 + amt), 1),
                    ],
                )
                .unwrap();
            }
        })
    };

    let keys = [a.clone(), b.clone()];
    let mut out = Vec::new();
    for _ in 0..2_000 {
        let snap = db.pin_snapshot();
        let h = snap.height();
        db.multi_get_at_into(&keys, h, &mut out).unwrap();
        let bal_a = out[0].at_height.as_ref().expect("key a live").value.as_i64().unwrap();
        let bal_b = out[1].at_height.as_ref().expect("key b live").value.as_i64().unwrap();
        assert_eq!(bal_a + bal_b, 1000, "torn read at height {h}");
        assert!(out[0].at_height.as_ref().unwrap().version.block <= h);
        assert!(out[1].at_height.as_ref().unwrap().version.block <= h);
    }
    committer.join().unwrap();

    let delta = db.counters().snapshot().since(&before);
    assert_eq!(
        delta.commit_ticket_acquisitions, 400,
        "snapshot reads took the commit ticket (only the 400 commits may)"
    );
    assert_eq!(delta.snapshot_pins, 2_000);
    assert_eq!(delta.snapshot_read_batches, 2_000);
}
