#![allow(clippy::all)]
//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface it actually uses: [`Bytes`], an immutable
//! refcounted byte string with cheap clones. Unlike the real crate there is
//! no zero-copy slicing or buffer pooling — `Arc<[u8]>` underneath is
//! plenty for keys and values whose lifetime is "until the last reader
//! drops them".

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, refcounted byte string. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty byte string.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new refcounted allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the byte string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying bytes as a slice.
    #[inline]
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::copy_from_slice(&a)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::from("abc".to_string()) < Bytes::from("abd".to_string()));
        assert!(Bytes::from("ab".to_string()) < Bytes::from("abc".to_string()));
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}
