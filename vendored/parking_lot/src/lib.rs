#![allow(clippy::all)]
//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while holding it) is recovered
//! by taking the inner value — matching parking_lot's semantics, where
//! panicking with a lock held simply releases it.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || assert_eq!(*l.read(), 7))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn poison_is_transparent() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }
}
