#![allow(clippy::all)]
//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking API surface this workspace uses —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `Throughput`, and
//! `BatchSize` — over plain wall-clock timing. No statistics, plots, or
//! baselines: each benchmark warms up, runs an adaptive number of
//! iterations, and prints mean time per iteration (plus throughput when
//! one was declared).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration setup output is batched (accepted for source
/// compatibility; every variant behaves like `PerIteration` here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Small shared batches (treated as per-iteration).
    SmallInput,
    /// Large shared batches (treated as per-iteration).
    LargeInput,
}

/// Declared units of work per iteration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// Target number of timed samples (from `sample_size`).
    samples: u64,
    /// Mean duration of one routine invocation, filled by `iter*`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a first estimate of per-call cost.
        let warmup = Instant::now();
        black_box(routine());
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));

        // Aim for ~20ms of total measurement, clamped by sample count.
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / estimate.as_nanos()).clamp(1, self.samples as u128) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warmup = Instant::now();
        black_box(routine(input));
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / estimate.as_nanos()).clamp(1, self.samples as u128) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / iters as u32;
    }
}

fn report(group: Option<&str>, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let ns = mean.as_nanos().max(1);
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let mibs = b as f64 * 1e9 / ns as f64 / (1024.0 * 1024.0);
            format!("  {mibs:.1} MiB/s")
        }
        Some(Throughput::Elements(e)) => {
            let eps = e as f64 * 1e9 / ns as f64;
            format!("  {eps:.0} elem/s")
        }
        None => String::new(),
    };
    println!("bench: {full:<40} {ns:>12} ns/iter{rate}");
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, mean: Duration::ZERO };
        f(&mut b);
        report(None, id, b.mean, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size, throughput: None }
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares work-per-iteration so a rate is reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, mean: Duration::ZERO };
        f(&mut b);
        report(Some(&self.name), id, b.mean, self.throughput);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, mean: Duration::ZERO };
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), b.mean, self.throughput);
        self
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_and_bencher_run() {
        benches();
    }
}
