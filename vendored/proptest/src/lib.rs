#![allow(clippy::all)]
//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace uses —
//! `proptest! {}`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `any::<T>()`, ranges, tuples, `Just`, `prop_map`, `collection::vec`,
//! `collection::btree_set`, and `option::of` — over a deterministic
//! per-case RNG. No shrinking: a failing case reports its inputs (all
//! strategies produce `Debug` values through the pattern binding) and the
//! case index, which is stable across runs because case seeds are pure
//! functions of the case number.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

/// Deterministic per-case random source (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case`; pure function of the index, so reruns
    /// regenerate identical inputs.
    pub fn for_case(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; rejection sampling, no modulo bias.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty span");
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed test case (produced by `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-invocation configuration (subset of the real crate's knobs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produces one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over every value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full range of `T`: `any::<u8>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_strategy_range_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_strategy_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_range_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `len`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Set of `element` values; duplicates merge, so the result can be
    /// smaller than the drawn size when the element space is narrow.
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.len.clone().generate(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: narrow element spaces cannot always reach
            // the target cardinality.
            for _ in 0..target.saturating_mul(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Option strategies: `of`.
pub mod option {
    use super::*;

    /// Strategy producing `Some` three times out of four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some(inner value)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body over `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_proptest(
                    stringify!($name),
                    &$config,
                    |__rng| {
                        $(let $pat = $crate::Strategy::generate(&($strategy), __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

/// Runner behind `proptest!`; not part of the public API.
#[doc(hidden)]
pub fn __run_proptest<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(i);
        if let Err(e) = case(&mut rng) {
            panic!("proptest {name}: case {i}/{} failed: {e}", config.cases);
        }
    }
}

/// Everything the `proptest!` tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Macro round trip: ranges, tuples, and collections all bind.
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        /// Vectors respect the requested length bounds.
        #[test]
        fn vec_length_in_bounds(v in crate::collection::vec(any::<u8>(), 3..9)) {
            prop_assert!((3..9).contains(&v.len()), "len {} out of bounds", v.len());
        }

        /// prop_oneof with weights only produces values from its arms.
        #[test]
        fn oneof_stays_in_arms(x in prop_oneof![
            3 => Just(1u8),
            1 => (10u8..20).prop_map(|v| v),
        ]) {
            prop_assert!(x == 1 || (10..20).contains(&x));
        }
    }

    #[test]
    fn same_case_same_value() {
        let strat = crate::collection::vec(any::<u64>(), 0..10);
        let a = strat.generate(&mut TestRng::for_case(7));
        let b = strat.generate(&mut TestRng::for_case(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics_with_case_number() {
        crate::__run_proptest("always_fails", &ProptestConfig::default(), |_rng| {
            prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
