#![allow(clippy::all)]
//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`]: multi-producer multi-consumer channels (bounded
//! and unbounded) with the `crossbeam-channel` API surface the workspace
//! uses — cloneable senders *and* receivers, `recv_timeout`, and
//! disconnect detection. Built on a `Mutex<VecDeque>` plus condvars; not
//! as fast as the real lock-free implementation, but the workloads here
//! are dominated by simulated network latency, not channel overhead.

#![forbid(unsafe_code)]

/// MPMC channels in the style of `crossbeam-channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when a message is pushed or an endpoint disconnects.
        not_empty: Condvar,
        /// Signalled when a message is popped (bounded senders wait on it).
        not_full: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of a channel. Cloning adds another producer.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel. Cloning adds another consumer.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The channel is disconnected (all receivers gone); returns the
    /// unsent message.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Queue currently empty (senders still connected).
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Outcome of a receive with a deadline.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel: sends block while `cap` messages
    /// are in flight.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake senders blocked on a full queue.
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails
        /// only once every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.0.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                match self.0.cap {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .0
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking until one is available or
        /// every sender has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .0
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    if self.0.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc as StdArc;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            let start = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(20));
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || tx2.send(3).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            h.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn mpmc_delivers_every_message_once() {
            let (tx, rx) = bounded::<u64>(16);
            let total = StdArc::new(AtomicUsize::new(0));
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    let total = StdArc::clone(&total);
                    std::thread::spawn(move || {
                        while rx.recv().is_ok() {
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            drop(rx);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..250u64 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            for h in producers {
                h.join().unwrap();
            }
            for h in consumers {
                h.join().unwrap();
            }
            assert_eq!(total.load(Ordering::Relaxed), 1000);
        }
    }
}
