#![allow(clippy::all)]
//! Offline stand-in for the `rand` crate (0.9-era API).
//!
//! The workspace uses rand only for reproducible workload generation:
//! `StdRng::seed_from_u64`, `random()`, and `random_range()`. This shim
//! implements exactly that surface over xoshiro256** seeded via splitmix64
//! — high-quality, fast, and fully deterministic, which is all the
//! benchmarks and chaos harness need. It makes no attempt at matching the
//! real crate's value streams, only its API.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be drawn uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one value using `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly, producing `T`. Generic over the
/// output (rather than an associated type) so the expected type drives
/// integer-literal inference, as in the real crate:
/// `Value::from_i64(rng.random_range(0..100))` samples an `i64` range.
pub trait SampleRange<T> {
    /// Draws one value in the range using `rng`. Panics if empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// A source of randomness (subset of rand 0.9's `Rng`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

/// Deterministically seedable generators (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` without modulo bias (Lemire's method
/// would be fancier; rejection over the widened range is simple and
/// exactly uniform).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..17);
            assert!((10..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw covers the range");
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
