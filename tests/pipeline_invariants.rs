//! End-to-end safety invariants of the threaded pipeline, checked under
//! real concurrency on both vanilla Fabric and full Fabric++:
//!
//! * **conservation** — transfers move value; the sum over all accounts is
//!   invariant no matter how many transactions abort;
//! * **accounting** — every fired proposal reaches exactly one outcome;
//! * **replication** — all peers end with identical chains and states.

use std::time::Duration;

use fabric_common::{Key, PipelineConfig, Value};
use fabricpp::{chaincode_fn, NetworkBuilder};

const ACCOUNTS: u64 = 40;
const INITIAL: i64 = 1_000;

fn transfer_chaincode() -> std::sync::Arc<dyn fabricpp_suite::peer::chaincode::Chaincode> {
    chaincode_fn("transfer", |ctx, args| {
        let from = Key::composite("acct", u64::from_le_bytes(args[0..8].try_into().unwrap()));
        let to = Key::composite("acct", u64::from_le_bytes(args[8..16].try_into().unwrap()));
        let amount = i64::from_le_bytes(args[16..24].try_into().unwrap());
        let fb = ctx.get_i64(&from).map_err(|e| e.to_string())?.ok_or("no from")?;
        let tb = ctx.get_i64(&to).map_err(|e| e.to_string())?.ok_or("no to")?;
        ctx.put_i64(from, fb - amount);
        ctx.put_i64(to, tb + amount);
        Ok(())
    })
}

fn run_mode(pipeline: PipelineConfig) {
    let label = pipeline.mode_label();
    let net = NetworkBuilder::new()
        .orgs(2)
        .peers_per_org(2)
        .pipeline(pipeline)
        .cost(fabric_common::CostModel::raw())
        .latency(fabric_net::LatencyModel::zero())
        .deploy(transfer_chaincode())
        .genesis((0..ACCOUNTS).map(|i| (Key::composite("acct", i), Value::from_i64(INITIAL))))
        .build()
        .unwrap();

    // Three concurrent clients hammer a small hot account set to force
    // plenty of conflicts.
    let mut handles = Vec::new();
    for c in 0..3u64 {
        let client = net.client(0);
        handles.push(std::thread::spawn(move || {
            for i in 0..120u64 {
                let from = (c + i) % 6; // hot set
                let to = 6 + ((c * 40 + i) % (ACCOUNTS - 6));
                let mut args = Vec::with_capacity(24);
                args.extend_from_slice(&from.to_le_bytes());
                args.extend_from_slice(&to.to_le_bytes());
                args.extend_from_slice(&3i64.to_le_bytes());
                client.submit("transfer", args);
                if i % 16 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let report = net_finish_and_check(net, label);
    assert_eq!(report.0, 360, "mode {label}: all proposals accounted for");
    assert!(report.1 > 0, "mode {label}: something must commit");
}

/// Returns (finished, valid).
fn net_finish_and_check(net: fabricpp::FabricNetwork, label: &str) -> (u64, u64) {
    // Snapshot peers' stores/ledgers before finish() consumes the network.
    let peers: Vec<_> = net.channel_peers(0).to_vec();
    let report = net.finish();

    assert_eq!(
        report.stats.finished(),
        report.stats.submitted,
        "mode {label}: every submission reaches exactly one outcome"
    );

    // Conservation: total value across accounts unchanged.
    let reference = &peers[0];
    let total: i64 = (0..ACCOUNTS)
        .map(|i| {
            reference
                .store()
                .get(&Key::composite("acct", i))
                .unwrap()
                .unwrap()
                .value
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(
        total,
        ACCOUNTS as i64 * INITIAL,
        "mode {label}: value conserved despite {} aborts",
        report.stats.aborted()
    );

    // Replication: all peers agree on chain and state.
    let tip = reference.ledger().tip_hash();
    for peer in &peers {
        assert_eq!(peer.ledger().tip_hash(), tip, "mode {label}: chain divergence");
        peer.ledger().verify_chain().unwrap();
        for i in 0..ACCOUNTS {
            assert_eq!(
                peer.store().get(&Key::composite("acct", i)).unwrap().unwrap().value,
                reference
                    .store()
                    .get(&Key::composite("acct", i))
                    .unwrap()
                    .unwrap()
                    .value,
                "mode {label}: state divergence on account {i}"
            );
        }
    }
    (report.stats.finished(), report.stats.valid)
}

#[test]
fn vanilla_conserves_value_under_contention() {
    run_mode(PipelineConfig::vanilla());
}

#[test]
fn fabricpp_conserves_value_under_contention() {
    run_mode(PipelineConfig::fabric_pp());
}

#[test]
fn reordering_only_conserves_value_under_contention() {
    run_mode(PipelineConfig::reordering_only());
}

#[test]
fn early_abort_only_conserves_value_under_contention() {
    run_mode(PipelineConfig::early_abort_only());
}
