//! `GetHistoryForKey` through the full pipeline: every valid write to a key
//! is recoverable from the ledger, in commit order, including deletes —
//! and invalid transactions leave no trace in the history.

use fabric_common::{Key, PipelineConfig, Value};
use fabricpp::sync::ProposeOutcome;
use fabricpp::{chaincode_fn, SyncNet};

#[test]
fn key_history_tracks_the_full_lifecycle() {
    let set = chaincode_fn("set", |ctx, args| {
        let v = i64::from_le_bytes(args.try_into().map_err(|_| "bad args")?);
        // Read first so cross-block conflicts are possible.
        let _ = ctx.get_i64(&Key::from("asset")).map_err(|e| e.to_string())?;
        ctx.put_i64(Key::from("asset"), v);
        Ok(())
    });
    let del = chaincode_fn("del", |ctx, _| {
        ctx.delete(Key::from("asset"));
        Ok(())
    });

    let mut net = SyncNet::new(
        &PipelineConfig::vanilla(),
        2,
        1,
        vec![set, del],
        &[(Key::from("asset"), Value::from_i64(0))],
    )
    .unwrap();

    // Block 1: set 10.
    let id1 = net.propose_and_submit(0, "set", 10i64.to_le_bytes().to_vec()).unwrap();
    net.cut_block().unwrap();
    // Block 2: one valid set 20 plus one STALE set 99 (endorsed earlier).
    let stale = match net.propose(1, "set", 99i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    // Commit an intervening write so `stale` really is stale.
    let id2 = net.propose_and_submit(2, "set", 20i64.to_le_bytes().to_vec()).unwrap();
    net.cut_block().unwrap();
    net.submit(stale);
    net.cut_block().unwrap();
    // Block 4: delete.
    let id3 = net.propose_and_submit(3, "del", vec![]).unwrap();
    net.cut_block().unwrap();

    let ledger = net.reporting_peer().ledger();
    let hist = ledger.history_of(&Key::from("asset"));
    assert_eq!(hist.len(), 4, "stale write absent from history");
    // The bootstrap write rides in the genesis block under the reserved
    // id tx-0, so the key's history starts at block 0.
    assert_eq!(hist[0].tx, fabric_common::TxId(0));
    assert_eq!(hist[0].value, Some(Value::from_i64(0)));
    assert_eq!(hist[0].block, 0);
    assert_eq!(hist[1].tx, id1);
    assert_eq!(hist[1].value, Some(Value::from_i64(10)));
    assert_eq!(hist[1].block, 1);
    assert_eq!(hist[2].tx, id2);
    assert_eq!(hist[2].value, Some(Value::from_i64(20)));
    assert_eq!(hist[3].tx, id3);
    assert_eq!(hist[3].value, None, "delete is the final entry");

    // History agrees with the current state: key gone.
    assert!(net.reporting_peer().store().get(&Key::from("asset")).unwrap().is_none());
}
