//! The paper's Appendix A running example, end to end.
//!
//! Two organizations A and B transfer money between `BalA` (100 at v3 —
//! here genesis) and `BalB` (50). We follow the exact cast: `T7` is the
//! honest transfer of 30, `T8` is a malicious transaction whose client
//! swapped in a tampered write set, and `T9` is a transfer that simulated
//! against the pre-T7 state and therefore reads stale versions.

use std::sync::Arc;

use fabric_common::{Key, PipelineConfig, ValidationCode, Value};
use fabricpp::sync::ProposeOutcome;
use fabricpp::{chaincode_fn, SyncNet};

fn transfer_chaincode() -> Arc<dyn fabricpp_suite::peer::chaincode::Chaincode> {
    chaincode_fn("transfer", |ctx, args| {
        let amount = i64::from_le_bytes(args.try_into().map_err(|_| "bad args")?);
        let bal_a = ctx
            .get_i64(&Key::from("BalA"))
            .map_err(|e| e.to_string())?
            .ok_or("no BalA")?;
        let bal_b = ctx
            .get_i64(&Key::from("BalB"))
            .map_err(|e| e.to_string())?
            .ok_or("no BalB")?;
        ctx.put_i64(Key::from("BalA"), bal_a - amount);
        ctx.put_i64(Key::from("BalB"), bal_b + amount);
        Ok(())
    })
}

fn genesis() -> Vec<(Key, Value)> {
    vec![
        (Key::from("BalA"), Value::from_i64(100)),
        (Key::from("BalB"), Value::from_i64(50)),
    ]
}

fn balances(net: &SyncNet) -> (i64, i64) {
    let store = net.reporting_peer().store();
    (
        store.get(&Key::from("BalA")).unwrap().unwrap().value.as_i64().unwrap(),
        store.get(&Key::from("BalB")).unwrap().unwrap().value.as_i64().unwrap(),
    )
}

/// Appendix A with a vanilla network: T8 fails the endorsement policy
/// evaluation, T7 commits, T9 fails the serializability conflict check.
#[test]
fn appendix_a_validation_and_commit() {
    // Two orgs, two peers each — the paper's topology.
    let mut net = SyncNet::new(
        &PipelineConfig::vanilla(),
        2,
        2,
        vec![transfer_chaincode()],
        &genesis(),
    )
    .unwrap();

    // T7: the honest transfer of 30 (steps 1–4).
    let t7 = match net.propose(1, "transfer", 30i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("T7 must endorse, got {other:?}"),
    };
    assert_eq!(
        t7.rwset.writes.value_of(&Key::from("BalA")),
        Some(Some(&Value::from_i64(70))),
        "WS = {{BalA=70, BalB=80}} as in the paper"
    );

    // T8: the malicious client uses the write set from its collaborator
    // instead of the endorsed one (WS = {BalA=100, BalB=120}).
    let mut t8 = match net.propose(2, "transfer", 20i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("T8 must endorse, got {other:?}"),
    };
    t8.rwset = fabric_common::rwset::rwset_from_keys(
        &[Key::from("BalA"), Key::from("BalB")],
        fabric_common::Version::GENESIS,
        &[Key::from("BalA"), Key::from("BalB")],
        &Value::from_i64(120),
    );

    // T9: simulated against the same (pre-T7) state as T7.
    let t9 = match net.propose(3, "transfer", 50i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("T9 must endorse, got {other:?}"),
    };

    // Ordering phase: T8, T7, T9 in one block (paper's order).
    let t7_id = t7.id;
    let t8_id = t8.id;
    let t9_id = t9.id;
    net.submit(t8);
    net.submit(t7);
    net.submit(t9);
    let block = net.cut_block().unwrap().expect("block");

    // Validation phase outcomes, exactly as in Figure 14.
    assert_eq!(
        block.validity,
        vec![
            ValidationCode::EndorsementFailure, // T8: signature mismatch
            ValidationCode::Valid,              // T7
            ValidationCode::MvccConflict,       // T9: stale read of v3 state
        ]
    );

    // Commit phase: only T7's effects applied; versions bumped.
    assert_eq!(balances(&net), (70, 80));
    let store = net.reporting_peer().store();
    let bal_a = store.get(&Key::from("BalA")).unwrap().unwrap();
    assert_eq!(bal_a.version.block, 1, "BalA now carries the committing block id");

    // The ledger holds all three transactions, valid and invalid.
    let ledger = net.reporting_peer().ledger();
    assert_eq!(ledger.height(), 2);
    assert_eq!(ledger.find_tx(t7_id).unwrap().1, ValidationCode::Valid);
    assert_eq!(ledger.find_tx(t8_id).unwrap().1, ValidationCode::EndorsementFailure);
    assert_eq!(ledger.find_tx(t9_id).unwrap().1, ValidationCode::MvccConflict);
    ledger.verify_chain().unwrap();

    // Every peer reaches the same state.
    for peer in net.peers() {
        assert_eq!(
            peer.store().get(&Key::from("BalA")).unwrap().unwrap().value,
            Value::from_i64(70)
        );
        assert_eq!(peer.ledger().tip_hash(), ledger.tip_hash());
    }
}

/// The same scenario under Fabric++: T9's stale read version is caught at
/// ORDER time (within-block version mismatch against... no — T7 and T9
/// read the same version here, so reordering applies instead: T9 read what
/// T7 writes, so Fabric++ schedules T9 *before* T7 and both commit).
#[test]
fn appendix_a_under_fabricpp_reordering_rescues_t9() {
    let mut net = SyncNet::new(
        &PipelineConfig::fabric_pp(),
        2,
        2,
        vec![transfer_chaincode()],
        &genesis(),
    )
    .unwrap();

    let t7 = match net.propose(1, "transfer", 30i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    let t9 = match net.propose(3, "transfer", 50i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };

    net.submit(t7);
    net.submit(t9);
    let block = net.cut_block().unwrap().expect("block");

    // Both transfers read AND write {BalA, BalB}: a conflict cycle.
    // Fabric++ must abort exactly one at order time and commit the other —
    // still strictly better than vanilla, which ships both and aborts one
    // after full distribution.
    assert_eq!(block.block.txs.len(), 1);
    assert_eq!(block.validity, vec![ValidationCode::Valid]);
    let s = net.stats();
    assert_eq!(s.valid, 1);
    assert_eq!(s.early_abort_cycle, 1);
    assert_eq!(s.mvcc_conflict, 0, "nothing reaches validation as a conflict");
}
