//! The full threaded pipeline on top of the persistent LSM state engine —
//! the simulator's analogue of the paper's "Fabric is set up to use LevelDB
//! as the current state database" (§6.1).

use std::time::Duration;

use fabric_common::{Key, PipelineConfig, Value};
use fabricpp::{chaincode_fn, NetworkBuilder, StateEngine};

#[test]
fn threaded_network_over_lsm_engine() {
    let dir = std::env::temp_dir().join(format!("fabric-lsm-net-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let bump = chaincode_fn("bump", |ctx, args| {
        let k = Key::new(args.to_vec());
        let v = ctx.get_i64(&k).map_err(|e| e.to_string())?.unwrap_or(0);
        ctx.put_i64(k, v + 1);
        Ok(())
    });

    let net = NetworkBuilder::new()
        .orgs(2)
        .peers_per_org(1)
        .pipeline(PipelineConfig::fabric_pp())
        .engine(StateEngine::Lsm(dir.clone()))
        .cost(fabric_common::CostModel::raw())
        .latency(fabric_net::LatencyModel::zero())
        .deploy(bump)
        .genesis((0..50).map(|i| (Key::composite("c", i), Value::from_i64(0))))
        .build()
        .unwrap();

    let client = net.client(0);
    let deadline = std::time::Instant::now() + Duration::from_millis(600);
    let mut fired = 0u64;
    while std::time::Instant::now() < deadline {
        let key = Key::composite("c", fired % 50);
        client.submit("bump", key.as_bytes().to_vec());
        fired += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(client);
    let report = net.finish();

    assert_eq!(report.stats.finished(), report.stats.submitted);
    assert!(report.stats.valid > 0, "some transactions must commit");
    assert!(report.block_heights[0] >= 2);

    // The LSM directories persist state; reopen one peer's store and check
    // it retained the committed data.
    let peer_dirs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    assert_eq!(peer_dirs.len(), 2, "one state dir per peer");
    for pd in &peer_dirs {
        let db =
            fabric_statedb::LsmStateDb::open(pd, fabric_statedb::LsmConfig::default()).unwrap();
        use fabric_statedb::StateStore;
        assert_eq!(
            db.last_committed_block(),
            report.block_heights[0] - 1,
            "state watermark matches chain height"
        );
        // At least one counter must have been bumped and persisted.
        let bumped = (0..50)
            .filter_map(|i| db.get(&Key::composite("c", i)).unwrap())
            .filter(|vv| vv.value.as_i64() != Some(0))
            .count();
        assert!(bumped > 0, "persisted state reflects commits in {}", pd.display());
    }

    let _ = std::fs::remove_dir_all(&dir);
}
