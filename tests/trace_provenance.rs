//! Flight-recorder abort provenance, pinned against the paper's running
//! example (§4.1, Tables 1 & 2): `T1` updates `k1`; `T2`, `T3`, `T4` read
//! `k1` (and touch `k2`/`k3`/`k4`). Under vanilla Fabric in arrival order
//! only one of the four commits; under Fabric++ the reorderer finds a
//! conflict-free schedule and all four do. Every abort the pipeline
//! decides must surface in the trace with its offending key, expected vs.
//! observed version, and conflicting transaction — cross-checked against
//! the outcome counters.

use std::sync::Arc;

use fabric_common::{Key, PipelineConfig, ValidationCode, Value, Version};
use fabricpp::sync::ProposeOutcome;
use fabricpp::{chaincode_fn, SyncNet};
use fabricpp_suite::trace::{EventKind, TraceSink};

/// One chaincode per transaction shape of the running example.
fn example_chaincodes() -> Vec<Arc<dyn fabricpp_suite::peer::chaincode::Chaincode>> {
    vec![
        // T1: blind update of k1.
        chaincode_fn("t1", |ctx, _| {
            ctx.put_i64(Key::from("k1"), 2);
            Ok(())
        }),
        // T2: reads k1 and k2, updates k2.
        chaincode_fn("t2", |ctx, _| {
            let _ = ctx.get_i64(&Key::from("k1")).map_err(|e| e.to_string())?;
            let _ = ctx.get_i64(&Key::from("k2")).map_err(|e| e.to_string())?;
            ctx.put_i64(Key::from("k2"), 2);
            Ok(())
        }),
        // T3: reads k1 and k3, updates k3.
        chaincode_fn("t3", |ctx, _| {
            let _ = ctx.get_i64(&Key::from("k1")).map_err(|e| e.to_string())?;
            let _ = ctx.get_i64(&Key::from("k3")).map_err(|e| e.to_string())?;
            ctx.put_i64(Key::from("k3"), 2);
            Ok(())
        }),
        // T4: reads k1 and k3, updates k4.
        chaincode_fn("t4", |ctx, _| {
            let _ = ctx.get_i64(&Key::from("k1")).map_err(|e| e.to_string())?;
            let _ = ctx.get_i64(&Key::from("k3")).map_err(|e| e.to_string())?;
            ctx.put_i64(Key::from("k4"), 2);
            Ok(())
        }),
    ]
}

fn example_genesis() -> Vec<(Key, Value)> {
    (1..=4).map(|i| (Key::from(format!("k{i}").as_str()), Value::from_i64(1))).collect()
}

fn endorse(net: &SyncNet, client: u64, cc: &str) -> fabric_common::Transaction {
    match net.propose(client, cc, vec![]) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("{cc} must endorse, got {other:?}"),
    }
}

/// Label → count over the retained events, for counter cross-checks.
fn count(events: &[fabricpp_suite::trace::TraceEvent], label: &str) -> u64 {
    events.iter().filter(|e| e.kind.label() == label).count() as u64
}

/// Table 1: arrival order `T1 ⇒ T2 ⇒ T3 ⇒ T4` under vanilla Fabric. T1
/// commits; T2–T4 die in MVCC validation, each naming `k1`, the genesis
/// version they read, and T1 as the in-block conflicting writer.
#[test]
fn table_1_vanilla_mvcc_conflicts_carry_provenance() {
    let sink = TraceSink::bounded(1024);
    let mut net = SyncNet::new_traced(
        &PipelineConfig::vanilla(),
        2,
        1,
        example_chaincodes(),
        &example_genesis(),
        sink.clone(),
    )
    .unwrap();

    let txs: Vec<_> = (1..=4).map(|i| endorse(&net, i as u64, &format!("t{i}"))).collect();
    let t1_id = txs[0].id;
    let ids: Vec<_> = txs.iter().map(|t| t.id).collect();
    // The version of k1 every reader recorded (the genesis version).
    let k1_read = txs[1]
        .rwset
        .reads
        .entries()
        .iter()
        .find(|e| e.key == Key::from("k1"))
        .expect("T2 reads k1")
        .version;
    assert!(k1_read.is_some(), "genesis keys carry a version");

    for tx in txs {
        net.submit(tx);
    }
    let block = net.cut_block().unwrap().expect("block");
    assert_eq!(
        block.validity,
        vec![
            ValidationCode::Valid,        // T1
            ValidationCode::MvccConflict, // T2: k1 was updated in-block
            ValidationCode::MvccConflict, // T3
            ValidationCode::MvccConflict, // T4
        ],
        "Table 1: only one of the four is valid in arrival order"
    );

    let stats = net.stats();
    let events = sink.drain();

    // Each MVCC abort names k1, the stale genesis version, and T1.
    let conflicts: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TxMvccConflict { block, tx, key, expected, observed, writer } => {
                Some((*block, *tx, key.clone(), *expected, *observed, *writer))
            }
            _ => None,
        })
        .collect();
    assert_eq!(conflicts.len(), 3);
    for (i, (blk, tx, key, expected, observed, writer)) in conflicts.iter().enumerate() {
        assert_eq!(*blk, 1);
        assert_eq!(*tx, ids[i + 1], "aborts come in block order T2, T3, T4");
        assert_eq!(*key, Key::from("k1"), "the offending read is always k1");
        assert_eq!(*expected, None, "in-block conflict: no committed version yet");
        assert_eq!(*observed, k1_read, "the stale version each reader recorded");
        assert_eq!(*writer, Some(t1_id), "T1 is the conflicting writer");
    }

    // Exactly one commit event, naming T1.
    let committed: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TxCommitted { tx, .. } => Some(*tx),
            _ => None,
        })
        .collect();
    assert_eq!(committed, vec![t1_id]);

    // Counter cross-check: every counted outcome has its event.
    assert_eq!(stats.valid, 1);
    assert_eq!(stats.mvcc_conflict, 3);
    assert_eq!(count(&events, "mvcc_conflict"), stats.mvcc_conflict);
    assert_eq!(count(&events, "tx_committed"), stats.valid);
    assert_eq!(count(&events, "tx_submitted"), stats.submitted);
    assert_eq!(count(&events, "early_abort_cycle"), 0);
    assert_eq!(count(&events, "early_abort_version"), 0);
}

/// Table 2: the same four transactions under Fabric++. The reorderer
/// emits a conflict-free schedule (the paper's `T4 ⇒ T2 ⇒ T3 ⇒ T1` or an
/// equivalent), all four commit, and the trace shows a clean block with
/// zero abort events.
#[test]
fn table_2_fabricpp_rescues_all_four() {
    let sink = TraceSink::bounded(1024);
    let mut net = SyncNet::new_traced(
        &PipelineConfig::fabric_pp(),
        2,
        1,
        example_chaincodes(),
        &example_genesis(),
        sink.clone(),
    )
    .unwrap();

    for i in 1..=4u64 {
        let tx = endorse(&net, i, &format!("t{i}"));
        net.submit(tx);
    }
    let block = net.cut_block().unwrap().expect("block");
    assert_eq!(block.block.txs.len(), 4, "nothing early-aborted");
    assert_eq!(block.validity, vec![ValidationCode::Valid; 4], "Table 2: all four valid");

    let stats = net.stats();
    assert_eq!(stats.valid, 4);
    assert_eq!(stats.aborted(), 0);

    let events = sink.drain();
    assert_eq!(count(&events, "tx_committed"), 4);
    assert_eq!(count(&events, "mvcc_conflict"), 0);
    assert_eq!(count(&events, "early_abort_cycle"), 0);
    assert_eq!(count(&events, "early_abort_version"), 0);

    // The block-seal event records the reorder outcome: no cycles, no
    // fallback, nothing dropped.
    let sealed: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::BlockSealed { block, txs, early_aborted, cycles, fallback, .. } => {
                Some((*block, *txs, *early_aborted, *cycles, *fallback))
            }
            _ => None,
        })
        .collect();
    assert_eq!(sealed, vec![(1, 4, 0, 0, false)]);
}

/// §5.2.2 provenance: two batched readers of `hot` at different versions.
/// The orderer drops the older reader, and the event names the offending
/// key, both versions, and the in-batch transaction that witnessed the
/// newer one.
#[test]
fn version_mismatch_event_names_key_versions_and_witness() {
    let bump = chaincode_fn("bump", |ctx, _| {
        let v = ctx.get_i64(&Key::from("hot")).map_err(|e| e.to_string())?.unwrap_or(0);
        ctx.put_i64(Key::from("hot"), v + 1);
        Ok(())
    });
    let reader = chaincode_fn("reader", |ctx, args| {
        let _ = ctx.get_i64(&Key::from("hot")).map_err(|e| e.to_string())?;
        ctx.put_i64(Key::new(args.to_vec()), 1);
        Ok(())
    });

    let sink = TraceSink::bounded(1024);
    let mut net = SyncNet::new_traced(
        &PipelineConfig::fabric_pp(),
        2,
        1,
        vec![bump, reader],
        &[(Key::from("hot"), Value::from_i64(0))],
        sink.clone(),
    )
    .unwrap();

    // T_old reads `hot` at genesis; a committed bump advances it to block
    // 1; T_new reads the bumped version. Both then batch together.
    let t_old = match net.propose(0, "reader", b"out-old".to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    net.propose_and_submit(1, "bump", vec![]).unwrap();
    net.cut_block().unwrap();
    let t_new = match net.propose(2, "reader", b"out-new".to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };

    let hot = Key::from("hot");
    let read_version = |tx: &fabric_common::Transaction| {
        tx.rwset.reads.entries().iter().find(|e| e.key == hot).expect("reads hot").version
    };
    let old_version = read_version(&t_old);
    let new_version = read_version(&t_new);
    assert_ne!(old_version, new_version);
    assert_eq!(new_version, Some(Version::new(1, 0)), "bumped in block 1");

    let (old_id, new_id) = (t_old.id, t_new.id);
    net.submit(t_old);
    net.submit(t_new);
    let block = net.cut_block().unwrap().expect("block");
    assert_eq!(block.block.txs.len(), 1, "older reader dropped before distribution");

    let stats = net.stats();
    assert_eq!(stats.early_abort_version_mismatch, 1);

    let events = sink.drain();
    let aborts: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TxEarlyAbortVersion { tx, key, expected, observed, conflicting } => {
                Some((*tx, key.clone(), *expected, *observed, *conflicting))
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        aborts,
        vec![(old_id, hot, Version::new(1, 0), old_version, new_id)],
        "the event names the stale reader, the key, both versions, and the witness"
    );
    assert_eq!(count(&events, "early_abort_version"), stats.early_abort_version_mismatch);
}

/// §5.1 provenance: a two-transaction conflict cycle. One member is
/// aborted at order time; the event carries its SCC id, the cycle size,
/// and whether the greedy fallback was in play.
#[test]
fn cycle_abort_event_names_scc_and_size() {
    let swap = chaincode_fn("swap", |ctx, args| {
        let (r, w) = if args[0] == 0 { ("x", "y") } else { ("y", "x") };
        let v = ctx.get_i64(&Key::from(r)).map_err(|e| e.to_string())?.unwrap_or(0);
        ctx.put_i64(Key::from(w), v + 1);
        Ok(())
    });

    let sink = TraceSink::bounded(1024);
    let mut net = SyncNet::new_traced(
        &PipelineConfig::fabric_pp(),
        2,
        1,
        vec![swap],
        &[(Key::from("x"), Value::from_i64(1)), (Key::from("y"), Value::from_i64(2))],
        sink.clone(),
    )
    .unwrap();

    let ta = match net.propose(0, "swap", vec![0]) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    let tb = match net.propose(1, "swap", vec![1]) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    let (a_id, b_id) = (ta.id, tb.id);
    net.submit(ta);
    net.submit(tb);
    let block = net.cut_block().unwrap().expect("block");
    assert_eq!(block.block.txs.len(), 1, "one cycle member removed pre-distribution");

    let stats = net.stats();
    assert_eq!(stats.early_abort_cycle, 1);
    assert_eq!(stats.valid, 1);

    let events = sink.drain();
    let cycles: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TxEarlyAbortCycle { tx, scc, scc_size, fallback } => {
                Some((*tx, *scc, *scc_size, *fallback))
            }
            _ => None,
        })
        .collect();
    assert_eq!(cycles.len(), 1);
    let (aborted_tx, _scc, scc_size, fallback) = cycles[0];
    assert!(aborted_tx == a_id || aborted_tx == b_id, "the victim is one of the two members");
    assert_eq!(scc_size, 2, "a two-transaction cycle");
    assert!(!fallback, "exact reordering, not the greedy fallback");
    assert_eq!(count(&events, "early_abort_cycle"), stats.early_abort_cycle);

    // The seal event agrees: one SCC with one cycle, one tx dropped.
    let sealed: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::BlockSealed { txs, early_aborted, sccs, cycles, .. } => {
                Some((*txs, *early_aborted, *sccs, *cycles))
            }
            _ => None,
        })
        .collect();
    assert_eq!(sealed, vec![(1, 1, 1, 1)]);
}
