//! The determinism conformance matrix: every fixture must produce
//! byte-identical artifacts across the whole non-semantic knob matrix,
//! and the harness must catch each injected nondeterminism-bug class
//! with correct localization and root-cause hint.

use fabric_conformance::{
    compare_artifacts, corruption_is_caught, run_fixture, run_replica, Corruption, Fixture,
    ReplicaSpec, RootCauseHint, BLOCK_STREAM, CHAIN_FINGERPRINT,
};

#[test]
fn all_fixtures_are_byte_identical_across_the_knob_matrix() {
    for fixture in Fixture::all() {
        let report = run_fixture(&fixture).unwrap();
        assert!(
            report.passed(),
            "fixture {}: {}",
            fixture.name,
            report.divergence.as_ref().unwrap()
        );
        assert!(
            report.total_artifact_bytes() > 0,
            "fixture {} replicated zero artifact bytes — the harness compared nothing",
            fixture.name
        );
        // Every replica in the matrix actually ran and produced the full
        // artifact set.
        assert_eq!(report.replicas.len(), fixture.specs().len());
        for r in &report.replicas {
            assert_eq!(r.artifacts.len(), 5, "replica {} artifact set", r.label);
        }
    }
}

#[test]
fn independent_baseline_runs_are_byte_identical() {
    let fixture = Fixture::medium();
    let a = run_replica(&fixture, &ReplicaSpec::baseline()).unwrap();
    let b = run_replica(&fixture, &ReplicaSpec::baseline()).unwrap();
    assert!(compare_artifacts(&a, &b).is_none(), "{}", compare_artifacts(&a, &b).unwrap());
}

#[test]
fn injected_tx_shuffle_is_caught_with_offset_and_hashmap_hint() {
    let fixture = Fixture::small();
    let d = corruption_is_caught(&fixture, &Corruption::ShuffleTxOrder)
        .unwrap()
        .expect("shuffled transaction order must not escape detection");
    assert_eq!(d.artifact, BLOCK_STREAM);
    assert_eq!(d.hint, RootCauseHint::HashMapIterationOrder, "divergence: {d}");
    let block = d.block_number.expect("divergence must be localized to a block");
    assert!(block > 0, "genesis has one tx and cannot be the shuffled block");

    // Independently verify the reported offset: re-run the two sides the
    // same way the self-test does and scan the raw bytes.
    let spec = ReplicaSpec::baseline();
    let a = run_replica(&fixture, &spec).unwrap();
    let mut b = run_replica(&fixture, &spec).unwrap();
    fabric_conformance::corrupt::apply(&mut b, &Corruption::ShuffleTxOrder).unwrap();
    let bytes_a = &a.artifact(BLOCK_STREAM).unwrap().bytes;
    let bytes_b = &b.artifact(BLOCK_STREAM).unwrap().bytes;
    let expected = bytes_a
        .iter()
        .zip(bytes_b.iter())
        .position(|(x, y)| x != y)
        .expect("corruption must change some byte");
    assert_eq!(d.byte_offset, expected, "reported offset must match a raw byte scan");
    // And the 16-byte hex context windows reflect the actual bytes.
    let end = (expected + 16).min(bytes_a.len());
    let hex: String = bytes_a[expected..end].iter().map(|x| format!("{x:02x}")).collect();
    assert_eq!(d.context_a, hex);
}

#[test]
fn injected_timestamp_leak_is_caught_with_timestamp_hint() {
    let fixture = Fixture::small();
    // Microseconds-since-epoch scale, well above the time-like floor.
    let d = corruption_is_caught(&fixture, &Corruption::TimestampLeak(1_722_000_000_000_000))
        .unwrap()
        .expect("timestamp leak must not escape detection");
    assert_eq!(d.artifact, CHAIN_FINGERPRINT);
    assert_eq!(d.hint, RootCauseHint::TimestampLeakage, "divergence: {d}");
    assert!(d.byte_offset >= 16 && d.byte_offset < 24, "leak was planted at bytes 16..24");
}

#[test]
fn injected_truncation_is_caught_with_length_hint() {
    let fixture = Fixture::small();
    let d = corruption_is_caught(&fixture, &Corruption::TruncateTail(9))
        .unwrap()
        .expect("truncated stream must not escape detection");
    assert_eq!(d.artifact, BLOCK_STREAM);
    assert_eq!(d.hint, RootCauseHint::LengthMismatch, "divergence: {d}");
    assert_eq!(d.len_a, d.len_b + 9);
    assert_eq!(d.byte_offset, d.len_b, "divergence sits at the end of the common prefix");
}
