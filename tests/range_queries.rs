//! Range queries (`GetStateByRange`) through the full pipeline: a
//! range-scanning chaincode is endorsed, ordered, validated, and committed;
//! a committed change to any scanned entry invalidates the reader.

use fabric_common::{Key, PipelineConfig, ValidationCode, Value};
use fabricpp::sync::ProposeOutcome;
use fabricpp::{chaincode_fn, SyncNet};

fn chaincodes() -> Vec<std::sync::Arc<dyn fabricpp_suite::peer::chaincode::Chaincode>> {
    // sum_range: writes the sum of every `acct:*` balance to `total`.
    let sum_range = chaincode_fn("sum_range", |ctx, _args| {
        let entries = ctx
            .get_range(&Key::from("acct:"), &Key::from("acct:~"))
            .map_err(|e| e.to_string())?;
        let total: i64 = entries.iter().filter_map(|(_, v)| v.as_i64()).sum();
        ctx.put_i64(Key::from("total"), total);
        Ok(())
    });
    // deposit: bumps one account.
    let deposit = chaincode_fn("deposit", |ctx, args| {
        let k = Key::new(args.to_vec());
        let v = ctx.get_i64(&k).map_err(|e| e.to_string())?.ok_or("missing account")?;
        ctx.put_i64(k, v + 100);
        Ok(())
    });
    vec![sum_range, deposit]
}

fn genesis() -> Vec<(Key, Value)> {
    (0..5).map(|i| (Key::composite("acct", i), Value::from_i64(10 * (i as i64 + 1)))).collect()
}

#[test]
fn range_scan_commits_and_reads_consistent_sum() {
    let mut net =
        SyncNet::new(&PipelineConfig::fabric_pp(), 2, 2, chaincodes(), &genesis()).unwrap();
    net.propose_and_submit(0, "sum_range", vec![]).unwrap();
    let block = net.cut_block().unwrap().expect("block");
    assert_eq!(block.validity, vec![ValidationCode::Valid]);
    let total = net
        .reporting_peer()
        .store()
        .get(&Key::from("total"))
        .unwrap()
        .unwrap()
        .value
        .as_i64()
        .unwrap();
    assert_eq!(total, 10 + 20 + 30 + 40 + 50);
}

#[test]
fn committed_change_to_scanned_entry_invalidates_reader() {
    let mut net =
        SyncNet::new(&PipelineConfig::vanilla(), 2, 1, chaincodes(), &genesis()).unwrap();

    // Endorse the range scan against the genesis state, but hold it back.
    let scan_tx = match net.propose(0, "sum_range", vec![]) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(scan_tx.rwset.reads.len(), 5, "every scanned key recorded");

    // A deposit to one scanned account commits first.
    net.propose_and_submit(1, "deposit", Key::composite("acct", 2).as_bytes().to_vec())
        .unwrap();
    net.cut_block().unwrap();

    // The held-back scan now fails the serializability check.
    net.submit(scan_tx);
    let block = net.cut_block().unwrap().expect("block");
    assert_eq!(block.validity, vec![ValidationCode::MvccConflict]);
    assert!(
        net.reporting_peer().store().get(&Key::from("total")).unwrap().is_none(),
        "stale scan's write discarded"
    );
}

#[test]
fn fabricpp_orderer_drops_stale_range_reader_early() {
    let mut net =
        SyncNet::new(&PipelineConfig::fabric_pp(), 2, 1, chaincodes(), &genesis()).unwrap();
    let stale_scan = match net.propose(0, "sum_range", vec![]) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    net.propose_and_submit(1, "deposit", Key::composite("acct", 2).as_bytes().to_vec())
        .unwrap();
    net.cut_block().unwrap();
    // Fresh scan after the deposit.
    let fresh_scan = match net.propose(2, "sum_range", vec![]) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    net.submit(stale_scan);
    net.submit(fresh_scan);
    let block = net.cut_block().unwrap().expect("block");
    // The within-block version-mismatch check drops the stale scan at
    // order time; the fresh one commits.
    assert_eq!(block.block.txs.len(), 1);
    assert_eq!(block.validity, vec![ValidationCode::Valid]);
    assert_eq!(net.stats().early_abort_version_mismatch, 1);
    let total = net
        .reporting_peer()
        .store()
        .get(&Key::from("total"))
        .unwrap()
        .unwrap()
        .value
        .as_i64()
        .unwrap();
    assert_eq!(total, 150 + 100, "fresh scan saw the deposit");
}
