//! The flight recorder's overhead contract (release builds): emitting
//! through an **enabled** bounded sink performs zero steady-state heap
//! allocations. Event payloads carry only `Copy` data plus refcounted
//! `Key` handles, the ring's slots are pre-allocated, and drop-oldest
//! overwrites recycle slots in place — so a traced MVCC validation pass
//! is exactly as allocation-free as the untraced one, and raw emission
//! into a wrapping ring allocates nothing at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use fabricpp_suite::common::rwset::RwSetBuilder;
use fabricpp_suite::common::{
    BlockNum, ChannelId, ClientId, Digest, Key, Transaction, TxId, Value, Version,
};
use fabricpp_suite::ledger::Block;
use fabricpp_suite::peer::validator::{mvcc_validate_traced, MvccScratch};
use fabricpp_suite::statedb::{CommitWrite, MemStateDb, StateStore};
use fabricpp_suite::trace::{EventKind, TraceSink, VoteStep};

struct CountingAlloc;

// Per-thread counter (const-initialized TLS never allocates, so it is safe
// to touch from inside the allocator): each test measures only its own
// thread, so parallel test threads and libtest's own bookkeeping threads
// cannot leak allocations into another test's measured window.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn key(i: u64) -> Key {
    Key::composite("K", i)
}

/// A block whose transactions mix valid and in-block-conflicting reads, so
/// the traced validation emits provenance events every pass.
fn make_block(txs: usize) -> Block {
    let transactions: Vec<Transaction> = (0..txs)
        .map(|t| {
            let mut b = RwSetBuilder::new();
            for r in 0..4u64 {
                b.record_read(key((t as u64 * 7 + r * 31) % 256), Some(Version::GENESIS));
            }
            for w in 0..2u64 {
                b.record_write(
                    key((t as u64 * 13 + w * 97) % 256),
                    Some(Value::from_i64(t as i64)),
                );
            }
            Transaction {
                id: TxId::next(),
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "cc".into(),
                rwset: b.build(),
                endorsements: vec![],
                created_at: Instant::now(),
            }
        })
        .collect();
    Block::build(1, Digest::ZERO, transactions)
}

/// The MVCC hot path with the recorder ENABLED: same zero-allocation
/// contract as the untraced `mvcc_alloc` test. The ring (capacity 256) is
/// deliberately smaller than the events a measurement pass emits, so the
/// drop-oldest overwrite path is exercised too.
#[test]
fn steady_state_traced_mvcc_validation_does_not_allocate() {
    let store = MemStateDb::with_shards(8);
    let genesis: Vec<CommitWrite> =
        (0..256).map(|i| CommitWrite::put(key(i), Value::from_i64(0), 0)).collect();
    store.apply_block(0, &genesis).unwrap();

    let block = make_block(128);
    let endorsement_ok = vec![true; block.txs.len()];
    let mut scratch = MvccScratch::new();
    let mut codes = Vec::new();
    let sink = TraceSink::bounded(256);

    // Warm-up: scratch tables and the ring's slots reach steady state.
    for _ in 0..4 {
        mvcc_validate_traced(&block, &store, &endorsement_ok, &mut scratch, &mut codes, &sink)
            .unwrap();
    }
    let conflicts = codes.iter().filter(|c| !c.is_valid()).count();
    assert!(conflicts > 0, "the workload must exercise the conflict emit path");
    assert!(sink.emitted() > 0, "the sink must actually be recording");

    let before = allocations();
    for _ in 0..8 {
        mvcc_validate_traced(&block, &store, &endorsement_ok, &mut scratch, &mut codes, &sink)
            .unwrap();
    }
    let allocated = allocations() - before;

    assert!(sink.dropped() > 0, "the ring must wrap so drop-oldest is measured");
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "traced MVCC validation must not allocate when warm");
    }
}

/// Raw emission into a wrapping ring: every lifecycle event shape, tens of
/// thousands of emits, zero allocations.
#[test]
fn raw_emit_into_wrapping_ring_does_not_allocate() {
    let sink = TraceSink::bounded(64);
    let k = Key::from("hot-key");

    // Warm-up: fill the ring past capacity once.
    for i in 0..128u64 {
        sink.emit(EventKind::TxCommitted { block: i as BlockNum, tx: TxId(i) });
    }

    let before = allocations();
    for i in 0..10_000u64 {
        sink.emit(EventKind::TxCommitted { block: i as BlockNum, tx: TxId(i) });
        sink.emit(EventKind::TxMvccConflict {
            block: i as BlockNum,
            tx: TxId(i),
            key: k.clone(),
            expected: Some(Version::new(i, 0)),
            observed: Some(Version::GENESIS),
            writer: Some(TxId(i + 1)),
        });
        sink.emit(EventKind::BlockCommitted {
            block: i as BlockNum,
            valid: 10,
            invalid: 2,
            writes: 20,
            dur_us: 5,
        });
    }
    let allocated = allocations() - before;

    assert_eq!(sink.dropped() + 64, sink.emitted(), "ring at capacity throughout");
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "emit into a warm ring must not allocate");
    }
}

/// Consensus lifecycle events are all-`Copy` payloads too: a replicated
/// ordering round traced at full fidelity (proposal, both vote tallies,
/// view changes, decide) allocates nothing once the ring is warm.
#[test]
fn consensus_lifecycle_emission_does_not_allocate() {
    let sink = TraceSink::bounded(64);

    for i in 0..128u64 {
        sink.emit(EventKind::ConsensusDecide { height: i, view: 0, replica: 0, txs: 4 });
    }

    let before = allocations();
    for h in 0..10_000u64 {
        sink.emit(EventKind::ConsensusProposal { height: h, view: 0, leader: 1, txs: 12 });
        sink.emit(EventKind::ConsensusTally {
            height: h,
            view: 0,
            replica: 2,
            step: VoteStep::Prevote,
            votes: 2,
            nil_votes: 1,
        });
        sink.emit(EventKind::ConsensusTally {
            height: h,
            view: 0,
            replica: 2,
            step: VoteStep::Precommit,
            votes: 3,
            nil_votes: 0,
        });
        sink.emit(EventKind::ConsensusViewChange {
            height: h,
            old_view: 0,
            new_view: 1,
            old_leader: 0,
            new_leader: 1,
            replica: 2,
        });
        sink.emit(EventKind::ConsensusDecide { height: h, view: 1, replica: 1, txs: 11 });
    }
    let allocated = allocations() - before;

    assert_eq!(sink.dropped() + 64, sink.emitted(), "ring at capacity throughout");
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "consensus emits into a warm ring must not allocate");
    }
}
