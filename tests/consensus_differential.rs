//! Differential proof that replication does not change what is ordered:
//! a 1-replica consensus group degenerates to the single-orderer pipeline
//! byte-for-byte, and an n-replica group produces the same chain as long
//! as the batches are the same.
//!
//! Within one process, pre-built transactions are cloned to both sides so
//! block contents are comparable bit-by-bit (tx ids come from a
//! process-global counter, so independently *built* streams would differ
//! even when logically identical).

use std::sync::Arc;
use std::time::Instant;

use fabricpp_suite::common::hash::Digest;
use fabricpp_suite::common::rwset::RwSetBuilder;
use fabricpp_suite::common::{
    ChannelId, ClientId, Key, PipelineConfig, Transaction, TxId, Value, Version,
};
use fabricpp_suite::consensus::{GroupConfig, OrdererGroup};
use fabricpp_suite::net::NoFaults;
use fabricpp_suite::ordering::{OrderedBlock, OrderingService};

fn mk_tx(reads: &[(u64, Version)], writes: &[u64]) -> Transaction {
    let mut b = RwSetBuilder::new();
    for (k, v) in reads {
        b.record_read(Key::composite("K", *k), Some(*v));
    }
    for k in writes {
        b.record_write(Key::composite("K", *k), Some(Value::from_i64(1)));
    }
    Transaction {
        id: TxId::next(),
        channel: ChannelId(0),
        client: ClientId(0),
        chaincode: "cc".into(),
        rwset: b.build(),
        endorsements: vec![],
        created_at: Instant::now(),
    }
}

/// A batch stream with rw-dependencies (so the Fabric++ reorderer has
/// real work: cycles to break, early aborts to take) plus an empty batch
/// (so empty-block suppression is exercised on both sides).
fn batches() -> Vec<Vec<Transaction>> {
    let mut out = Vec::new();
    for b in 0..6u64 {
        if b == 3 {
            out.push(Vec::new());
            continue;
        }
        let mut batch = Vec::new();
        for t in 0..8u64 {
            let k = (b * 8 + t) % 10;
            // Read what the next tx writes: adjacent conflicts form
            // chains and the occasional cycle inside a batch.
            batch.push(mk_tx(&[(k, Version::GENESIS)], &[(k + 1) % 10]));
        }
        out.push(batch);
    }
    out
}

fn assert_same_block(a: &Option<OrderedBlock>, b: &Option<OrderedBlock>, ctx: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.block.header.hash(), b.block.header.hash(), "{ctx}: header hash");
            assert_eq!(
                a.block.txs.iter().map(|t| t.id).collect::<Vec<_>>(),
                b.block.txs.iter().map(|t| t.id).collect::<Vec<_>>(),
                "{ctx}: survivor order"
            );
            assert_eq!(
                a.early_aborted.iter().map(|(t, c)| (t.id, *c)).collect::<Vec<_>>(),
                b.early_aborted.iter().map(|(t, c)| (t.id, *c)).collect::<Vec<_>>(),
                "{ctx}: early aborts"
            );
        }
        _ => panic!("{ctx}: one side sealed a block, the other suppressed it"),
    }
}

fn group(config: &PipelineConfig, replicas: usize) -> OrdererGroup {
    OrdererGroup::new(
        GroupConfig::new(replicas),
        config,
        0,
        Digest::ZERO,
        Arc::new(NoFaults),
    )
    .unwrap()
}

#[test]
fn one_replica_group_is_byte_identical_to_the_single_orderer() {
    // The core acceptance gate: replicas=1 sends zero messages, consults
    // the fault hook zero times, and seals exactly what the plain
    // `OrderingService::order_batch` path seals — in both pipeline modes.
    for config in [PipelineConfig::vanilla(), PipelineConfig::fabric_pp()] {
        let mut single = OrderingService::new(&config);
        let mut g = group(&config, 1);
        for (i, batch) in batches().into_iter().enumerate() {
            let expect = single.order_batch(batch.clone());
            let got = g.decide_batch(batch).unwrap();
            assert_same_block(&expect, &got, &format!("batch {i}"));
        }
        assert_eq!(g.heights_decided(), 6);
    }
}

#[test]
fn three_replica_group_orders_the_same_chain_as_the_single_orderer() {
    // Replication adds agreement, not reordering: with a clean network
    // the 3-replica decided chain is byte-identical to the single
    // orderer's, and all three replicas end on the same fingerprint.
    let config = PipelineConfig::fabric_pp();
    let mut single = OrderingService::new(&config);
    let mut g = group(&config, 3);
    for (i, batch) in batches().into_iter().enumerate() {
        let expect = single.order_batch(batch.clone());
        let got = g.decide_batch(batch).unwrap();
        assert_same_block(&expect, &got, &format!("batch {i}"));
    }
    let fps = g.fingerprints();
    assert_eq!(fps.len(), 3);
    assert!(fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)));
}

#[test]
fn replica_counts_agree_with_each_other() {
    // 1, 3 and 5 replicas fed identical batches decide identical chains:
    // the consensus layer is invisible in the output.
    let config = PipelineConfig::fabric_pp();
    let all = batches();
    let mut groups = [group(&config, 1), group(&config, 3), group(&config, 5)];
    for (i, batch) in all.into_iter().enumerate() {
        let blocks: Vec<_> =
            groups.iter_mut().map(|g| g.decide_batch(batch.clone()).unwrap()).collect();
        assert_same_block(&blocks[0], &blocks[1], &format!("batch {i}: 1 vs 3"));
        assert_same_block(&blocks[0], &blocks[2], &format!("batch {i}: 1 vs 5"));
    }
}
