//! Cross-mode invariants: the four pipeline configurations of the paper's
//! Figure 10 breakdown, run on the same deterministic conflict-heavy
//! scenario. Fabric++ must never commit fewer transactions than vanilla,
//! and each optimization alone must sit between the two.

use std::sync::Arc;

use fabric_common::{Key, PipelineConfig, Value};
use fabricpp::{chaincode_fn, SyncNet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chaincode: read `n` accounts, write their sum to `n` other accounts.
fn rw_chaincode() -> Arc<dyn fabricpp_suite::peer::chaincode::Chaincode> {
    chaincode_fn("rw", |ctx, args| {
        let n = args[0] as usize;
        let id = |i: usize| u64::from_le_bytes(args[1 + 8 * i..9 + 8 * i].try_into().unwrap());
        let mut acc = 0i64;
        for i in 0..n {
            let k = Key::composite("a", id(i));
            acc += ctx.get_i64(&k).map_err(|e| e.to_string())?.ok_or("missing")?;
        }
        for i in n..2 * n {
            ctx.put_i64(Key::composite("a", id(i)), acc + i as i64);
        }
        Ok(())
    })
}

fn args(reads: &[u64], writes: &[u64]) -> Vec<u8> {
    let mut v = vec![reads.len() as u8];
    for id in reads.iter().chain(writes.iter()) {
        v.extend_from_slice(&id.to_le_bytes());
    }
    v
}

const ACCOUNTS: u64 = 60;
const HOT: u64 = 4;

fn genesis() -> Vec<(Key, Value)> {
    (0..ACCOUNTS).map(|i| (Key::composite("a", i), Value::from_i64(10))).collect()
}

/// Fires `batches × per_batch` hot-key transactions through one mode and
/// returns (valid, aborted) totals.
fn run_mode(cfg: &PipelineConfig, seed: u64) -> (u64, u64) {
    let mut net = SyncNet::new(cfg, 2, 1, vec![rw_chaincode()], &genesis()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for _batch in 0..6 {
        for client in 0..20u64 {
            // Two reads, two writes; heavily skewed toward the hot set.
            let pick = |rng: &mut StdRng, hot_p: f64| -> u64 {
                if rng.random::<f64>() < hot_p {
                    rng.random_range(0..HOT)
                } else {
                    rng.random_range(HOT..ACCOUNTS)
                }
            };
            let reads = [pick(&mut rng, 0.6), pick(&mut rng, 0.6)];
            let writes = [pick(&mut rng, 0.3), pick(&mut rng, 0.3)];
            net.propose_and_submit(client, "rw", args(&reads, &writes));
        }
        net.cut_block().unwrap();
    }
    let s = net.stats();
    (s.valid, s.aborted())
}

#[test]
fn fabricpp_dominates_vanilla_on_conflict_heavy_load() {
    let (vanilla_valid, vanilla_aborted) = run_mode(&PipelineConfig::vanilla(), 99);
    let (pp_valid, pp_aborted) = run_mode(&PipelineConfig::fabric_pp(), 99);
    let (ro_valid, _) = run_mode(&PipelineConfig::reordering_only(), 99);

    // Every submission reaches an outcome in every mode.
    assert_eq!(vanilla_valid + vanilla_aborted, 120);
    assert_eq!(pp_valid + pp_aborted, 120);

    assert!(
        pp_valid > vanilla_valid,
        "fabric++ {pp_valid} must beat vanilla {vanilla_valid}"
    );
    assert!(
        ro_valid >= vanilla_valid,
        "reordering-only {ro_valid} must not lose to vanilla {vanilla_valid}"
    );
    // There must be real contention for the comparison to mean anything.
    assert!(vanilla_aborted > 10, "scenario must actually conflict");
}

#[test]
fn all_modes_preserve_pipeline_invariants() {
    for cfg in [
        PipelineConfig::vanilla(),
        PipelineConfig::reordering_only(),
        PipelineConfig::early_abort_only(),
        PipelineConfig::fabric_pp(),
    ] {
        let mut net = SyncNet::new(&cfg, 2, 2, vec![rw_chaincode()], &genesis()).unwrap();
        for client in 0..10u64 {
            net.propose_and_submit(client, "rw", args(&[client % 5], &[(client + 1) % 5]));
        }
        net.cut_block().unwrap();
        let s = net.stats();
        assert_eq!(s.finished(), s.submitted, "mode {}", cfg.mode_label());
        // All peers converge to the same chain.
        let tip = net.reporting_peer().ledger().tip_hash();
        for peer in net.peers() {
            assert_eq!(peer.ledger().tip_hash(), tip, "mode {}", cfg.mode_label());
            peer.ledger().verify_chain().unwrap();
        }
    }
}

#[test]
fn deterministic_chains_across_identical_runs() {
    let run = || {
        let mut net =
            SyncNet::new(&PipelineConfig::fabric_pp(), 2, 1, vec![rw_chaincode()], &genesis())
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for client in 0..15u64 {
            let reads = [rng.random_range(0..ACCOUNTS)];
            let writes = [rng.random_range(0..ACCOUNTS)];
            net.propose_and_submit(client, "rw", args(&reads, &writes));
        }
        let block = net.cut_block().unwrap().expect("block");
        (block.block.header.data_hash, block.valid_count())
    };
    // TxIds differ between runs (global counter), so data hashes differ,
    // but the committed *state* and valid counts must match.
    let (_, v1) = run();
    let (_, v2) = run();
    assert_eq!(v1, v2);
}
