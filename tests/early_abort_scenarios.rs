//! Scripted scenarios for each Fabric++ early-abort path (paper §5.2),
//! plus the paper's Figure 6 race, driven deterministically.

use std::sync::Arc;

use fabric_common::{
    ConcurrencyMode, CostModel, Key, OrgId, PeerId, PipelineConfig, SignerRegistry, SigningKey,
    ValidationCode, Value,
};
use fabric_statedb::{CommitWrite, MemStateDb, StateStore};
use fabricpp::sync::ProposeOutcome;
use fabricpp::{chaincode_fn, SyncNet};
use fabricpp_suite::peer::chaincode::{Chaincode, ChaincodeRegistry, SimulationError};
use fabricpp_suite::peer::peer::Peer;
use fabricpp_suite::peer::validator::EndorsementPolicy;

fn read_both() -> Arc<dyn Chaincode> {
    chaincode_fn("read_both", |ctx, _args| {
        // Figure 6: read balA, then (after the concurrent commit) balB.
        let _ = ctx.get_i64(&Key::from("balA")).map_err(|e| e.to_string())?;
        let _ = ctx.get_i64(&Key::from("balB")).map_err(|e| e.to_string())?;
        ctx.put_i64(Key::from("out"), 1);
        Ok(())
    })
}

/// Paper Figure 6: a simulation pins last-block-ID = N, a concurrent
/// validation phase commits block N+1 touching a key the simulation reads
/// later → the simulation aborts at the read.
#[test]
fn figure_6_simulation_phase_early_abort() {
    // Drive the race deterministically with a chaincode that commits a
    // block between the two reads.
    let store = Arc::new(MemStateDb::with_genesis([
        (Key::from("balA"), Value::from_i64(70)),
        (Key::from("balB"), Value::from_i64(80)),
    ]));
    let store2 = Arc::clone(&store);

    let racing = chaincode_fn("racing", move |ctx, _args| {
        let a = ctx.get_i64(&Key::from("balA")).map_err(|e| e.to_string())?;
        assert_eq!(a, Some(70), "read before the commit is fresh");
        // The "validation phase" commits block 1 updating both balances.
        store2
            .apply_block(
                1,
                &[
                    CommitWrite::put(Key::from("balA"), Value::from_i64(50), 0),
                    CommitWrite::put(Key::from("balB"), Value::from_i64(100), 1),
                ],
            )
            .unwrap();
        // The next read must detect staleness (block 1 > snapshot 0).
        match ctx.get(&Key::from("balB")) {
            Err(SimulationError::StaleRead { key, snapshot_block, observed }) => {
                assert_eq!(key, Key::from("balB"));
                assert_eq!(snapshot_block, 0, "snapshot pinned before the commit");
                assert_eq!(observed, fabric_common::Version::new(1, 1));
                Err("aborted-as-expected".into())
            }
            other => Err(format!("expected stale read, got {other:?}")),
        }
    });

    let registry = SignerRegistry::new();
    let key = SigningKey::for_peer(PeerId(1), 1);
    registry.register(PeerId(1), key.clone());
    let mut ccs = ChaincodeRegistry::new();
    ccs.deploy("racing", racing);
    let peer = Peer::new(
        PeerId(1),
        OrgId(1),
        key,
        store,
        ccs,
        registry,
        EndorsementPolicy::any(),
        ConcurrencyMode::FineGrained,
        true,
        CostModel::raw(),
    );
    let proposal = fabric_common::TransactionProposal::new(
        fabric_common::ChannelId(0),
        fabric_common::ClientId(0),
        "racing",
        vec![],
    );
    // Even though the chaincode flattened the abort to a string, the
    // endorser surfaces the structured stale read: the client must be
    // "directly notified about the abort" (paper §5.2.1), and the flight
    // recorder needs the key/version provenance.
    match peer.endorse(&proposal) {
        Err(SimulationError::StaleRead { key, snapshot_block, observed }) => {
            assert_eq!(key, Key::from("balB"));
            assert_eq!(snapshot_block, 0);
            assert_eq!(observed, fabric_common::Version::new(1, 1));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

/// Under the vanilla coarse lock the same interleaving is impossible: the
/// simulation would block validation, so reads are never stale *during*
/// simulation — they go stale while waiting in the orderer instead.
#[test]
fn coarse_lock_has_no_simulation_stale_reads() {
    let net = SyncNet::new(
        &PipelineConfig::vanilla(),
        2,
        1,
        vec![read_both()],
        &[
            (Key::from("balA"), Value::from_i64(70)),
            (Key::from("balB"), Value::from_i64(80)),
        ],
    )
    .unwrap();
    for c in 0..5 {
        match net.propose(c, "read_both", vec![]) {
            ProposeOutcome::Endorsed(_) => {}
            other => panic!("vanilla simulation must never early-abort: {other:?}"),
        }
    }
    assert_eq!(net.stats().early_abort_simulation, 0);
}

/// §5.2.2: two transactions in one batch reading the same key at different
/// versions — the older reader is dropped by the orderer; the paper's
/// correction says explicitly it is the *former* (older) transaction.
#[test]
fn ordering_phase_version_mismatch_drops_older_reader() {
    let bump = chaincode_fn("bump", |ctx, _| {
        let v = ctx.get_i64(&Key::from("hot")).map_err(|e| e.to_string())?.unwrap_or(0);
        ctx.put_i64(Key::from("hot"), v + 1);
        Ok(())
    });
    let reader = chaincode_fn("reader", |ctx, args| {
        let _ = ctx.get_i64(&Key::from("hot")).map_err(|e| e.to_string())?;
        ctx.put_i64(Key::new(args.to_vec()), 1);
        Ok(())
    });

    let mut net = SyncNet::new(
        &PipelineConfig::fabric_pp(),
        2,
        1,
        vec![bump, reader],
        &[(Key::from("hot"), Value::from_i64(0))],
    )
    .unwrap();

    // T_old reads `hot` at genesis.
    let t_old = match net.propose(0, "reader", b"out-old".to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    // A bump commits, advancing `hot` to block 1.
    net.propose_and_submit(1, "bump", vec![]).unwrap();
    net.cut_block().unwrap();
    // T_new reads `hot` at block 1.
    let t_new = match net.propose(2, "reader", b"out-new".to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };

    let (old_id, new_id) = (t_old.id, t_new.id);
    net.submit(t_old);
    net.submit(t_new);
    let block = net.cut_block().unwrap().expect("block");

    assert_eq!(block.block.txs.len(), 1, "older reader dropped before distribution");
    assert_eq!(block.block.txs[0].id, new_id);
    assert_eq!(block.validity, vec![ValidationCode::Valid]);
    assert_eq!(net.stats().early_abort_version_mismatch, 1);
    assert!(net.reporting_peer().ledger().find_tx(old_id).is_none());
}

/// §5.1: cycle members are aborted in the ordering phase, before the block
/// ever ships — compare against vanilla where the same conflict is
/// detected only at validation on every peer.
#[test]
fn cycle_abort_happens_before_distribution() {
    let swap = chaincode_fn("swap", |ctx, args| {
        // Reads one key, writes the other.
        let (r, w) = if args[0] == 0 { ("x", "y") } else { ("y", "x") };
        let v = ctx.get_i64(&Key::from(r)).map_err(|e| e.to_string())?.unwrap_or(0);
        ctx.put_i64(Key::from(w), v + 1);
        Ok(())
    });
    let genesis = [
        (Key::from("x"), Value::from_i64(1)),
        (Key::from("y"), Value::from_i64(2)),
    ];

    // Fabric++: one of the two cycle members dies at order time.
    let mut pp = SyncNet::new(&PipelineConfig::fabric_pp(), 2, 1, vec![swap.clone()], &genesis)
        .unwrap();
    pp.propose_and_submit(0, "swap", vec![0]).unwrap();
    pp.propose_and_submit(1, "swap", vec![1]).unwrap();
    let block = pp.cut_block().unwrap().expect("block");
    assert_eq!(block.block.txs.len(), 1, "cycle member removed pre-distribution");
    assert_eq!(pp.stats().early_abort_cycle, 1);
    assert_eq!(pp.stats().valid, 1);

    // Vanilla: both ship; the second aborts at validation on every peer.
    let mut v = SyncNet::new(&PipelineConfig::vanilla(), 2, 1, vec![swap], &genesis).unwrap();
    v.propose_and_submit(0, "swap", vec![0]).unwrap();
    v.propose_and_submit(1, "swap", vec![1]).unwrap();
    let block = v.cut_block().unwrap().expect("block");
    assert_eq!(block.block.txs.len(), 2, "vanilla ships doomed transactions");
    assert_eq!(block.valid_count(), 1);
    assert_eq!(v.stats().mvcc_conflict, 1);
}
