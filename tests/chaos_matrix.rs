//! The chaos matrix: fault plans × pipeline modes over the deterministic
//! chaos harness, driven by the Smallbank workload.
//!
//! Each cell runs a seeded Smallbank stream through a `ChaosNet` under one
//! fault plan and then sweeps the invariants: live-peer convergence
//! (height, tip hash, state digest), per-peer hash-chain verification, and
//! no-committed-transaction-loss across crash/restart. A final case
//! asserts the determinism contract itself — same seed, same plan ⇒
//! byte-identical fault schedules.

use fabric_chaos::{ChaosNet, ChaosOptions, FaultEvent, FaultPlan, InvariantReport};
use fabric_common::hash::Digest;
use fabric_common::PipelineConfig;
use fabric_workloads::smallbank::SmallbankChaincode;
use fabric_workloads::{SmallbankConfig, SmallbankWorkload, WorkloadGen};
use fabricpp_suite::telemetry::TelemetryConfig;
use fabricpp_suite::trace::TraceSink;

const ORGS: usize = 2;
const PEERS_PER_ORG: usize = 2;
const BLOCKS: u64 = 10;
const TXS_PER_BLOCK: u64 = 4;

struct CaseResult {
    report: InvariantReport,
    schedule: Digest,
    events: Vec<FaultEvent>,
    faults: u64,
    valid: u64,
}

/// Runs one matrix cell: a fresh network, a seeded Smallbank stream, and
/// the end-of-run invariant sweep. `persist` gives every peer an on-disk
/// block log (required for torn-crash plans).
fn run_case(config: &PipelineConfig, plan: FaultPlan, persist: Option<&str>) -> CaseResult {
    run_case_traced(config, plan, persist, TraceSink::disabled())
}

fn run_case_traced(
    config: &PipelineConfig,
    plan: FaultPlan,
    persist: Option<&str>,
    sink: TraceSink,
) -> CaseResult {
    let mut wl = SmallbankWorkload::new(SmallbankConfig {
        users: 40,
        p_write: 0.9,
        s_value: 0.4,
        seed: 11,
    });
    let genesis = wl.genesis();
    let mut net = ChaosNet::new_traced(
        config,
        ORGS,
        PEERS_PER_ORG,
        vec![SmallbankChaincode::deployable()],
        &genesis,
        plan,
        sink,
    )
    .unwrap();
    let dir = persist.map(|tag| {
        std::env::temp_dir().join(format!("chaos-matrix-{tag}-{}", std::process::id()))
    });
    if let Some(dir) = &dir {
        let _ = std::fs::remove_dir_all(dir);
        net.persist_blocks(dir).unwrap();
    }
    let mut client = 0u64;
    for _ in 0..BLOCKS {
        for _ in 0..TXS_PER_BLOCK {
            net.propose_and_submit(client, "smallbank", wl.next_args());
            client += 1;
        }
        net.cut_block().unwrap();
    }
    let report = net.check().unwrap();
    if let Some(dir) = &dir {
        std::fs::remove_dir_all(dir).unwrap();
    }
    CaseResult {
        report,
        schedule: net.injector().schedule_digest(),
        events: net.injector().events(),
        faults: net.injector().fault_count(),
        valid: net.stats().valid,
    }
}

struct ReplicatedResult {
    case: CaseResult,
    /// Live-replica block-stream fingerprints at shutdown: (replica,
    /// next block number, rolling chain hash).
    fingerprints: Vec<(u32, u64, Digest)>,
    replicas_up: usize,
    heights_decided: u64,
    blocks_cut: u64,
}

/// Runs one matrix cell with the ordering service replaced by a
/// `replicas`-strong consensus group whose messages run through the same
/// fault injector as block delivery.
fn run_replicated_case(
    config: &PipelineConfig,
    plan: FaultPlan,
    replicas: usize,
) -> ReplicatedResult {
    let mut wl = SmallbankWorkload::new(SmallbankConfig {
        users: 40,
        p_write: 0.9,
        s_value: 0.4,
        seed: 11,
    });
    let genesis = wl.genesis();
    let mut net = ChaosNet::new_replicated(
        config,
        ORGS,
        PEERS_PER_ORG,
        vec![SmallbankChaincode::deployable()],
        &genesis,
        plan,
        replicas,
    )
    .unwrap();
    let mut client = 0u64;
    for _ in 0..BLOCKS {
        for _ in 0..TXS_PER_BLOCK {
            net.propose_and_submit(client, "smallbank", wl.next_args());
            client += 1;
        }
        net.cut_block().unwrap();
    }
    let report = net.check().unwrap();
    let group = net.orderer_group().unwrap();
    ReplicatedResult {
        fingerprints: group.fingerprints(),
        replicas_up: (0..group.replicas()).filter(|&r| !group.is_down(r)).count(),
        heights_decided: group.heights_decided(),
        blocks_cut: net.blocks_cut(),
        case: CaseResult {
            report,
            schedule: net.injector().schedule_digest(),
            events: net.injector().events(),
            faults: net.injector().fault_count(),
            valid: net.stats().valid,
        },
    }
}

/// Orderer-replica convergence: every live replica sealed the identical
/// block stream (same next block number, same rolling chain hash).
fn assert_replicas_converged(r: &ReplicatedResult) {
    assert!(!r.fingerprints.is_empty());
    let (_, n0, h0) = r.fingerprints[0];
    assert!(
        r.fingerprints.iter().all(|(_, n, h)| (*n, *h) == (n0, h0)),
        "replica block streams diverged: {:?}",
        r.fingerprints
    );
    assert_eq!(n0, r.blocks_cut + 1, "replica chains must match delivered blocks");
}

fn modes() -> [(&'static str, PipelineConfig); 2] {
    [
        ("fabric", PipelineConfig::vanilla()),
        ("fabric++", PipelineConfig::fabric_pp()),
    ]
}

#[test]
fn quiescent_control_arm_is_clean() {
    for (label, config) in modes() {
        let r = run_case(&config, FaultPlan::quiescent(1), None);
        r.report.assert_ok();
        assert_eq!(r.faults, 0, "{label}: control arm must inject nothing");
        assert_eq!(r.report.peers_checked, ORGS * PEERS_PER_ORG);
        assert!(r.valid > 0, "{label}: workload must commit transactions");
        assert_eq!(r.report.height, BLOCKS + 1, "{label}: genesis + every cut block");
    }
}

#[test]
fn lossy_network_converges_in_both_modes() {
    for (label, config) in modes() {
        let r = run_case(&config, FaultPlan::lossy(22), None);
        r.report.assert_ok();
        assert!(r.valid > 0, "{label}: workload must survive loss");
    }
}

#[test]
fn chaotic_network_converges_in_both_modes() {
    for (label, config) in modes() {
        let r = run_case(&config, FaultPlan::chaotic(33), None);
        r.report.assert_ok();
        assert!(r.faults > 0, "{label}: chaotic plan must inject faults");
    }
}

#[test]
fn partition_heals_in_both_modes() {
    // Org 2 (peers 3 and 4) cut off for blocks 2..7, healed afterwards.
    for (label, config) in modes() {
        let plan = FaultPlan::lossy(44).with_partition(vec![3, 4], 1, 6);
        let r = run_case(&config, plan, None);
        r.report.assert_ok();
        assert!(
            r.events
                .iter()
                .any(|e| matches!(e, FaultEvent::Net { partition: true, .. })),
            "{label}: partition drops must appear in the schedule"
        );
    }
}

#[test]
fn crash_and_recovery_preserve_committed_txs() {
    // Peer 2 dies at block 3 and is restarted three blocks later; peer 4
    // dies at block 6 with a torn block log and restarts after two. The
    // invariant sweep (convergence + find_tx on every committed id) is the
    // no-tx-loss check.
    for (label, config) in modes() {
        let plan = FaultPlan::quiescent(55)
            .with_crash(2, 3, 3)
            .with_torn_crash(4, 6, 2, 9);
        let tag = format!("crash-{}", label.replace("++", "pp"));
        let r = run_case(&config, plan, Some(&tag));
        r.report.assert_ok();
        assert!(r.valid > 0, "{label}: workload must commit through crashes");
        assert_eq!(r.report.peers_checked, ORGS * PEERS_PER_ORG, "{label}: all peers restarted");
    }
}

#[test]
fn crash_with_live_snapshot_pins_recovers_version_chains() {
    // A peer dies while endorsements still hold live snapshot pins on its
    // store. Pins are process state, not ledger state: the crash drops
    // them with the store, recovery replays the ledger into a fresh
    // multi-version store (version chains rebuild from the committed
    // blocks), and the old pinned snapshot keeps resolving its pre-crash
    // height from the orphaned store without perturbing anything — the
    // fault schedule stays byte-identical to a pin-free run and no
    // committed transaction is lost.
    use std::sync::Arc;

    for (label, config) in modes() {
        // Baseline: the same plan with no pins anywhere.
        let baseline = run_case(&config, FaultPlan::quiescent(55).with_crash(2, 3, 3), None);
        baseline.report.assert_ok();

        let mut wl = SmallbankWorkload::new(SmallbankConfig {
            users: 40,
            p_write: 0.9,
            s_value: 0.4,
            seed: 11,
        });
        let genesis = wl.genesis();
        let keys: Vec<_> = genesis.iter().map(|(k, _)| k.clone()).take(16).collect();
        let mut net = ChaosNet::new(
            &config,
            ORGS,
            PEERS_PER_ORG,
            vec![SmallbankChaincode::deployable()],
            &genesis,
            FaultPlan::quiescent(55).with_crash(2, 3, 3),
        )
        .unwrap();

        let mut pinned = None;
        let mut client = 0u64;
        for b in 0..BLOCKS {
            if b == 2 {
                // Two endorsement-style snapshots go live on the doomed
                // peer's store right before the crash block and stay held
                // across crash, recovery, and catch-up.
                let store = Arc::clone(net.peers()[2].store());
                let h = store.last_committed_block();
                pinned = Some((Arc::clone(&store), store.pin_snapshot(), store.pin_snapshot()));
                assert_eq!(pinned.as_ref().unwrap().1.height(), h);
            }
            for _ in 0..TXS_PER_BLOCK {
                net.propose_and_submit(client, "smallbank", wl.next_args());
                client += 1;
            }
            net.cut_block().unwrap();
        }
        let report = net.check().unwrap();
        report.assert_ok();
        assert!(net.stats().valid > 0, "{label}: workload must commit through the crash");
        assert_eq!(report.peers_checked, ORGS * PEERS_PER_ORG, "{label}: crashed peer restarted");

        // Pinning is observation-only: the fault schedule and outcomes are
        // byte-identical to the pin-free baseline.
        assert_eq!(
            net.injector().schedule_digest(),
            baseline.schedule,
            "{label}: live pins perturbed the fault schedule"
        );
        assert_eq!(net.stats().valid, baseline.valid, "{label}: live pins changed outcomes");

        // The orphaned store still serves its pinned pre-crash height: the
        // pins outlived the peer, not the other way around.
        let (old_store, pin_a, pin_b) = pinned.unwrap();
        assert_eq!(pin_a.height(), pin_b.height());
        for key in &keys {
            let got = old_store.get_at(key, pin_a.height()).unwrap();
            let vv = got.at_height.expect("pre-crash key resolves at the pinned height");
            assert!(vv.version.block <= pin_a.height());
        }

        // Recovery rebuilt the version chains from the ledger: the
        // restarted peer's fresh store answers versioned reads at the tip
        // *and* one block back, byte-identically to a peer that never
        // crashed.
        let peers = net.peers();
        let restarted = peers[2].store();
        let healthy = peers[0].store();
        let tip = restarted.last_committed_block();
        assert_eq!(tip, healthy.last_committed_block(), "{label}: catch-up reached the tip");
        let snap = restarted.pin_snapshot();
        assert_eq!(snap.height(), tip);
        for h in [tip, tip - 1] {
            for key in &keys {
                let a = restarted.get_at(key, h).unwrap();
                let b = healthy.get_at(key, h).unwrap();
                assert_eq!(
                    a.at_height, b.at_height,
                    "{label}: rebuilt chain diverges for {key:?} at height {h}"
                );
            }
        }
    }
}

#[test]
fn same_seed_produces_identical_fault_schedules() {
    for (label, config) in modes() {
        let a = run_case(&config, FaultPlan::chaotic(77), None);
        let b = run_case(&config, FaultPlan::chaotic(77), None);
        assert!(a.faults > 0, "{label}: schedule must be non-trivial");
        assert_eq!(a.events, b.events, "{label}: event logs diverged");
        assert_eq!(a.schedule, b.schedule, "{label}: schedule digests diverged");
        assert_eq!(a.valid, b.valid, "{label}: outcomes diverged");
        assert_eq!(
            a.report.state_digest, b.report.state_digest,
            "{label}: final states diverged"
        );
        // A different seed must (overwhelmingly) produce a different
        // schedule — the digest is not a constant.
        let c = run_case(&config, FaultPlan::chaotic(78), None);
        assert_ne!(a.schedule, c.schedule, "{label}: seeds 77 and 78 collided");
    }
}

#[test]
fn tracing_does_not_perturb_the_fault_schedule() {
    // The flight recorder is observation-only: a traced run must produce
    // the byte-identical fault schedule, event log, outcome counts, and
    // final state of an untraced run — and the trace must mirror every
    // fault verdict the injector logged.
    for (label, config) in modes() {
        let plain = run_case(&config, FaultPlan::chaotic(77), None);
        let sink = TraceSink::bounded(1 << 16);
        let traced = run_case_traced(&config, FaultPlan::chaotic(77), None, sink.clone());

        assert!(plain.faults > 0, "{label}: schedule must be non-trivial");
        assert_eq!(plain.schedule, traced.schedule, "{label}: tracing changed the schedule");
        assert_eq!(plain.events, traced.events, "{label}: tracing changed the event log");
        assert_eq!(plain.valid, traced.valid, "{label}: tracing changed outcomes");
        assert_eq!(
            plain.report.state_digest, traced.report.state_digest,
            "{label}: tracing changed the final state"
        );

        let events = sink.drain();
        assert_eq!(sink.dropped(), 0, "{label}: ring must retain the whole run");
        let fault_events =
            events.iter().filter(|e| e.kind.label().starts_with("fault_")).count() as u64;
        assert_eq!(
            fault_events, traced.faults,
            "{label}: every injector verdict must mirror into the trace"
        );
        assert!(
            events.iter().any(|e| e.kind.label() == "tx_committed"),
            "{label}: the reporting peer's pipeline must trace too"
        );
    }
}

#[test]
fn telemetry_does_not_perturb_the_fault_schedule() {
    // Same proof obligation as the tracing case: the windowed time-series
    // hub is observation-only, so a telemetry-on run must produce the
    // byte-identical fault schedule, event log, outcome counts, and final
    // state of a telemetry-off run — while its windows still partition the
    // run's counters exactly.
    for (label, config) in modes() {
        let plain = run_case(&config, FaultPlan::chaotic(77), None);

        let mut wl = SmallbankWorkload::new(SmallbankConfig {
            users: 40,
            p_write: 0.9,
            s_value: 0.4,
            seed: 11,
        });
        let genesis = wl.genesis();
        let opts = ChaosOptions {
            telemetry: Some(TelemetryConfig { window_blocks: 3, ..TelemetryConfig::default() }),
            ..ChaosOptions::default()
        };
        let mut net = ChaosNet::with_options(
            &config,
            ORGS,
            PEERS_PER_ORG,
            vec![SmallbankChaincode::deployable()],
            &genesis,
            FaultPlan::chaotic(77),
            opts,
        )
        .unwrap();
        let mut client = 0u64;
        for _ in 0..BLOCKS {
            for _ in 0..TXS_PER_BLOCK {
                net.propose_and_submit(client, "smallbank", wl.next_args());
                client += 1;
            }
            net.cut_block().unwrap();
        }
        let report = net.check().unwrap();
        report.assert_ok();

        assert_eq!(
            plain.schedule,
            net.injector().schedule_digest(),
            "{label}: telemetry changed the fault schedule"
        );
        assert_eq!(
            plain.events,
            net.injector().events(),
            "{label}: telemetry changed the event log"
        );
        assert_eq!(plain.valid, net.stats().valid, "{label}: telemetry changed outcomes");
        assert_eq!(
            plain.report.state_digest, report.state_digest,
            "{label}: telemetry changed the final state"
        );

        let series = net.telemetry_series().expect("telemetry enabled");
        series.check_invariants(&net.stats()).unwrap_or_else(|e| {
            panic!("{label}: telemetry window invariants violated: {e}")
        });
        assert!(!series.is_empty(), "{label}: blocks were cut, so windows must exist");
    }
}

#[test]
fn replicated_leader_crash_mid_height_converges() {
    // Three orderer replicas; height 3's view-0 leader (replica (3+0)%3 =
    // 0) dies right after its proposal hits the wire and restarts two
    // heights later. The survivors decide (the proposal already escaped),
    // the restarted replica catches up from the decided-batch archive,
    // and both the peer network and the replica chains converge with no
    // committed transaction lost.
    for (label, config) in modes() {
        let plan = FaultPlan::quiescent(101).with_orderer_crash(0, 3, 2, true);
        let r = run_replicated_case(&config, plan, 3);
        r.case.report.assert_ok();
        assert!(r.case.valid > 0, "{label}: workload must commit through the crash");
        assert_eq!(r.heights_decided, BLOCKS, "{label}: every cut batch decided");
        assert_eq!(r.replicas_up, 3, "{label}: the crashed replica restarted");
        assert_replicas_converged(&r);
    }
}

#[test]
fn replicated_partition_during_view_change_heals() {
    // Replica 2 is cut off (symmetrically) for the first few messages on
    // each of its links — covering height 2, whose view-0 leader it is.
    // Its proposal never escapes, the survivors time out into view 1 and
    // decide under leader 0; once the window passes, replica 2 rejoins
    // and seals the heights it missed from its own recomputed plans.
    for (label, config) in modes() {
        let plan = FaultPlan::quiescent(102).with_orderer_partition(vec![2], 0, 4);
        let r = run_replicated_case(&config, plan, 3);
        r.case.report.assert_ok();
        assert!(
            r.case
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::Net { partition: true, .. })),
            "{label}: consensus partition drops must appear in the schedule"
        );
        assert_eq!(r.replicas_up, 3, "{label}: nobody crashed, only partitioned");
        assert_replicas_converged(&r);
    }
}

#[test]
fn replicated_equivocation_cannot_fork_the_chain() {
    // Height 2's view-0 leader (replica 2) equivocates toward both
    // followers: forged digests can never gather honest prevotes, so the
    // view fails, view 1's honest leader re-proposes, and every replica
    // seals the identical chain — equivocation costs a view change, not
    // safety.
    for (label, config) in modes() {
        let plan = FaultPlan::quiescent(103).with_equivocation(2, 2, vec![0, 1]);
        let r = run_replicated_case(&config, plan, 3);
        r.case.report.assert_ok();
        assert!(r.case.valid > 0, "{label}: workload must commit despite equivocation");
        assert_eq!(r.heights_decided, BLOCKS, "{label}: every height still decides");
        assert_replicas_converged(&r);
    }
}

#[test]
fn replicated_lossy_network_converges_and_replays_from_seed() {
    // Random drops/duplicates/delays/reorders now also hit consensus
    // traffic. The run must converge (peers and replicas), and the same
    // seed must replay the byte-identical fault schedule — the
    // determinism contract extended over consensus links.
    for (label, config) in modes() {
        let a = run_replicated_case(&config, FaultPlan::lossy(104), 3);
        a.case.report.assert_ok();
        assert!(a.case.faults > 0, "{label}: faults must hit consensus traffic");
        assert_replicas_converged(&a);

        let b = run_replicated_case(&config, FaultPlan::lossy(104), 3);
        assert_eq!(a.case.events, b.case.events, "{label}: event logs diverged");
        assert_eq!(a.case.schedule, b.case.schedule, "{label}: schedule digests diverged");
        assert_eq!(a.case.valid, b.case.valid, "{label}: outcomes diverged");
        assert_eq!(
            a.case.report.state_digest, b.case.report.state_digest,
            "{label}: final states diverged"
        );
        // Tx ids come from a process-global counter, so raw chain hashes
        // differ between in-process runs; the cross-run contract is the
        // structure (same replicas at the same block number).
        let structure =
            |r: &ReplicatedResult| r.fingerprints.iter().map(|(id, n, _)| (*id, *n)).collect::<Vec<_>>();
        assert_eq!(structure(&a), structure(&b), "{label}: replica chain structure diverged");

        let c = run_replicated_case(&config, FaultPlan::lossy(105), 3);
        assert_ne!(a.case.schedule, c.case.schedule, "{label}: seeds 104 and 105 collided");
    }
}

#[test]
fn replicated_five_replicas_survive_two_crashes() {
    // Five replicas, majority quorum 3: two distinct replicas die at
    // different heights (one mid-propose, one before) and both restart.
    // Liveness holds throughout and all five chains end identical.
    let plan = FaultPlan::quiescent(106)
        .with_orderer_crash(1, 2, 2, true)
        .with_orderer_crash(3, 5, 3, false);
    let r = run_replicated_case(&PipelineConfig::fabric_pp(), plan, 5);
    r.case.report.assert_ok();
    assert_eq!(r.heights_decided, BLOCKS);
    assert_eq!(r.replicas_up, 5, "both crashed replicas restarted");
    assert_replicas_converged(&r);
}
