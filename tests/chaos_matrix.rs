//! The chaos matrix: fault plans × pipeline modes over the deterministic
//! chaos harness, driven by the Smallbank workload.
//!
//! Each cell runs a seeded Smallbank stream through a `ChaosNet` under one
//! fault plan and then sweeps the invariants: live-peer convergence
//! (height, tip hash, state digest), per-peer hash-chain verification, and
//! no-committed-transaction-loss across crash/restart. A final case
//! asserts the determinism contract itself — same seed, same plan ⇒
//! byte-identical fault schedules.

use fabric_chaos::{ChaosNet, FaultEvent, FaultPlan, InvariantReport};
use fabric_common::hash::Digest;
use fabric_common::PipelineConfig;
use fabric_workloads::smallbank::SmallbankChaincode;
use fabric_workloads::{SmallbankConfig, SmallbankWorkload, WorkloadGen};
use fabricpp_suite::trace::TraceSink;

const ORGS: usize = 2;
const PEERS_PER_ORG: usize = 2;
const BLOCKS: u64 = 10;
const TXS_PER_BLOCK: u64 = 4;

struct CaseResult {
    report: InvariantReport,
    schedule: Digest,
    events: Vec<FaultEvent>,
    faults: u64,
    valid: u64,
}

/// Runs one matrix cell: a fresh network, a seeded Smallbank stream, and
/// the end-of-run invariant sweep. `persist` gives every peer an on-disk
/// block log (required for torn-crash plans).
fn run_case(config: &PipelineConfig, plan: FaultPlan, persist: Option<&str>) -> CaseResult {
    run_case_traced(config, plan, persist, TraceSink::disabled())
}

fn run_case_traced(
    config: &PipelineConfig,
    plan: FaultPlan,
    persist: Option<&str>,
    sink: TraceSink,
) -> CaseResult {
    let mut wl = SmallbankWorkload::new(SmallbankConfig {
        users: 40,
        p_write: 0.9,
        s_value: 0.4,
        seed: 11,
    });
    let genesis = wl.genesis();
    let mut net = ChaosNet::new_traced(
        config,
        ORGS,
        PEERS_PER_ORG,
        vec![SmallbankChaincode::deployable()],
        &genesis,
        plan,
        sink,
    )
    .unwrap();
    let dir = persist.map(|tag| {
        std::env::temp_dir().join(format!("chaos-matrix-{tag}-{}", std::process::id()))
    });
    if let Some(dir) = &dir {
        let _ = std::fs::remove_dir_all(dir);
        net.persist_blocks(dir).unwrap();
    }
    let mut client = 0u64;
    for _ in 0..BLOCKS {
        for _ in 0..TXS_PER_BLOCK {
            net.propose_and_submit(client, "smallbank", wl.next_args());
            client += 1;
        }
        net.cut_block().unwrap();
    }
    let report = net.check().unwrap();
    if let Some(dir) = &dir {
        std::fs::remove_dir_all(dir).unwrap();
    }
    CaseResult {
        report,
        schedule: net.injector().schedule_digest(),
        events: net.injector().events(),
        faults: net.injector().fault_count(),
        valid: net.stats().valid,
    }
}

fn modes() -> [(&'static str, PipelineConfig); 2] {
    [
        ("fabric", PipelineConfig::vanilla()),
        ("fabric++", PipelineConfig::fabric_pp()),
    ]
}

#[test]
fn quiescent_control_arm_is_clean() {
    for (label, config) in modes() {
        let r = run_case(&config, FaultPlan::quiescent(1), None);
        r.report.assert_ok();
        assert_eq!(r.faults, 0, "{label}: control arm must inject nothing");
        assert_eq!(r.report.peers_checked, ORGS * PEERS_PER_ORG);
        assert!(r.valid > 0, "{label}: workload must commit transactions");
        assert_eq!(r.report.height, BLOCKS + 1, "{label}: genesis + every cut block");
    }
}

#[test]
fn lossy_network_converges_in_both_modes() {
    for (label, config) in modes() {
        let r = run_case(&config, FaultPlan::lossy(22), None);
        r.report.assert_ok();
        assert!(r.valid > 0, "{label}: workload must survive loss");
    }
}

#[test]
fn chaotic_network_converges_in_both_modes() {
    for (label, config) in modes() {
        let r = run_case(&config, FaultPlan::chaotic(33), None);
        r.report.assert_ok();
        assert!(r.faults > 0, "{label}: chaotic plan must inject faults");
    }
}

#[test]
fn partition_heals_in_both_modes() {
    // Org 2 (peers 3 and 4) cut off for blocks 2..7, healed afterwards.
    for (label, config) in modes() {
        let plan = FaultPlan::lossy(44).with_partition(vec![3, 4], 1, 6);
        let r = run_case(&config, plan, None);
        r.report.assert_ok();
        assert!(
            r.events
                .iter()
                .any(|e| matches!(e, FaultEvent::Net { partition: true, .. })),
            "{label}: partition drops must appear in the schedule"
        );
    }
}

#[test]
fn crash_and_recovery_preserve_committed_txs() {
    // Peer 2 dies at block 3 and is restarted three blocks later; peer 4
    // dies at block 6 with a torn block log and restarts after two. The
    // invariant sweep (convergence + find_tx on every committed id) is the
    // no-tx-loss check.
    for (label, config) in modes() {
        let plan = FaultPlan::quiescent(55)
            .with_crash(2, 3, 3)
            .with_torn_crash(4, 6, 2, 9);
        let tag = format!("crash-{}", label.replace("++", "pp"));
        let r = run_case(&config, plan, Some(&tag));
        r.report.assert_ok();
        assert!(r.valid > 0, "{label}: workload must commit through crashes");
        assert_eq!(r.report.peers_checked, ORGS * PEERS_PER_ORG, "{label}: all peers restarted");
    }
}

#[test]
fn same_seed_produces_identical_fault_schedules() {
    for (label, config) in modes() {
        let a = run_case(&config, FaultPlan::chaotic(77), None);
        let b = run_case(&config, FaultPlan::chaotic(77), None);
        assert!(a.faults > 0, "{label}: schedule must be non-trivial");
        assert_eq!(a.events, b.events, "{label}: event logs diverged");
        assert_eq!(a.schedule, b.schedule, "{label}: schedule digests diverged");
        assert_eq!(a.valid, b.valid, "{label}: outcomes diverged");
        assert_eq!(
            a.report.state_digest, b.report.state_digest,
            "{label}: final states diverged"
        );
        // A different seed must (overwhelmingly) produce a different
        // schedule — the digest is not a constant.
        let c = run_case(&config, FaultPlan::chaotic(78), None);
        assert_ne!(a.schedule, c.schedule, "{label}: seeds 77 and 78 collided");
    }
}

#[test]
fn tracing_does_not_perturb_the_fault_schedule() {
    // The flight recorder is observation-only: a traced run must produce
    // the byte-identical fault schedule, event log, outcome counts, and
    // final state of an untraced run — and the trace must mirror every
    // fault verdict the injector logged.
    for (label, config) in modes() {
        let plain = run_case(&config, FaultPlan::chaotic(77), None);
        let sink = TraceSink::bounded(1 << 16);
        let traced = run_case_traced(&config, FaultPlan::chaotic(77), None, sink.clone());

        assert!(plain.faults > 0, "{label}: schedule must be non-trivial");
        assert_eq!(plain.schedule, traced.schedule, "{label}: tracing changed the schedule");
        assert_eq!(plain.events, traced.events, "{label}: tracing changed the event log");
        assert_eq!(plain.valid, traced.valid, "{label}: tracing changed outcomes");
        assert_eq!(
            plain.report.state_digest, traced.report.state_digest,
            "{label}: tracing changed the final state"
        );

        let events = sink.drain();
        assert_eq!(sink.dropped(), 0, "{label}: ring must retain the whole run");
        let fault_events =
            events.iter().filter(|e| e.kind.label().starts_with("fault_")).count() as u64;
        assert_eq!(
            fault_events, traced.faults,
            "{label}: every injector verdict must mirror into the trace"
        );
        assert!(
            events.iter().any(|e| e.kind.label() == "tx_committed"),
            "{label}: the reporting peer's pipeline must trace too"
        );
    }
}
